"""Service-layer benchmarks: facade overhead and serve-loop throughput.

Two questions decide whether the :mod:`repro.api` redesign is free:

* **Facade overhead** — the streaming scenario driven through an
  :class:`~repro.api.OnlineSession` versus the identical trace driven by
  calling the :class:`~repro.online.OnlineImputationEngine` directly.  Both
  sides run the same seeds over the same engine configuration, so the
  imputations must be bit-identical and the wall-clock ratio isolates the
  session layer's dispatch cost (the acceptance bar is ≤ 5%).
* **Serve-loop throughput** — requests/s through the full JSONL path
  (JSON decode → session dispatch → impute → JSON encode) for single-row
  and batched impute requests, the first real serving numbers of the
  project.
* **Observability overhead** — the same facade trace driven with the
  :mod:`repro.obs` call sites no-opped out, with the layer disabled, and
  with it fully enabled (bars: disabled ≤ 2% over no-op, and the serve
  single-request path enabled ≤ 1.10× disabled).
* **Query on-demand** — a selective SELECT over a store with a skewed
  pending side-store, answered lazily versus pre-imputing the touched
  rows only and versus materializing the whole table (bars: on-demand
  ≤ 1.1× the touched-rows baseline, and strictly faster than full
  materialization).

:func:`run_api_benchmark` returns one JSON-shaped report;
``benchmarks/test_perf_api.py`` asserts the bars and writes it to
``BENCH_api.json``.
"""

from __future__ import annotations

import gc
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data import load_dataset
from ..online.engine import OnlineImputationEngine
from .messages import ImputeRequest, MutationOp
from .serve import SessionServer
from .sessions import OnlineSession

__all__ = ["run_api_benchmark"]


def _build_trace(
    dataset: str, size: int, n_rounds: int, queries_per_round: int, seed: int
) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """One deterministic append+query trace shared by every drive."""
    values = load_dataset(dataset, size=size).raw
    initial = values.shape[0] // 2
    batch = (values.shape[0] - initial) // n_rounds
    rng = np.random.default_rng(seed)
    blocks, query_blocks = [], []
    offset = initial
    for round_index in range(n_rounds):
        stop = offset + batch if round_index < n_rounds - 1 else values.shape[0]
        blocks.append(values[offset:stop])
        rows = rng.choice(offset, size=queries_per_round, replace=False)
        queries = values[rows].copy()
        blanked = rng.integers(0, values.shape[1], size=queries_per_round)
        queries[np.arange(queries_per_round), blanked] = np.nan
        query_blocks.append(queries)
        offset = stop
    return values[:initial], blocks, query_blocks


def _drive_direct(engine_params, initial, blocks, query_blocks):
    """The trace through raw engine calls; returns (seconds, imputations)."""
    engine = OnlineImputationEngine(**engine_params)
    outputs = []
    start = time.perf_counter()
    engine.append(initial)
    for block, queries in zip(blocks, query_blocks):
        engine.append(block)
        outputs.append(engine.impute_batch(queries))
    return time.perf_counter() - start, outputs


def _drive_session(engine_params, initial, blocks, query_blocks):
    """The identical trace through the session facade."""
    session = OnlineSession(**engine_params)
    outputs = []
    start = time.perf_counter()
    session.mutate([MutationOp.append(initial)])
    for block, queries in zip(blocks, query_blocks):
        session.mutate([MutationOp.append(block)])
        outputs.append(session.impute(ImputeRequest(queries)))
    return time.perf_counter() - start, outputs


def _measure_overhead(
    dataset: str,
    size: int,
    n_rounds: int,
    queries_per_round: int,
    engine_params: Dict[str, object],
    repeats: int,
) -> Dict[str, object]:
    initial, blocks, query_blocks = _build_trace(
        dataset, size, n_rounds, queries_per_round, seed=0
    )
    direct_seconds, session_seconds = [], []
    for _ in range(repeats):
        seconds, direct_out = _drive_direct(
            engine_params, initial, blocks, query_blocks
        )
        direct_seconds.append(seconds)
        seconds, session_out = _drive_session(
            engine_params, initial, blocks, query_blocks
        )
        session_seconds.append(seconds)
        for direct_block, session_block in zip(direct_out, session_out):
            if not np.array_equal(direct_block, session_block):
                raise AssertionError(
                    "session facade diverged from direct engine calls"
                )
    direct_best = min(direct_seconds)
    session_best = min(session_seconds)
    return {
        "dataset": dataset,
        "size": size,
        "n_rounds": n_rounds,
        "queries_per_round": queries_per_round,
        "direct_seconds": direct_best,
        "session_seconds": session_best,
        "overhead_ratio": session_best / direct_best,
        "bit_identical": True,
    }


def _measure_serve_throughput(
    dataset: str,
    store_rows: int,
    n_single: int,
    n_batched: int,
    batch_size: int,
    engine_params: Dict[str, object],
) -> Dict[str, object]:
    """Requests/s through the full JSONL path, single-row and batched."""
    values = load_dataset(dataset, size=store_rows + n_single + batch_size).raw
    width = values.shape[1]
    server = SessionServer()
    config_params = dict(engine_params)

    def ask(request: Dict[str, object]) -> Dict[str, object]:
        response = server.handle_line(json.dumps(request))
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
        return response["result"]

    ask({
        "v": 1, "cmd": "create", "session": "bench",
        "config": {"method": "IIM", "mode": "online", "params": config_params},
    })
    ask({
        "v": 1, "cmd": "append", "session": "bench",
        "rows": [[float(cell) for cell in row] for row in values[:store_rows]],
    })

    rng = np.random.default_rng(1)

    def wire_row(row: np.ndarray, blank: int) -> List[Optional[float]]:
        cells: List[Optional[float]] = [float(cell) for cell in row]
        cells[blank] = None
        return cells

    # Warm every attribute state before timing: production serving runs warm.
    for attribute in range(width):
        ask({
            "v": 1, "cmd": "impute", "session": "bench",
            "rows": [wire_row(values[store_rows], attribute)],
        })

    single_lines = []
    for i in range(n_single):
        row = wire_row(
            values[store_rows + (i % n_single)], int(rng.integers(width))
        )
        single_lines.append(json.dumps(
            {"v": 1, "id": i, "cmd": "impute", "session": "bench", "rows": [row]}
        ))
    start = time.perf_counter()
    for line in single_lines:
        response = server.handle_line(line)
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
    single_seconds = time.perf_counter() - start

    batched_lines = []
    for i in range(n_batched):
        rows = []
        for j in range(batch_size):
            rows.append(wire_row(
                values[store_rows + ((i * batch_size + j) % n_single)],
                int(rng.integers(width)),
            ))
        batched_lines.append(json.dumps(
            {"v": 1, "id": i, "cmd": "impute", "session": "bench", "rows": rows}
        ))
    start = time.perf_counter()
    for line in batched_lines:
        response = server.handle_line(line)
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
    batched_seconds = time.perf_counter() - start

    stats = ask({"v": 1, "cmd": "stats", "session": "bench"})
    return {
        "dataset": dataset,
        "store_rows": store_rows,
        "single_requests": n_single,
        "single_seconds": single_seconds,
        "single_requests_per_second": n_single / single_seconds,
        "batched_requests": n_batched,
        "batch_size": batch_size,
        "batched_seconds": batched_seconds,
        "batched_requests_per_second": n_batched / batched_seconds,
        "batched_rows_per_second": n_batched * batch_size / batched_seconds,
        "engine_counters": stats["counters"],
        "memory": stats["memory"],
    }


def _measure_concurrency_sweep(
    dataset: str,
    store_rows: int,
    n_requests: int,
    client_counts: Tuple[int, ...],
    engine_params: Dict[str, object],
) -> Dict[str, object]:
    """Aggregate req/s of N pipelining clients × dispatch mode.

    Each client owns one session (its own store) and pipelines
    ``n_requests`` single-row imputes through :meth:`SessionServer.submit_line`
    — the same entry point the transports use.  Three dispatch modes:

    * ``baseline_single_lock`` — one worker, no coalescing: the sequential
      dispatch the global-lock server used to do, the baseline to beat;
    * ``concurrent`` — the worker pool without coalescing (pure
      cross-session thread parallelism);
    * ``coalesced`` — the pool plus the micro-batcher merging each
      session's pipelined single-row imputes into batched kernel calls.

    Every mode's responses are compared against the sequential baseline's
    (same order, values within rtol 1e-9), so the sweep doubles as an
    equivalence proof for concurrent and coalesced dispatch.
    """
    values = load_dataset(dataset, size=store_rows + n_requests + 1).raw
    width = values.shape[1]
    max_clients = max(client_counts)
    config_params = dict(engine_params)

    def build_server(workers: int, microbatch_max_rows: int) -> SessionServer:
        server = SessionServer(
            workers=workers,
            microbatch_max_rows=microbatch_max_rows,
            microbatch_window_ms=0.0,
        )

        def ask(request: Dict[str, object]) -> None:
            response = server.handle_line(json.dumps(request))
            if not response["ok"]:
                raise AssertionError(
                    f"serve request failed: {response['error']}"
                )

        store = [[float(cell) for cell in row] for row in values[:store_rows]]
        for client in range(max_clients):
            name = f"c{client}"
            ask({
                "v": 1, "cmd": "create", "session": name,
                "config": {
                    "method": "IIM", "mode": "online", "params": config_params,
                },
            })
            ask({"v": 1, "cmd": "append", "session": name, "rows": store})
            # Warm the attribute this client will query: serving runs warm.
            warm: List[Optional[float]] = [
                float(cell) for cell in values[store_rows]
            ]
            warm[client % width] = None
            ask({"v": 1, "cmd": "impute", "session": name, "rows": [warm]})
        return server

    def client_lines(client: int) -> List[str]:
        # One blanked attribute per client keeps its pipelined requests
        # coalescible (the micro-batcher merges same-pattern rows only).
        blank = client % width
        lines = []
        for i in range(n_requests):
            row: List[Optional[float]] = [
                float(cell) for cell in values[store_rows + (i % n_requests)]
            ]
            row[blank] = None
            lines.append(json.dumps({
                "v": 1, "id": i, "cmd": "impute",
                "session": f"c{client}", "rows": [row],
            }))
        return lines

    lines_by_client = [client_lines(c) for c in range(max_clients)]

    def run_clients(server: SessionServer, clients: int):
        results: List[List[Dict[str, object]]] = [[] for _ in range(clients)]

        def submit(client: int) -> None:
            sink = results[client].append
            for line in lines_by_client[client]:
                server.submit_line(line, sink)

        threads = [
            threading.Thread(target=submit, args=(client,), daemon=True)
            for client in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server.scheduler.drain()
        seconds = time.perf_counter() - start
        rows = []
        for client, responses in enumerate(results):
            if len(responses) != n_requests:
                raise AssertionError(
                    f"client {client} got {len(responses)} responses, "
                    f"expected {n_requests}"
                )
            for response in responses:
                if not response.get("ok"):
                    raise AssertionError(
                        f"concurrent request failed: {response.get('error')}"
                    )
            rows.append([r["result"]["rows"][0] for r in responses])
        return seconds, rows

    modes = {
        "baseline_single_lock": {"workers": 1, "microbatch_max_rows": 1},
        "concurrent": {"workers": 4, "microbatch_max_rows": 1},
        "coalesced": {"workers": 4, "microbatch_max_rows": 64},
    }
    report: Dict[str, object] = {
        "dataset": dataset,
        "store_rows": store_rows,
        "requests_per_client": n_requests,
        "client_counts": list(client_counts),
        "modes": {},
    }
    reference_rows: Dict[int, List[List[List[float]]]] = {}
    for mode, knobs in modes.items():
        server = build_server(**knobs)
        entry: Dict[str, object] = {
            "workers": knobs["workers"],
            "microbatch_max_rows": knobs["microbatch_max_rows"],
            "by_clients": {},
        }
        try:
            for clients in client_counts:
                seconds, rows = run_clients(server, clients)
                entry["by_clients"][str(clients)] = {
                    "seconds": seconds,
                    "aggregate_requests_per_second": (
                        clients * n_requests / seconds
                    ),
                }
                if mode == "baseline_single_lock":
                    reference_rows[clients] = rows
                elif not np.allclose(
                    np.asarray(rows, dtype=float),
                    np.asarray(reference_rows[clients], dtype=float),
                    rtol=1e-9, atol=1e-12,
                ):
                    raise AssertionError(
                        f"{mode} dispatch diverged from sequential dispatch "
                        f"at {clients} client(s)"
                    )
            if mode == "coalesced":
                entry["microbatch"] = (
                    server.scheduler.snapshot()["microbatch"]
                )
        finally:
            server.close_sessions()
        report["modes"][mode] = entry

    def rps(mode: str, clients: int) -> float:
        return report["modes"][mode]["by_clients"][str(clients)][
            "aggregate_requests_per_second"
        ]

    baseline_at_4 = rps("baseline_single_lock", 4)
    report["speedup_at_4_clients"] = {
        mode: rps(mode, 4) / baseline_at_4 for mode in modes
    }
    report["best_speedup_at_4_clients"] = max(
        report["speedup_at_4_clients"].values()
    )
    report["results_match_sequential_rtol"] = 1e-9
    return report


def _measure_obs_overhead(
    dataset: str,
    size: int,
    n_rounds: int,
    queries_per_round: int,
    engine_params: Dict[str, object],
    repeats: int,
    store_rows: int,
    n_single: int,
) -> Dict[str, object]:
    """Cost of the observability layer on the hot paths.

    Three interleaved drives of the facade trace isolate the layer:

    * ``noop`` — the instrumentation call sites replaced by no-ops, the
      closest stand-in for the uninstrumented engine;
    * ``disabled`` — the real helpers with ``obs_enabled`` off (one function
      call plus one boolean check per site);
    * ``enabled`` — full metric and span accounting.

    The serve single-request path is additionally timed disabled vs enabled
    because it layers request histograms and trace-id issue on top of the
    engine-side sites.  One server handles every round and the knob is
    toggled between short interleaved rounds — taking the per-mode minimum
    across rounds isolates the layer's cost from scheduler noise, which on
    a sub-millisecond request otherwise swamps it.
    """
    from .. import config
    from ..obs import reset_observability
    from ..online import engine as engine_module
    from ..online import store as store_module

    initial, blocks, query_blocks = _build_trace(
        dataset, size, n_rounds, queries_per_round, seed=0
    )

    def _noop(*args, **kwargs):
        return None

    class _NoopSpan:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    noop_span = _NoopSpan()

    def _noop_phase(phase):
        return noop_span

    patch_sites = [
        (engine_module, "engine_phase", _noop_phase),
        (engine_module, "observe_imputed_cells", _noop),
        (store_module, "count_store_rows", _noop),
        (store_module, "count_journal_spill", _noop),
    ]

    def _drive_noop() -> float:
        saved = [(mod, name, getattr(mod, name)) for mod, name, _ in patch_sites]
        for mod, name, replacement in patch_sites:
            setattr(mod, name, replacement)
        try:
            seconds, _ = _drive_direct(engine_params, initial, blocks, query_blocks)
        finally:
            for mod, name, original in saved:
                setattr(mod, name, original)
        return seconds

    def _drive_with_obs(enabled: bool) -> float:
        previous = config.set_obs_enabled(enabled)
        try:
            seconds, _ = _drive_direct(engine_params, initial, blocks, query_blocks)
        finally:
            config.set_obs_enabled(previous)
        return seconds

    values = load_dataset(dataset, size=store_rows + n_single + 1).raw
    width = values.shape[1]

    server = SessionServer()

    def ask(request: Dict[str, object]) -> Dict[str, object]:
        response = server.handle_line(json.dumps(request))
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
        return response["result"]

    ask({
        "v": 1, "cmd": "create", "session": "bench-obs",
        "config": {
            "method": "IIM", "mode": "online", "params": dict(engine_params),
        },
    })
    ask({
        "v": 1, "cmd": "append", "session": "bench-obs",
        "rows": [[float(cell) for cell in row] for row in values[:store_rows]],
    })
    rng = np.random.default_rng(1)
    # Warm every attribute state before timing: production serving runs warm.
    for attribute in range(width):
        warm: List[Optional[float]] = [float(cell) for cell in values[store_rows]]
        warm[attribute] = None
        ask({"v": 1, "cmd": "impute", "session": "bench-obs", "rows": [warm]})
    lines = []
    for i in range(n_single):
        row: List[Optional[float]] = [
            float(cell) for cell in values[store_rows + (i % n_single)]
        ]
        row[int(rng.integers(width))] = None
        lines.append(json.dumps({
            "v": 1, "id": i, "cmd": "impute", "session": "bench-obs",
            "rows": [row],
        }))

    # Short rounds, many of them: each mode's minimum then lands in a quiet
    # scheduler window, which one long timed run rarely does.
    round_lines = lines[: min(len(lines), 100)]

    def _serve_round_seconds() -> float:
        start = time.perf_counter()
        for line in round_lines:
            response = server.handle_line(line)
            if not response["ok"]:
                raise AssertionError(f"serve request failed: {response['error']}")
        return time.perf_counter() - start

    serve_rounds = max(12 * repeats, 36)
    gc_was_enabled = gc.isenabled()
    noop_seconds, disabled_seconds, enabled_seconds = [], [], []
    serve_disabled, serve_enabled = [], []
    # The per-site disabled cost is nanoseconds against a trace of numpy
    # work, so the 2% bar is really a noise bar: interleave many drives and
    # let each mode's minimum find its quiet window.
    facade_repeats = max(2 * repeats, 7)
    previous = config.get_obs_enabled()
    try:
        for _ in range(facade_repeats):
            noop_seconds.append(_drive_noop())
            disabled_seconds.append(_drive_with_obs(False))
            enabled_seconds.append(_drive_with_obs(True))
        # Collector pauses land unevenly across 30ms rounds and would be
        # read as observability cost; pyperf does the same for micro-runs.
        gc.collect()
        gc.disable()
        for _ in range(serve_rounds):
            config.set_obs_enabled(False)
            serve_disabled.append(_serve_round_seconds())
            config.set_obs_enabled(True)
            serve_enabled.append(_serve_round_seconds())
    finally:
        if gc_was_enabled:
            gc.enable()
        config.set_obs_enabled(previous)
        server.close_sessions()
        reset_observability()

    # Each mode's minimum across many interleaved rounds approximates its
    # noise-free runtime, so the ratio of minimums isolates the layer's
    # systematic cost from scheduler bursts.
    noop_best = min(noop_seconds)
    disabled_best = min(disabled_seconds)
    enabled_best = min(enabled_seconds)
    serve_disabled_best = min(serve_disabled)
    serve_enabled_best = min(serve_enabled)
    return {
        "facade_repeats": facade_repeats,
        "facade_noop_seconds": noop_best,
        "facade_disabled_seconds": disabled_best,
        "facade_enabled_seconds": enabled_best,
        "facade_disabled_ratio": disabled_best / noop_best,
        "facade_enabled_ratio": enabled_best / noop_best,
        "serve_single_requests": len(round_lines),
        "serve_single_rounds": serve_rounds,
        "serve_single_disabled_seconds": serve_disabled_best,
        "serve_single_enabled_seconds": serve_enabled_best,
        "serve_single_disabled_rps": len(round_lines) / serve_disabled_best,
        "serve_single_enabled_rps": len(round_lines) / serve_enabled_best,
        "serve_single_enabled_ratio": serve_enabled_best / serve_disabled_best,
    }


def _measure_query_ondemand(
    dataset: str,
    store_rows: int,
    touched_rows: int,
    untouched_incomplete: int,
    repeats: int,
    engine_params: Dict[str, object],
) -> Dict[str, object]:
    """Impute-on-demand query evaluation against two pre-impute baselines.

    One engine holds ``store_rows`` complete tuples plus a pending
    side-store in which only ``touched_rows`` tuples are missing the
    queried attribute — the other ``untouched_incomplete`` tuples carry
    holes in attributes the query never references.  Three ways to answer
    the same selective SELECT:

    * ``ondemand`` — :func:`~repro.query.execute_query`: parse, plan,
      impute exactly the touched rows in one batch, evaluate.  Timed with
      provenance capture off so all three strategies do the same work;
      the provenance-enabled run is reported separately
      (``ondemand_provenance_seconds``), it is informational, not a bar;
    * ``preimpute_touched`` — the ideal lower bound: the same touched-row
      batch imputed up front, then the same numpy filter/sort/limit with
      no query machinery around it.  The bar: on-demand ≤ 1.1× this (the
      parse/plan/result wrapper must stay under 10%);
    * ``preimpute_full`` — materialize the whole table first (impute every
      incomplete row), then evaluate.  On a selective query the on-demand
      path must beat it outright: that gap is the point of lazy
      evaluation.

    All three produce bit-identical result blocks (asserted).
    """
    from ..query import execute_query, parse_statement, plan_query

    values = load_dataset(
        dataset, size=store_rows + touched_rows + untouched_incomplete
    ).raw
    width = values.shape[1]
    rng = np.random.default_rng(5)
    engine = OnlineImputationEngine(**engine_params)
    engine.append(values[:store_rows])
    pending = values[store_rows:].copy()
    # the queried attribute's holes land in the first touched_rows tuples;
    # every other pending tuple is incomplete somewhere else
    pending[:touched_rows, 0] = np.nan
    other = np.arange(untouched_incomplete)
    holes = 1 + rng.integers(0, width - 1, size=untouched_incomplete)
    pending[touched_rows + other, holes] = np.nan
    engine.append(pending, allow_incomplete=True)

    threshold = float(np.median(values[:store_rows, 0]))
    statement_text = (
        f"SELECT A1 WHERE A1 >= {threshold!r} ORDER BY A1 DESC LIMIT 10;"
    )
    statement = parse_statement(statement_text)
    plan = plan_query(statement, engine.schema)
    referenced = np.array(plan.referenced, dtype=int)

    def _evaluate(matrix: np.ndarray) -> np.ndarray:
        keep = np.flatnonzero(matrix[:, 0] >= threshold)
        order = keep[np.argsort(-matrix[keep, 0], kind="stable")][:10]
        return matrix[order][:, [0]]

    def _run_ondemand(collect_provenance: bool) -> np.ndarray:
        return execute_query(
            engine, statement_text, provenance=collect_provenance
        ).rows

    def _run_preimpute(full: bool) -> np.ndarray:
        matrix = np.array(
            engine.store_relation(include_pending=True).raw, dtype=float
        )
        mask = np.isnan(matrix)
        rows = np.flatnonzero(
            mask.any(axis=1) if full else mask[:, referenced].any(axis=1)
        )
        if rows.size:
            matrix[rows] = engine.impute_batch(matrix[rows])
        return _evaluate(matrix)

    # the bar compares "ondemand" against "touched": keep them adjacent in
    # the round-robin so they always run under near-identical conditions.
    strategies = {
        "ondemand": lambda: _run_ondemand(collect_provenance=False),
        "touched": lambda: _run_preimpute(full=False),
        "provenance": lambda: _run_ondemand(collect_provenance=True),
        "full": lambda: _run_preimpute(full=True),
    }

    # One untimed pass warms every kernel cache and pins down correctness.
    warm = {name: run() for name, run in strategies.items()}
    for name in ("touched", "provenance", "full"):
        if not np.array_equal(warm["ondemand"], warm[name]):
            raise AssertionError(
                f"on-demand query diverged from the {name!r} strategy"
            )

    # Single ~1ms calls are dominated by scheduler noise: each sample
    # times a block of consecutive calls, and samples are collected
    # round-robin so clock drift hits every strategy alike.  One untimed
    # call re-warms caches before each block — whichever strategy follows
    # the allocation-heavy full materialization would otherwise pay its
    # cache evictions.
    inner = 10
    samples: Dict[str, List[float]] = {name: [] for name in strategies}
    gc.collect()
    for _ in range(max(repeats, 8)):
        for name, run in strategies.items():
            run()
            start = time.perf_counter()
            for _ in range(inner):
                run()
            samples[name].append((time.perf_counter() - start) / inner)
    ondemand_best = min(samples["ondemand"])
    provenance_best = min(samples["provenance"])
    touched_best = min(samples["touched"])
    full_best = min(samples["full"])
    return {
        "dataset": dataset,
        "store_rows": store_rows,
        "pending_rows": touched_rows + untouched_incomplete,
        "touched_rows": touched_rows,
        "statement": statement_text,
        "repeats": repeats,
        "ondemand_seconds": ondemand_best,
        "ondemand_provenance_seconds": provenance_best,
        "preimpute_touched_seconds": touched_best,
        "preimpute_full_seconds": full_best,
        "ondemand_vs_touched_ratio": ondemand_best / touched_best,
        "full_vs_ondemand_speedup": full_best / ondemand_best,
        "bit_identical": True,
    }


def run_api_benchmark(
    profile=None,
    *,
    dataset: str = "sn",
    overhead_size: Optional[int] = None,
    n_rounds: int = 8,
    queries_per_round: Optional[int] = None,
    repeats: int = 2,
    store_rows: Optional[int] = None,
    n_single: int = 200,
    n_batched: int = 40,
    batch_size: int = 64,
    concurrency_requests: int = 120,
    concurrency_store_rows: Optional[int] = None,
    client_counts: Tuple[int, ...] = (1, 2, 4, 8),
    query_touched_rows: int = 512,
    query_untouched_incomplete: int = 256,
) -> Dict[str, object]:
    """Measure facade overhead and serve throughput; returns the report."""
    from ..experiments.settings import get_profile

    profile = profile or get_profile()
    overhead_size = overhead_size or 2 * profile.dataset_sizes[dataset]
    queries_per_round = queries_per_round or min(
        profile.asf_incomplete, overhead_size // 8
    )
    store_rows = store_rows or profile.dataset_sizes[dataset]
    concurrency_store_rows = concurrency_store_rows or min(store_rows, 256)
    engine_params = dict(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    return {
        "profile": profile.name,
        "facade_overhead": _measure_overhead(
            dataset, overhead_size, n_rounds, queries_per_round,
            engine_params, max(repeats, 6),
        ),
        "serve_throughput": _measure_serve_throughput(
            dataset, store_rows, n_single, n_batched, batch_size, engine_params,
        ),
        "serve_concurrency": _measure_concurrency_sweep(
            dataset, concurrency_store_rows, concurrency_requests,
            client_counts, engine_params,
        ),
        "obs_overhead": _measure_obs_overhead(
            dataset, overhead_size, n_rounds, queries_per_round,
            engine_params, max(repeats, 3), store_rows, n_single,
        ),
        "query_ondemand": _measure_query_ondemand(
            dataset, store_rows, query_touched_rows,
            query_untouched_incomplete, max(repeats, 3), engine_params,
        ),
    }
