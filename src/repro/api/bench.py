"""Service-layer benchmarks: facade overhead and serve-loop throughput.

Two questions decide whether the :mod:`repro.api` redesign is free:

* **Facade overhead** — the streaming scenario driven through an
  :class:`~repro.api.OnlineSession` versus the identical trace driven by
  calling the :class:`~repro.online.OnlineImputationEngine` directly.  Both
  sides run the same seeds over the same engine configuration, so the
  imputations must be bit-identical and the wall-clock ratio isolates the
  session layer's dispatch cost (the acceptance bar is ≤ 5%).
* **Serve-loop throughput** — requests/s through the full JSONL path
  (JSON decode → session dispatch → impute → JSON encode) for single-row
  and batched impute requests, the first real serving numbers of the
  project.

:func:`run_api_benchmark` returns one JSON-shaped report;
``benchmarks/test_perf_api.py`` asserts the bars and writes it to
``BENCH_api.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data import load_dataset
from ..online.engine import OnlineImputationEngine
from .messages import ImputeRequest, MutationOp
from .serve import SessionServer
from .sessions import OnlineSession

__all__ = ["run_api_benchmark"]


def _build_trace(
    dataset: str, size: int, n_rounds: int, queries_per_round: int, seed: int
) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """One deterministic append+query trace shared by every drive."""
    values = load_dataset(dataset, size=size).raw
    initial = values.shape[0] // 2
    batch = (values.shape[0] - initial) // n_rounds
    rng = np.random.default_rng(seed)
    blocks, query_blocks = [], []
    offset = initial
    for round_index in range(n_rounds):
        stop = offset + batch if round_index < n_rounds - 1 else values.shape[0]
        blocks.append(values[offset:stop])
        rows = rng.choice(offset, size=queries_per_round, replace=False)
        queries = values[rows].copy()
        blanked = rng.integers(0, values.shape[1], size=queries_per_round)
        queries[np.arange(queries_per_round), blanked] = np.nan
        query_blocks.append(queries)
        offset = stop
    return values[:initial], blocks, query_blocks


def _drive_direct(engine_params, initial, blocks, query_blocks):
    """The trace through raw engine calls; returns (seconds, imputations)."""
    engine = OnlineImputationEngine(**engine_params)
    outputs = []
    start = time.perf_counter()
    engine.append(initial)
    for block, queries in zip(blocks, query_blocks):
        engine.append(block)
        outputs.append(engine.impute_batch(queries))
    return time.perf_counter() - start, outputs


def _drive_session(engine_params, initial, blocks, query_blocks):
    """The identical trace through the session facade."""
    session = OnlineSession(**engine_params)
    outputs = []
    start = time.perf_counter()
    session.mutate([MutationOp.append(initial)])
    for block, queries in zip(blocks, query_blocks):
        session.mutate([MutationOp.append(block)])
        outputs.append(session.impute(ImputeRequest(queries)))
    return time.perf_counter() - start, outputs


def _measure_overhead(
    dataset: str,
    size: int,
    n_rounds: int,
    queries_per_round: int,
    engine_params: Dict[str, object],
    repeats: int,
) -> Dict[str, object]:
    initial, blocks, query_blocks = _build_trace(
        dataset, size, n_rounds, queries_per_round, seed=0
    )
    direct_seconds, session_seconds = [], []
    for _ in range(repeats):
        seconds, direct_out = _drive_direct(
            engine_params, initial, blocks, query_blocks
        )
        direct_seconds.append(seconds)
        seconds, session_out = _drive_session(
            engine_params, initial, blocks, query_blocks
        )
        session_seconds.append(seconds)
        for direct_block, session_block in zip(direct_out, session_out):
            if not np.array_equal(direct_block, session_block):
                raise AssertionError(
                    "session facade diverged from direct engine calls"
                )
    direct_best = min(direct_seconds)
    session_best = min(session_seconds)
    return {
        "dataset": dataset,
        "size": size,
        "n_rounds": n_rounds,
        "queries_per_round": queries_per_round,
        "direct_seconds": direct_best,
        "session_seconds": session_best,
        "overhead_ratio": session_best / direct_best,
        "bit_identical": True,
    }


def _measure_serve_throughput(
    dataset: str,
    store_rows: int,
    n_single: int,
    n_batched: int,
    batch_size: int,
    engine_params: Dict[str, object],
) -> Dict[str, object]:
    """Requests/s through the full JSONL path, single-row and batched."""
    values = load_dataset(dataset, size=store_rows + n_single + batch_size).raw
    width = values.shape[1]
    server = SessionServer()
    config_params = dict(engine_params)

    def ask(request: Dict[str, object]) -> Dict[str, object]:
        response = server.handle_line(json.dumps(request))
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
        return response["result"]

    ask({
        "v": 1, "cmd": "create", "session": "bench",
        "config": {"method": "IIM", "mode": "online", "params": config_params},
    })
    ask({
        "v": 1, "cmd": "append", "session": "bench",
        "rows": [[float(cell) for cell in row] for row in values[:store_rows]],
    })

    rng = np.random.default_rng(1)

    def wire_row(row: np.ndarray, blank: int) -> List[Optional[float]]:
        cells: List[Optional[float]] = [float(cell) for cell in row]
        cells[blank] = None
        return cells

    # Warm every attribute state before timing: production serving runs warm.
    for attribute in range(width):
        ask({
            "v": 1, "cmd": "impute", "session": "bench",
            "rows": [wire_row(values[store_rows], attribute)],
        })

    single_lines = []
    for i in range(n_single):
        row = wire_row(
            values[store_rows + (i % n_single)], int(rng.integers(width))
        )
        single_lines.append(json.dumps(
            {"v": 1, "id": i, "cmd": "impute", "session": "bench", "rows": [row]}
        ))
    start = time.perf_counter()
    for line in single_lines:
        response = server.handle_line(line)
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
    single_seconds = time.perf_counter() - start

    batched_lines = []
    for i in range(n_batched):
        rows = []
        for j in range(batch_size):
            rows.append(wire_row(
                values[store_rows + ((i * batch_size + j) % n_single)],
                int(rng.integers(width)),
            ))
        batched_lines.append(json.dumps(
            {"v": 1, "id": i, "cmd": "impute", "session": "bench", "rows": rows}
        ))
    start = time.perf_counter()
    for line in batched_lines:
        response = server.handle_line(line)
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
    batched_seconds = time.perf_counter() - start

    stats = ask({"v": 1, "cmd": "stats", "session": "bench"})
    return {
        "dataset": dataset,
        "store_rows": store_rows,
        "single_requests": n_single,
        "single_seconds": single_seconds,
        "single_requests_per_second": n_single / single_seconds,
        "batched_requests": n_batched,
        "batch_size": batch_size,
        "batched_seconds": batched_seconds,
        "batched_requests_per_second": n_batched / batched_seconds,
        "batched_rows_per_second": n_batched * batch_size / batched_seconds,
        "engine_counters": stats["counters"],
        "memory": stats["memory"],
    }


def run_api_benchmark(
    profile=None,
    *,
    dataset: str = "sn",
    overhead_size: Optional[int] = None,
    n_rounds: int = 8,
    queries_per_round: Optional[int] = None,
    repeats: int = 2,
    store_rows: Optional[int] = None,
    n_single: int = 200,
    n_batched: int = 40,
    batch_size: int = 64,
) -> Dict[str, object]:
    """Measure facade overhead and serve throughput; returns the report."""
    from ..experiments.settings import get_profile

    profile = profile or get_profile()
    overhead_size = overhead_size or 2 * profile.dataset_sizes[dataset]
    queries_per_round = queries_per_round or min(
        profile.asf_incomplete, overhead_size // 8
    )
    store_rows = store_rows or profile.dataset_sizes[dataset]
    engine_params = dict(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    return {
        "profile": profile.name,
        "facade_overhead": _measure_overhead(
            dataset, overhead_size, n_rounds, queries_per_round,
            engine_params, repeats,
        ),
        "serve_throughput": _measure_serve_throughput(
            dataset, store_rows, n_single, n_batched, batch_size, engine_params,
        ),
    }
