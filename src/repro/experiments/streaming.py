"""Streaming scenarios: append-only and full-lifecycle (churn) traces.

The paper evaluates IIM on static tables; this module drives the *online*
engine the way a production deployment would see data:

* :func:`run_streaming` — an initial store, then rounds of "a batch of new
  complete tuples arrives, then a batch of incomplete tuples must be
  imputed";
* :func:`run_churn` — the full tuple lifecycle: every round interleaves
  appends, in-place corrections (:meth:`~repro.online.OnlineImputationEngine.update`)
  and retractions (:meth:`~repro.online.OnlineImputationEngine.delete`)
  before the imputation queries, the workload the hybrid relearn policy is
  designed for.

Each round is measured twice:

* **online** — :class:`~repro.online.OnlineImputationEngine` absorbs the
  mutations incrementally and serves the queries from its warm model cache;
* **cold** — a fresh :class:`~repro.core.iim.IIMImputer` is refitted from
  scratch over the same surviving store and imputes the same queries (the
  baseline the paper's incremental computation is compared against).

Both must produce the same imputations (``rtol = 1e-9``; asserted in the
test suite); the interesting numbers are the per-round latencies and their
ratio, which ``benchmarks/test_perf_online.py`` records in
``BENCH_online.json``.

The online side is driven through the :mod:`repro.api` session protocol
(:class:`~repro.api.OnlineSession` + :class:`~repro.api.MutationOp`) — the
same surface the serve loop exposes — so these scenarios double as the
proof that the facade adds no overhead over raw engine calls
(``benchmarks/test_perf_api.py`` asserts the ratio).

Queries come in two flavours (``query_mode``): ``"store"`` samples tuples
the store has seen (the paper's setting), while ``"ood"`` shifts each
sampled tuple by ``ood_shift`` column standard deviations before blanking a
cell — an out-of-distribution trace probing how the engine serves requests
far from its training support (both sides still answer identically; the RMS
error is scored against the shifted truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import resolve_online_fallback_fraction
from ..data import load_dataset
from .settings import ScaleProfile, get_profile

__all__ = [
    "StreamingRound",
    "StreamingResult",
    "run_streaming",
    "ChurnRound",
    "ChurnResult",
    "run_churn",
]

QUERY_MODES = ("store", "ood")


@dataclass
class StreamingRound:
    """Latency and error of one append+query round."""

    round_index: int
    n_store: int
    n_appended: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float

    @property
    def speedup(self) -> float:
        """Cold-refit time over online time for this round."""
        return self.cold_seconds / self.online_seconds


@dataclass
class StreamingResult:
    """Outcome of a full streaming replay."""

    dataset: str
    learning: str
    initial_store: int
    query_mode: str = "store"
    rounds: List[StreamingRound] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    engine_memory: Dict[str, int] = field(default_factory=dict)

    @property
    def online_seconds(self) -> float:
        """Total online (append + impute) time across rounds."""
        return sum(r.online_seconds for r in self.rounds)

    @property
    def cold_seconds(self) -> float:
        """Total cold (refit + impute) time across rounds."""
        return sum(r.cold_seconds for r in self.rounds)

    @property
    def speedup(self) -> float:
        """Aggregate cold/online wall-clock ratio."""
        return self.cold_seconds / self.online_seconds

    @property
    def max_rms_gap(self) -> float:
        """Largest |rms_online − rms_cold| across rounds (≈ 0 by equivalence)."""
        return max(abs(r.rms_online - r.rms_cold) for r in self.rounds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting."""
        return {
            "dataset": self.dataset,
            "learning": self.learning,
            "initial_store": self.initial_store,
            "query_mode": self.query_mode,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_rms_gap": self.max_rms_gap,
            "engine_stats": dict(self.engine_stats),
            "engine_memory": dict(self.engine_memory),
            "rounds": [
                {
                    "round": r.round_index,
                    "n_store": r.n_store,
                    "n_appended": r.n_appended,
                    "n_queries": r.n_queries,
                    "online_seconds": r.online_seconds,
                    "cold_seconds": r.cold_seconds,
                    "speedup": r.speedup,
                    "rms_online": r.rms_online,
                    "rms_cold": r.rms_cold,
                }
                for r in self.rounds
            ],
        }


def run_streaming(
    dataset: str = "sn",
    profile: Optional[ScaleProfile] = None,
    size: Optional[int] = None,
    learning: str = "adaptive",
    n_rounds: int = 8,
    initial_fraction: float = 0.4,
    queries_per_round: Optional[int] = None,
    query_mode: str = "store",
    ood_shift: float = 2.0,
    refresh_policy: str = "lazy",
    model_cache_size: Optional[int] = None,
    shard_capacity="default",
    journal_capacity="default",
    random_state: int = 0,
    run_cold: bool = True,
    **iim_overrides,
) -> StreamingResult:
    """Replay ``dataset`` as a streaming trace and time online vs. cold.

    Parameters
    ----------
    dataset:
        Name of a registered dataset (sized by the profile).
    profile:
        Scale profile; defaults to :func:`~repro.experiments.get_profile`.
    size:
        Override the profile's dataset size (streaming gains grow with the
        store-to-neighbourhood ratio, so benchmarks replay more tuples than
        the static experiments do).
    learning:
        IIM learning phase for both the engine and the cold refits.
    n_rounds:
        Number of append+query rounds after the initial store.
    initial_fraction:
        Fraction of the relation used as the initial store; the remainder is
        split evenly into the per-round append batches.
    queries_per_round:
        Incomplete tuples imputed per round (default: the profile's
        ``asf_incomplete`` capped at half the initial store).
    query_mode:
        ``"store"`` samples query tuples from the cumulative store;
        ``"ood"`` additionally shifts each sampled tuple ``ood_shift``
        column standard deviations away — an out-of-distribution trace.
    ood_shift:
        Shift size (in per-attribute standard deviations) for
        ``query_mode="ood"``.
    refresh_policy:
        Engine refresh policy (``"lazy"`` or ``"eager"``).
    model_cache_size:
        Engine model cache capacity.  Defaults to ``None`` (unbounded): the
        scenario queries every attribute, so an LRU smaller than the schema
        width would evict-and-rebuild each round and measure cache churn
        instead of incremental maintenance.
    shard_capacity:
        Columnar-store rows per shard (``"default"`` = the
        :mod:`repro.config` knob).
    journal_capacity:
        Mutation-journal ring capacity (``"default"`` = the config knob).
    random_state:
        Seed for the query cell selection.
    run_cold:
        Also time the cold refits (disable for engine-only profiling).
    iim_overrides:
        Extra :class:`IIMImputer` constructor arguments (both sides).
    """
    profile = profile or get_profile()
    resolved_size = size or profile.dataset_sizes.get(dataset)
    n_total = load_dataset(dataset, size=resolved_size).raw.shape[0]
    initial = int(n_total * initial_fraction)
    if queries_per_round is None:
        queries_per_round = min(profile.asf_incomplete, initial // 2)
    queries_per_round = max(1, queries_per_round)

    iim_params = dict(
        k=profile.default_k,
        learning=learning,
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    if learning == "fixed":
        iim_params.setdefault("learning_neighbors", profile.default_k)
    iim_params.update(iim_overrides)

    from ..scenarios import ScenarioSpec, replay

    spec = ScenarioSpec(
        name=f"legacy.streaming.{dataset}",
        description="thin-wrapper spec built by run_streaming",
        generator="streaming",
        params={
            "dataset": dataset,
            "size": resolved_size,
            "n_rounds": n_rounds,
            "initial_fraction": initial_fraction,
            "queries_per_round": queries_per_round,
            "query_mode": query_mode,
            "ood_shift": ood_shift,
        },
        model=iim_params,
        engine={
            "refresh_policy": refresh_policy,
            "model_cache_size": model_cache_size,
            "shard_capacity": shard_capacity,
            "journal_capacity": journal_capacity,
        },
        seed=random_state,
    )
    report = replay(
        spec, transport="engine", verify=False, run_cold=run_cold,
        check_digest=False,
    )

    result = StreamingResult(
        dataset=dataset, learning=learning, initial_store=initial,
        query_mode=query_mode,
    )
    for step in report.steps:
        result.rounds.append(
            StreamingRound(
                round_index=step.round_index,
                n_store=step.n_store,
                n_appended=step.n_appended,
                n_queries=step.n_queries,
                online_seconds=step.online_seconds,
                cold_seconds=step.cold_seconds,
                rms_online=step.rms_online,
                rms_cold=step.rms_cold,
            )
        )
    session_stats = report.session_stats[spec.name]
    result.engine_stats = dict(session_stats["counters"])
    result.engine_memory = dict(session_stats["memory"])
    return result


# --------------------------------------------------------------------------- #
# Churn: the full tuple lifecycle
# --------------------------------------------------------------------------- #
@dataclass
class ChurnRound:
    """Latency and error of one append+update+delete+query round."""

    round_index: int
    n_store: int
    n_appended: int
    n_updated: int
    n_deleted: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float

    @property
    def speedup(self) -> float:
        """Cold-refit time over online time for this round."""
        return self.cold_seconds / self.online_seconds


@dataclass
class ChurnResult:
    """Outcome of a full churn replay."""

    dataset: str
    learning: str
    initial_store: int
    query_mode: str
    fallback_fraction: Optional[float]
    rounds: List[ChurnRound] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    engine_memory: Dict[str, int] = field(default_factory=dict)

    @property
    def online_seconds(self) -> float:
        """Total online (mutations + impute) time across rounds."""
        return sum(r.online_seconds for r in self.rounds)

    @property
    def cold_seconds(self) -> float:
        """Total cold (refit + impute) time across rounds."""
        return sum(r.cold_seconds for r in self.rounds)

    @property
    def speedup(self) -> float:
        """Aggregate cold/online wall-clock ratio."""
        return self.cold_seconds / self.online_seconds

    @property
    def max_rms_gap(self) -> float:
        """Largest |rms_online − rms_cold| across rounds (≈ 0 by equivalence)."""
        return max(abs(r.rms_online - r.rms_cold) for r in self.rounds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting."""
        return {
            "dataset": self.dataset,
            "learning": self.learning,
            "initial_store": self.initial_store,
            "query_mode": self.query_mode,
            "fallback_fraction": self.fallback_fraction,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_rms_gap": self.max_rms_gap,
            "engine_stats": dict(self.engine_stats),
            "engine_memory": dict(self.engine_memory),
            "rounds": [
                {
                    "round": r.round_index,
                    "n_store": r.n_store,
                    "n_appended": r.n_appended,
                    "n_updated": r.n_updated,
                    "n_deleted": r.n_deleted,
                    "n_queries": r.n_queries,
                    "online_seconds": r.online_seconds,
                    "cold_seconds": r.cold_seconds,
                    "speedup": r.speedup,
                    "rms_online": r.rms_online,
                    "rms_cold": r.rms_cold,
                }
                for r in self.rounds
            ],
        }


def run_churn(
    dataset: str = "sn",
    profile: Optional[ScaleProfile] = None,
    size: Optional[int] = None,
    learning: str = "adaptive",
    n_rounds: int = 8,
    initial_fraction: float = 0.4,
    updates_per_round: Optional[int] = None,
    deletes_per_round: Optional[int] = None,
    queries_per_round: Optional[int] = None,
    query_mode: str = "store",
    ood_shift: float = 2.0,
    update_noise: float = 0.05,
    refresh_policy: str = "lazy",
    model_cache_size: Optional[int] = None,
    fallback_fraction="default",
    shard_capacity="default",
    journal_capacity="default",
    delete_cost_mode="default",
    random_state: int = 0,
    run_cold: bool = True,
    **iim_overrides,
) -> ChurnResult:
    """Replay ``dataset`` as a full-lifecycle (churn) trace.

    Every round appends a batch of fresh tuples, corrects
    ``updates_per_round`` random store tuples in place (a jitter of
    ``update_noise`` column standard deviations — a late-arriving fix),
    retracts ``deletes_per_round`` random tuples, then imputes
    ``queries_per_round`` incomplete tuples.  The online side replays the
    mutations through :class:`~repro.online.OnlineImputationEngine`
    (``fallback_fraction`` selects the hybrid relearn threshold; ``None``
    keeps it always-incremental), the cold side refits a fresh
    :class:`IIMImputer` over the surviving store each round.  Identical
    random state ⇒ identical traces, so two churn runs with different
    engine knobs are directly comparable.
    """
    profile = profile or get_profile()
    resolved_size = size or profile.dataset_sizes.get(dataset)
    n_total = load_dataset(dataset, size=resolved_size).raw.shape[0]
    initial = int(n_total * initial_fraction)
    batch = (n_total - initial) // n_rounds if n_rounds else 0
    if queries_per_round is None:
        queries_per_round = min(profile.asf_incomplete, initial // 2)
    queries_per_round = max(1, queries_per_round)
    if updates_per_round is None:
        updates_per_round = max(1, batch // 3)
    if deletes_per_round is None:
        deletes_per_round = max(1, batch // 3)

    iim_params = dict(
        k=profile.default_k,
        learning=learning,
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    if learning == "fixed":
        iim_params.setdefault("learning_neighbors", profile.default_k)
    iim_params.update(iim_overrides)

    from ..scenarios import ScenarioSpec, replay

    spec = ScenarioSpec(
        name=f"legacy.churn.{dataset}",
        description="thin-wrapper spec built by run_churn",
        generator="churn",
        params={
            "dataset": dataset,
            "size": resolved_size,
            "n_rounds": n_rounds,
            "initial_fraction": initial_fraction,
            "queries_per_round": queries_per_round,
            "query_mode": query_mode,
            "ood_shift": ood_shift,
            "updates_per_round": updates_per_round,
            "deletes_per_round": deletes_per_round,
            "update_noise": update_noise,
        },
        model=iim_params,
        engine={
            "refresh_policy": refresh_policy,
            "model_cache_size": model_cache_size,
            "incremental_fallback_fraction": fallback_fraction,
            "shard_capacity": shard_capacity,
            "journal_capacity": journal_capacity,
            "delete_cost_mode": delete_cost_mode,
        },
        seed=random_state,
    )
    report = replay(
        spec, transport="engine", verify=False, run_cold=run_cold,
        check_digest=False,
    )

    result = ChurnResult(
        dataset=dataset,
        learning=learning,
        initial_store=initial,
        query_mode=query_mode,
        fallback_fraction=resolve_online_fallback_fraction(fallback_fraction),
    )
    for step in report.steps:
        result.rounds.append(
            ChurnRound(
                round_index=step.round_index,
                n_store=step.n_store,
                n_appended=step.n_appended,
                n_updated=step.n_updated,
                n_deleted=step.n_deleted,
                n_queries=step.n_queries,
                online_seconds=step.online_seconds,
                cold_seconds=step.cold_seconds,
                rms_online=step.rms_online,
                rms_cold=step.rms_cold,
            )
        )
    session_stats = report.session_stats[spec.name]
    result.engine_stats = dict(session_stats["counters"])
    result.engine_memory = dict(session_stats["memory"])
    return result
