"""Streaming scenario: a relation replayed as an append/query trace.

The paper evaluates IIM on static tables; this scenario drives the *online*
engine the way a production deployment would see data: an initial store,
then rounds of "a batch of new complete tuples arrives, then a batch of
incomplete tuples must be imputed".  Each round is measured twice:

* **online** — :class:`~repro.online.OnlineImputationEngine` absorbs the
  appends incrementally and serves the queries from its warm model cache;
* **cold** — a fresh :class:`~repro.core.iim.IIMImputer` is refitted from
  scratch over the same cumulative store and imputes the same queries (the
  baseline the paper's incremental computation is compared against).

Both must produce the same imputations (``rtol = 1e-9``; asserted in the
test suite); the interesting numbers are the per-round latencies and their
ratio, which ``benchmarks/test_perf_online.py`` records in
``BENCH_online.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.iim import IIMImputer
from ..data import load_dataset
from ..data.relation import Relation
from ..exceptions import ExperimentError
from ..metrics import rms_error
from ..online import OnlineImputationEngine
from .settings import ScaleProfile, get_profile

__all__ = ["StreamingRound", "StreamingResult", "run_streaming"]


@dataclass
class StreamingRound:
    """Latency and error of one append+query round."""

    round_index: int
    n_store: int
    n_appended: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float

    @property
    def speedup(self) -> float:
        """Cold-refit time over online time for this round."""
        return self.cold_seconds / self.online_seconds


@dataclass
class StreamingResult:
    """Outcome of a full streaming replay."""

    dataset: str
    learning: str
    initial_store: int
    rounds: List[StreamingRound] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def online_seconds(self) -> float:
        """Total online (append + impute) time across rounds."""
        return sum(r.online_seconds for r in self.rounds)

    @property
    def cold_seconds(self) -> float:
        """Total cold (refit + impute) time across rounds."""
        return sum(r.cold_seconds for r in self.rounds)

    @property
    def speedup(self) -> float:
        """Aggregate cold/online wall-clock ratio."""
        return self.cold_seconds / self.online_seconds

    @property
    def max_rms_gap(self) -> float:
        """Largest |rms_online − rms_cold| across rounds (≈ 0 by equivalence)."""
        return max(abs(r.rms_online - r.rms_cold) for r in self.rounds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting."""
        return {
            "dataset": self.dataset,
            "learning": self.learning,
            "initial_store": self.initial_store,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_rms_gap": self.max_rms_gap,
            "engine_stats": dict(self.engine_stats),
            "rounds": [
                {
                    "round": r.round_index,
                    "n_store": r.n_store,
                    "n_appended": r.n_appended,
                    "n_queries": r.n_queries,
                    "online_seconds": r.online_seconds,
                    "cold_seconds": r.cold_seconds,
                    "speedup": r.speedup,
                    "rms_online": r.rms_online,
                    "rms_cold": r.rms_cold,
                }
                for r in self.rounds
            ],
        }


def run_streaming(
    dataset: str = "sn",
    profile: Optional[ScaleProfile] = None,
    size: Optional[int] = None,
    learning: str = "adaptive",
    n_rounds: int = 8,
    initial_fraction: float = 0.4,
    queries_per_round: Optional[int] = None,
    refresh_policy: str = "lazy",
    model_cache_size: Optional[int] = None,
    random_state: int = 0,
    run_cold: bool = True,
    **iim_overrides,
) -> StreamingResult:
    """Replay ``dataset`` as a streaming trace and time online vs. cold.

    Parameters
    ----------
    dataset:
        Name of a registered dataset (sized by the profile).
    profile:
        Scale profile; defaults to :func:`~repro.experiments.get_profile`.
    size:
        Override the profile's dataset size (streaming gains grow with the
        store-to-neighbourhood ratio, so benchmarks replay more tuples than
        the static experiments do).
    learning:
        IIM learning phase for both the engine and the cold refits.
    n_rounds:
        Number of append+query rounds after the initial store.
    initial_fraction:
        Fraction of the relation used as the initial store; the remainder is
        split evenly into the per-round append batches.
    queries_per_round:
        Incomplete tuples imputed per round (default: the profile's
        ``asf_incomplete`` capped at half the initial store).
    refresh_policy:
        Engine refresh policy (``"lazy"`` or ``"eager"``).
    model_cache_size:
        Engine model cache capacity.  Defaults to ``None`` (unbounded): the
        scenario queries every attribute, so an LRU smaller than the schema
        width would evict-and-rebuild each round and measure cache churn
        instead of incremental maintenance.
    random_state:
        Seed for the query cell selection.
    run_cold:
        Also time the cold refits (disable for engine-only profiling).
    iim_overrides:
        Extra :class:`IIMImputer` constructor arguments (both sides).
    """
    profile = profile or get_profile()
    relation = load_dataset(dataset, size=size or profile.dataset_sizes.get(dataset))
    values = relation.raw
    n_total = values.shape[0]

    initial = int(n_total * initial_fraction)
    if initial < 2 or initial >= n_total:
        raise ExperimentError(
            f"initial_fraction={initial_fraction} leaves no room for appends "
            f"on {n_total} tuples"
        )
    batch = (n_total - initial) // n_rounds
    if batch < 1:
        raise ExperimentError(
            f"{n_rounds} rounds do not fit into {n_total - initial} remaining tuples"
        )
    if queries_per_round is None:
        queries_per_round = min(profile.asf_incomplete, initial // 2)
    queries_per_round = max(1, queries_per_round)

    iim_params = dict(
        k=profile.default_k,
        learning=learning,
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    if learning == "fixed":
        iim_params.setdefault("learning_neighbors", profile.default_k)
    iim_params.update(iim_overrides)

    rng = np.random.default_rng(random_state)
    engine = OnlineImputationEngine(
        refresh_policy=refresh_policy,
        model_cache_size=model_cache_size,
        **iim_params,
    )
    engine.append(values[:initial])

    result = StreamingResult(
        dataset=dataset, learning=learning, initial_store=initial
    )
    offset = initial
    for round_index in range(n_rounds):
        stop = offset + batch if round_index < n_rounds - 1 else n_total
        append_block = values[offset:stop]

        # Queries: tuples sampled from the cumulative store, one attribute
        # blanked each (the truth is known, so both sides can be scored).
        query_rows = rng.choice(offset, size=queries_per_round, replace=False)
        queries = values[query_rows].copy()
        blanked = rng.integers(0, values.shape[1], size=queries_per_round)
        truth = queries[np.arange(queries_per_round), blanked].copy()
        queries[np.arange(queries_per_round), blanked] = np.nan

        start_time = time.perf_counter()
        engine.append(append_block)
        online_values = engine.impute_batch(queries)
        online_seconds = time.perf_counter() - start_time
        rms_online = rms_error(
            truth, online_values[np.arange(queries_per_round), blanked]
        )

        if run_cold:
            store_relation = Relation(values[:stop].copy(), relation.schema)
            query_relation = Relation(queries.copy(), relation.schema)
            start_time = time.perf_counter()
            cold_imputer = IIMImputer(**iim_params)
            cold_imputer.fit(store_relation)
            cold_values = cold_imputer.impute(query_relation).raw
            cold_seconds = time.perf_counter() - start_time
            rms_cold = rms_error(
                truth, cold_values[np.arange(queries_per_round), blanked]
            )
        else:
            cold_seconds = float("nan")
            rms_cold = float("nan")

        result.rounds.append(
            StreamingRound(
                round_index=round_index,
                n_store=stop,
                n_appended=stop - offset,
                n_queries=queries_per_round,
                online_seconds=online_seconds,
                cold_seconds=cold_seconds,
                rms_online=rms_online,
                rms_cold=rms_cold,
            )
        )
        offset = stop

    result.engine_stats = dict(engine.stats)
    return result
