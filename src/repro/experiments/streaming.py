"""Streaming scenarios: append-only and full-lifecycle (churn) traces.

The paper evaluates IIM on static tables; this module drives the *online*
engine the way a production deployment would see data:

* :func:`run_streaming` — an initial store, then rounds of "a batch of new
  complete tuples arrives, then a batch of incomplete tuples must be
  imputed";
* :func:`run_churn` — the full tuple lifecycle: every round interleaves
  appends, in-place corrections (:meth:`~repro.online.OnlineImputationEngine.update`)
  and retractions (:meth:`~repro.online.OnlineImputationEngine.delete`)
  before the imputation queries, the workload the hybrid relearn policy is
  designed for.

Each round is measured twice:

* **online** — :class:`~repro.online.OnlineImputationEngine` absorbs the
  mutations incrementally and serves the queries from its warm model cache;
* **cold** — a fresh :class:`~repro.core.iim.IIMImputer` is refitted from
  scratch over the same surviving store and imputes the same queries (the
  baseline the paper's incremental computation is compared against).

Both must produce the same imputations (``rtol = 1e-9``; asserted in the
test suite); the interesting numbers are the per-round latencies and their
ratio, which ``benchmarks/test_perf_online.py`` records in
``BENCH_online.json``.

The online side is driven through the :mod:`repro.api` session protocol
(:class:`~repro.api.OnlineSession` + :class:`~repro.api.MutationOp`) — the
same surface the serve loop exposes — so these scenarios double as the
proof that the facade adds no overhead over raw engine calls
(``benchmarks/test_perf_api.py`` asserts the ratio).

Queries come in two flavours (``query_mode``): ``"store"`` samples tuples
the store has seen (the paper's setting), while ``"ood"`` shifts each
sampled tuple by ``ood_shift`` column standard deviations before blanking a
cell — an out-of-distribution trace probing how the engine serves requests
far from its training support (both sides still answer identically; the RMS
error is scored against the shifted truth).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..api.messages import MutationOp
from ..api.sessions import OnlineSession
from ..core.iim import IIMImputer
from ..data import load_dataset
from ..data.relation import Relation
from ..exceptions import ExperimentError
from ..metrics import rms_error
from .settings import ScaleProfile, get_profile

__all__ = [
    "StreamingRound",
    "StreamingResult",
    "run_streaming",
    "ChurnRound",
    "ChurnResult",
    "run_churn",
]

QUERY_MODES = ("store", "ood")


def _draw_queries(store, rng, n_queries, query_mode, ood_shift):
    """Sample query tuples, optionally shifted out of distribution.

    Returns ``(queries, blanked, truth)``: the query block with one NaN per
    row, the blanked attribute indices, and the ground-truth values.
    """
    if query_mode not in QUERY_MODES:
        raise ExperimentError(
            f"query_mode must be one of {QUERY_MODES}, got {query_mode!r}"
        )
    n_store, width = store.shape
    query_rows = rng.choice(n_store, size=n_queries, replace=False)
    queries = store[query_rows].copy()
    if query_mode == "ood":
        stds = store.std(axis=0)
        stds[stds == 0] = 1.0
        queries = queries + ood_shift * stds[None, :]
    blanked = rng.integers(0, width, size=n_queries)
    truth = queries[np.arange(n_queries), blanked].copy()
    queries[np.arange(n_queries), blanked] = np.nan
    return queries, blanked, truth


@dataclass
class StreamingRound:
    """Latency and error of one append+query round."""

    round_index: int
    n_store: int
    n_appended: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float

    @property
    def speedup(self) -> float:
        """Cold-refit time over online time for this round."""
        return self.cold_seconds / self.online_seconds


@dataclass
class StreamingResult:
    """Outcome of a full streaming replay."""

    dataset: str
    learning: str
    initial_store: int
    query_mode: str = "store"
    rounds: List[StreamingRound] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    engine_memory: Dict[str, int] = field(default_factory=dict)

    @property
    def online_seconds(self) -> float:
        """Total online (append + impute) time across rounds."""
        return sum(r.online_seconds for r in self.rounds)

    @property
    def cold_seconds(self) -> float:
        """Total cold (refit + impute) time across rounds."""
        return sum(r.cold_seconds for r in self.rounds)

    @property
    def speedup(self) -> float:
        """Aggregate cold/online wall-clock ratio."""
        return self.cold_seconds / self.online_seconds

    @property
    def max_rms_gap(self) -> float:
        """Largest |rms_online − rms_cold| across rounds (≈ 0 by equivalence)."""
        return max(abs(r.rms_online - r.rms_cold) for r in self.rounds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting."""
        return {
            "dataset": self.dataset,
            "learning": self.learning,
            "initial_store": self.initial_store,
            "query_mode": self.query_mode,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_rms_gap": self.max_rms_gap,
            "engine_stats": dict(self.engine_stats),
            "engine_memory": dict(self.engine_memory),
            "rounds": [
                {
                    "round": r.round_index,
                    "n_store": r.n_store,
                    "n_appended": r.n_appended,
                    "n_queries": r.n_queries,
                    "online_seconds": r.online_seconds,
                    "cold_seconds": r.cold_seconds,
                    "speedup": r.speedup,
                    "rms_online": r.rms_online,
                    "rms_cold": r.rms_cold,
                }
                for r in self.rounds
            ],
        }


def run_streaming(
    dataset: str = "sn",
    profile: Optional[ScaleProfile] = None,
    size: Optional[int] = None,
    learning: str = "adaptive",
    n_rounds: int = 8,
    initial_fraction: float = 0.4,
    queries_per_round: Optional[int] = None,
    query_mode: str = "store",
    ood_shift: float = 2.0,
    refresh_policy: str = "lazy",
    model_cache_size: Optional[int] = None,
    shard_capacity="default",
    journal_capacity="default",
    random_state: int = 0,
    run_cold: bool = True,
    **iim_overrides,
) -> StreamingResult:
    """Replay ``dataset`` as a streaming trace and time online vs. cold.

    Parameters
    ----------
    dataset:
        Name of a registered dataset (sized by the profile).
    profile:
        Scale profile; defaults to :func:`~repro.experiments.get_profile`.
    size:
        Override the profile's dataset size (streaming gains grow with the
        store-to-neighbourhood ratio, so benchmarks replay more tuples than
        the static experiments do).
    learning:
        IIM learning phase for both the engine and the cold refits.
    n_rounds:
        Number of append+query rounds after the initial store.
    initial_fraction:
        Fraction of the relation used as the initial store; the remainder is
        split evenly into the per-round append batches.
    queries_per_round:
        Incomplete tuples imputed per round (default: the profile's
        ``asf_incomplete`` capped at half the initial store).
    query_mode:
        ``"store"`` samples query tuples from the cumulative store;
        ``"ood"`` additionally shifts each sampled tuple ``ood_shift``
        column standard deviations away — an out-of-distribution trace.
    ood_shift:
        Shift size (in per-attribute standard deviations) for
        ``query_mode="ood"``.
    refresh_policy:
        Engine refresh policy (``"lazy"`` or ``"eager"``).
    model_cache_size:
        Engine model cache capacity.  Defaults to ``None`` (unbounded): the
        scenario queries every attribute, so an LRU smaller than the schema
        width would evict-and-rebuild each round and measure cache churn
        instead of incremental maintenance.
    shard_capacity:
        Columnar-store rows per shard (``"default"`` = the
        :mod:`repro.config` knob).
    journal_capacity:
        Mutation-journal ring capacity (``"default"`` = the config knob).
    random_state:
        Seed for the query cell selection.
    run_cold:
        Also time the cold refits (disable for engine-only profiling).
    iim_overrides:
        Extra :class:`IIMImputer` constructor arguments (both sides).
    """
    profile = profile or get_profile()
    relation = load_dataset(dataset, size=size or profile.dataset_sizes.get(dataset))
    values = relation.raw
    n_total = values.shape[0]

    initial = int(n_total * initial_fraction)
    if initial < 2 or initial >= n_total:
        raise ExperimentError(
            f"initial_fraction={initial_fraction} leaves no room for appends "
            f"on {n_total} tuples"
        )
    batch = (n_total - initial) // n_rounds
    if batch < 1:
        raise ExperimentError(
            f"{n_rounds} rounds do not fit into {n_total - initial} remaining tuples"
        )
    if queries_per_round is None:
        queries_per_round = min(profile.asf_incomplete, initial // 2)
    queries_per_round = max(1, queries_per_round)

    iim_params = dict(
        k=profile.default_k,
        learning=learning,
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    if learning == "fixed":
        iim_params.setdefault("learning_neighbors", profile.default_k)
    iim_params.update(iim_overrides)

    rng = np.random.default_rng(random_state)
    session = OnlineSession(
        refresh_policy=refresh_policy,
        model_cache_size=model_cache_size,
        shard_capacity=shard_capacity,
        journal_capacity=journal_capacity,
        **iim_params,
    )
    session.fit(values[:initial])

    result = StreamingResult(
        dataset=dataset, learning=learning, initial_store=initial,
        query_mode=query_mode,
    )
    offset = initial
    for round_index in range(n_rounds):
        stop = offset + batch if round_index < n_rounds - 1 else n_total
        append_op = MutationOp.append(values[offset:stop])

        # Queries: tuples sampled from the cumulative store — optionally
        # shifted out of distribution — with one attribute blanked each
        # (the truth is known, so both sides can be scored).
        queries, blanked, truth = _draw_queries(
            values[:offset], rng, queries_per_round, query_mode, ood_shift
        )

        start_time = time.perf_counter()
        session.mutate([append_op])
        online_values = session.impute(queries)
        online_seconds = time.perf_counter() - start_time
        rms_online = rms_error(
            truth, online_values[np.arange(queries_per_round), blanked]
        )

        if run_cold:
            store_relation = Relation(values[:stop].copy(), relation.schema)
            query_relation = Relation(queries.copy(), relation.schema)
            start_time = time.perf_counter()
            cold_imputer = IIMImputer(**iim_params)
            cold_imputer.fit(store_relation)
            cold_values = cold_imputer.impute(query_relation).raw
            cold_seconds = time.perf_counter() - start_time
            rms_cold = rms_error(
                truth, cold_values[np.arange(queries_per_round), blanked]
            )
        else:
            cold_seconds = float("nan")
            rms_cold = float("nan")

        result.rounds.append(
            StreamingRound(
                round_index=round_index,
                n_store=stop,
                n_appended=stop - offset,
                n_queries=queries_per_round,
                online_seconds=online_seconds,
                cold_seconds=cold_seconds,
                rms_online=rms_online,
                rms_cold=rms_cold,
            )
        )
        offset = stop

    session_stats = session.stats()
    result.engine_stats = dict(session_stats["counters"])
    result.engine_memory = dict(session_stats["memory"])
    return result


# --------------------------------------------------------------------------- #
# Churn: the full tuple lifecycle
# --------------------------------------------------------------------------- #
@dataclass
class ChurnRound:
    """Latency and error of one append+update+delete+query round."""

    round_index: int
    n_store: int
    n_appended: int
    n_updated: int
    n_deleted: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float

    @property
    def speedup(self) -> float:
        """Cold-refit time over online time for this round."""
        return self.cold_seconds / self.online_seconds


@dataclass
class ChurnResult:
    """Outcome of a full churn replay."""

    dataset: str
    learning: str
    initial_store: int
    query_mode: str
    fallback_fraction: Optional[float]
    rounds: List[ChurnRound] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    engine_memory: Dict[str, int] = field(default_factory=dict)

    @property
    def online_seconds(self) -> float:
        """Total online (mutations + impute) time across rounds."""
        return sum(r.online_seconds for r in self.rounds)

    @property
    def cold_seconds(self) -> float:
        """Total cold (refit + impute) time across rounds."""
        return sum(r.cold_seconds for r in self.rounds)

    @property
    def speedup(self) -> float:
        """Aggregate cold/online wall-clock ratio."""
        return self.cold_seconds / self.online_seconds

    @property
    def max_rms_gap(self) -> float:
        """Largest |rms_online − rms_cold| across rounds (≈ 0 by equivalence)."""
        return max(abs(r.rms_online - r.rms_cold) for r in self.rounds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting."""
        return {
            "dataset": self.dataset,
            "learning": self.learning,
            "initial_store": self.initial_store,
            "query_mode": self.query_mode,
            "fallback_fraction": self.fallback_fraction,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_rms_gap": self.max_rms_gap,
            "engine_stats": dict(self.engine_stats),
            "engine_memory": dict(self.engine_memory),
            "rounds": [
                {
                    "round": r.round_index,
                    "n_store": r.n_store,
                    "n_appended": r.n_appended,
                    "n_updated": r.n_updated,
                    "n_deleted": r.n_deleted,
                    "n_queries": r.n_queries,
                    "online_seconds": r.online_seconds,
                    "cold_seconds": r.cold_seconds,
                    "speedup": r.speedup,
                    "rms_online": r.rms_online,
                    "rms_cold": r.rms_cold,
                }
                for r in self.rounds
            ],
        }


def run_churn(
    dataset: str = "sn",
    profile: Optional[ScaleProfile] = None,
    size: Optional[int] = None,
    learning: str = "adaptive",
    n_rounds: int = 8,
    initial_fraction: float = 0.4,
    updates_per_round: Optional[int] = None,
    deletes_per_round: Optional[int] = None,
    queries_per_round: Optional[int] = None,
    query_mode: str = "store",
    ood_shift: float = 2.0,
    update_noise: float = 0.05,
    refresh_policy: str = "lazy",
    model_cache_size: Optional[int] = None,
    fallback_fraction="default",
    shard_capacity="default",
    journal_capacity="default",
    delete_cost_mode="default",
    random_state: int = 0,
    run_cold: bool = True,
    **iim_overrides,
) -> ChurnResult:
    """Replay ``dataset`` as a full-lifecycle (churn) trace.

    Every round appends a batch of fresh tuples, corrects
    ``updates_per_round`` random store tuples in place (a jitter of
    ``update_noise`` column standard deviations — a late-arriving fix),
    retracts ``deletes_per_round`` random tuples, then imputes
    ``queries_per_round`` incomplete tuples.  The online side replays the
    mutations through :class:`~repro.online.OnlineImputationEngine`
    (``fallback_fraction`` selects the hybrid relearn threshold; ``None``
    keeps it always-incremental), the cold side refits a fresh
    :class:`IIMImputer` over the surviving store each round.  Identical
    random state ⇒ identical traces, so two churn runs with different
    engine knobs are directly comparable.
    """
    profile = profile or get_profile()
    relation = load_dataset(dataset, size=size or profile.dataset_sizes.get(dataset))
    values = relation.raw
    n_total = values.shape[0]

    initial = int(n_total * initial_fraction)
    if initial < 2 or initial >= n_total:
        raise ExperimentError(
            f"initial_fraction={initial_fraction} leaves no room for appends "
            f"on {n_total} tuples"
        )
    batch = (n_total - initial) // n_rounds
    if batch < 1:
        raise ExperimentError(
            f"{n_rounds} rounds do not fit into {n_total - initial} remaining tuples"
        )
    if queries_per_round is None:
        queries_per_round = min(profile.asf_incomplete, initial // 2)
    queries_per_round = max(1, queries_per_round)
    if updates_per_round is None:
        updates_per_round = max(1, batch // 3)
    if deletes_per_round is None:
        deletes_per_round = max(1, batch // 3)

    iim_params = dict(
        k=profile.default_k,
        learning=learning,
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    if learning == "fixed":
        iim_params.setdefault("learning_neighbors", profile.default_k)
    iim_params.update(iim_overrides)

    rng = np.random.default_rng(random_state)
    session = OnlineSession(
        refresh_policy=refresh_policy,
        model_cache_size=model_cache_size,
        incremental_fallback_fraction=fallback_fraction,
        shard_capacity=shard_capacity,
        journal_capacity=journal_capacity,
        delete_cost_mode=delete_cost_mode,
        **iim_params,
    )
    session.fit(values[:initial])
    store = values[:initial].copy()
    column_stds = values.std(axis=0)
    column_stds[column_stds == 0] = 1.0

    result = ChurnResult(
        dataset=dataset,
        learning=learning,
        initial_store=initial,
        query_mode=query_mode,
        fallback_fraction=session.engine.incremental_fallback_fraction,
    )
    offset = initial
    for round_index in range(n_rounds):
        stop = offset + batch if round_index < n_rounds - 1 else n_total
        append_block = values[offset:stop]

        n_updates = min(updates_per_round, store.shape[0])
        update_targets = rng.choice(store.shape[0], size=n_updates, replace=False)
        update_rows = store[update_targets] + update_noise * column_stds[
            None, :
        ] * rng.standard_normal((n_updates, store.shape[1]))

        store = np.vstack([store, append_block])
        store[update_targets] = update_rows

        n_deletes = min(deletes_per_round, store.shape[0] - 2)
        delete_targets = np.sort(
            rng.choice(store.shape[0], size=n_deletes, replace=False)
        )
        keep = np.ones(store.shape[0], dtype=bool)
        keep[delete_targets] = False
        surviving = store[keep]

        queries, blanked, truth = _draw_queries(
            surviving, rng, queries_per_round, query_mode, ood_shift
        )

        # The whole round as one typed mutation batch — exactly what a
        # serve-loop client would send — followed by the impute request.
        ops = [MutationOp.append(append_block)]
        ops.extend(
            MutationOp.update(int(target_index), row)
            for target_index, row in zip(update_targets, update_rows)
        )
        if n_deletes:
            ops.append(MutationOp.delete(delete_targets))
        start_time = time.perf_counter()
        session.mutate(ops)
        online_values = session.impute(queries)
        online_seconds = time.perf_counter() - start_time
        store = surviving
        rms_online = rms_error(
            truth, online_values[np.arange(queries_per_round), blanked]
        )

        if run_cold:
            store_relation = Relation(store.copy(), relation.schema)
            query_relation = Relation(queries.copy(), relation.schema)
            start_time = time.perf_counter()
            cold_imputer = IIMImputer(**iim_params)
            cold_imputer.fit(store_relation)
            cold_values = cold_imputer.impute(query_relation).raw
            cold_seconds = time.perf_counter() - start_time
            rms_cold = rms_error(
                truth, cold_values[np.arange(queries_per_round), blanked]
            )
        else:
            cold_seconds = float("nan")
            rms_cold = float("nan")

        result.rounds.append(
            ChurnRound(
                round_index=round_index,
                n_store=store.shape[0],
                n_appended=stop - offset,
                n_updated=n_updates,
                n_deleted=n_deletes,
                n_queries=queries_per_round,
                online_seconds=online_seconds,
                cold_seconds=cold_seconds,
                rms_online=rms_online,
                rms_cold=rms_cold,
            )
        )
        offset = stop

    session_stats = session.stats()
    result.engine_stats = dict(session_stats["counters"])
    result.engine_memory = dict(session_stats["memory"])
    return result
