"""Experiment harness reproducing every table and figure of the paper's evaluation."""

from .figures import (
    FigureResult,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
)
from .harness import (
    ComparisonRun,
    MethodRun,
    compare_methods,
    default_method_overrides,
    run_method_on_injection,
)
from .reporting import format_matrix, format_series, format_table
from .settings import PROFILES, ScaleProfile, get_profile
from .streaming import StreamingResult, StreamingRound, run_streaming
from .tables import (
    TABLE5_DATASETS,
    TABLE6_ATTRIBUTES,
    Table5Result,
    Table6Result,
    Table7Result,
    table5,
    table6,
    table7,
)

__all__ = [
    "MethodRun",
    "ComparisonRun",
    "run_method_on_injection",
    "compare_methods",
    "default_method_overrides",
    "ScaleProfile",
    "get_profile",
    "PROFILES",
    "table5",
    "table6",
    "table7",
    "Table5Result",
    "Table6Result",
    "Table7Result",
    "TABLE5_DATASETS",
    "TABLE6_ATTRIBUTES",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "format_table",
    "format_matrix",
    "format_series",
    "StreamingRound",
    "StreamingResult",
    "run_streaming",
]
