"""Runners for the paper's Tables V, VI and VII.

Each runner returns a small result object carrying the raw numbers plus a
``render()`` method producing the aligned text table.  The pytest benchmarks
in ``benchmarks/`` call these runners; the example script
``examples/reproduce_tables.py`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import available_methods, make_imputer
from ..data.datasets import load_dataset
from ..data.missing import inject_missing, inject_missing_attribute
from ..metrics import heterogeneity_r2, sparsity_r2
from ..ml import (
    classification_application,
    classification_without_imputation,
    clustering_application,
)
from .harness import ComparisonRun, compare_methods, default_method_overrides
from .reporting import format_table
from .settings import ScaleProfile, get_profile

__all__ = [
    "Table5Result",
    "Table6Result",
    "Table7Result",
    "table5",
    "table6",
    "table7",
    "TABLE5_DATASETS",
    "TABLE6_ATTRIBUTES",
]

#: Datasets of Table V, in the paper's row order.
TABLE5_DATASETS = ("asf", "ca", "ccpp", "ccs", "da", "phase", "sn")

#: Incomplete attributes of Table VI (the ASF columns).
TABLE6_ATTRIBUTES = ("A1", "A2", "A3", "A4", "A5", "A6")


# --------------------------------------------------------------------------- #
# Table V
# --------------------------------------------------------------------------- #
@dataclass
class Table5Result:
    """Imputation RMS error of every method over several datasets."""

    methods: List[str]
    rows: Dict[str, ComparisonRun] = field(default_factory=dict)
    sparsity: Dict[str, float] = field(default_factory=dict)
    heterogeneity: Dict[str, float] = field(default_factory=dict)
    profile: str = "bench"

    def rms(self, dataset: str, method: str) -> float:
        """RMS of one method on one dataset (NaN if it failed)."""
        return self.rows[dataset].rms_of(method)

    def render(self) -> str:
        """Aligned text rendering in the layout of the paper's Table V."""
        headers = ["Dataset", "R2_S", "R2_H"] + self.methods
        body = []
        for dataset, comparison in self.rows.items():
            row = [dataset.upper(), self.sparsity[dataset], self.heterogeneity[dataset]]
            row.extend(comparison.rms_of(method) for method in self.methods)
            body.append(row)
        title = f"Table V: imputation RMS error ({self.profile} profile)"
        return format_table(headers, body, title=title, digits=3)


def table5(
    methods: Optional[Sequence[str]] = None,
    datasets: Sequence[str] = TABLE5_DATASETS,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> Table5Result:
    """Reproduce Table V: RMS error of all methods over the numeric datasets."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else available_methods()
    overrides = default_method_overrides(profile)
    result = Table5Result(methods=methods, profile=profile.name)

    for dataset in datasets:
        relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
        injection = inject_missing(
            relation, fraction=profile.missing_fraction, random_state=random_state
        )
        result.rows[dataset] = compare_methods(
            injection, methods, dataset_name=dataset, method_overrides=overrides
        )
        # Dataset profile on the default incomplete attribute (the last one),
        # sampled for speed on the larger relations.
        sample = min(relation.n_tuples, 500)
        result.sparsity[dataset] = sparsity_r2(
            relation, relation.n_attributes - 1, sample_size=sample, random_state=random_state
        )
        result.heterogeneity[dataset] = heterogeneity_r2(
            relation, relation.n_attributes - 1, sample_size=sample, random_state=random_state
        )
    return result


# --------------------------------------------------------------------------- #
# Table VI
# --------------------------------------------------------------------------- #
@dataclass
class Table6Result:
    """Per-incomplete-attribute RMS error over the ASF dataset."""

    methods: List[str]
    rows: Dict[str, ComparisonRun] = field(default_factory=dict)
    sparsity: Dict[str, float] = field(default_factory=dict)
    heterogeneity: Dict[str, float] = field(default_factory=dict)
    profile: str = "bench"

    def rms(self, attribute: str, method: str) -> float:
        """RMS of one method when ``attribute`` is the incomplete attribute."""
        return self.rows[attribute].rms_of(method)

    def render(self) -> str:
        """Aligned text rendering in the layout of the paper's Table VI."""
        headers = ["Ax", "R2_S", "R2_H"] + self.methods
        body = []
        for attribute, comparison in self.rows.items():
            row = [attribute, self.sparsity[attribute], self.heterogeneity[attribute]]
            row.extend(comparison.rms_of(method) for method in self.methods)
            body.append(row)
        title = f"Table VI: RMS error per incomplete attribute on ASF ({self.profile} profile)"
        return format_table(headers, body, title=title, digits=3)


def table6(
    methods: Optional[Sequence[str]] = None,
    attributes: Sequence[str] = TABLE6_ATTRIBUTES,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> Table6Result:
    """Reproduce Table VI: vary the incomplete attribute ``A_x`` over ASF."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else available_methods()
    overrides = default_method_overrides(profile)
    relation = load_dataset("asf", size=profile.dataset_sizes.get("asf"))
    result = Table6Result(methods=methods, profile=profile.name)

    for attribute in attributes:
        injection = inject_missing_attribute(
            relation, attribute, n_incomplete=profile.asf_incomplete, random_state=random_state
        )
        result.rows[attribute] = compare_methods(
            injection, methods, dataset_name=f"asf[{attribute}]", method_overrides=overrides
        )
        sample = min(relation.n_tuples, 500)
        result.sparsity[attribute] = sparsity_r2(
            relation, attribute, sample_size=sample, random_state=random_state
        )
        result.heterogeneity[attribute] = heterogeneity_r2(
            relation, attribute, sample_size=sample, random_state=random_state
        )
    return result


# --------------------------------------------------------------------------- #
# Table VII
# --------------------------------------------------------------------------- #
@dataclass
class Table7Result:
    """Clustering purity and classification F1 with and without imputation."""

    methods: List[str]
    clustering: Dict[str, Dict[str, float]] = field(default_factory=dict)
    classification: Dict[str, Dict[str, float]] = field(default_factory=dict)
    profile: str = "bench"

    def score(self, dataset: str, method: str) -> float:
        """Purity (clustering datasets) or F1 (classification datasets)."""
        if dataset in self.clustering:
            return self.clustering[dataset].get(method, float("nan"))
        return self.classification[dataset].get(method, float("nan"))

    def render(self) -> str:
        """Aligned text rendering in the layout of the paper's Table VII."""
        headers = ["Dataset", "Missing"] + self.methods
        body = []
        for dataset, scores in self.clustering.items():
            row = [f"{dataset.upper()} (purity)", scores.get("Missing", float("nan"))]
            row.extend(scores.get(method, float("nan")) for method in self.methods)
            body.append(row)
        for dataset, scores in self.classification.items():
            row = [f"{dataset.upper()} (f1)", scores.get("Missing", float("nan"))]
            row.extend(scores.get(method, float("nan")) for method in self.methods)
            body.append(row)
        title = f"Table VII: applications with imputation ({self.profile} profile)"
        return format_table(headers, body, title=title, digits=3)


def table7(
    methods: Optional[Sequence[str]] = None,
    clustering_datasets: Sequence[str] = ("asf", "ca"),
    classification_datasets: Sequence[str] = ("mam", "hep"),
    profile: Optional[ScaleProfile] = None,
    n_clusters: int = 5,
    random_state: int = 0,
) -> Table7Result:
    """Reproduce Table VII: downstream clustering and classification quality."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else available_methods()
    overrides = default_method_overrides(profile)
    result = Table7Result(methods=methods, profile=profile.name)

    for dataset in clustering_datasets:
        relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
        scores: Dict[str, float] = {}
        discard = clustering_application(
            relation, None, n_clusters=n_clusters,
            missing_fraction=profile.missing_fraction, random_state=random_state,
        )
        scores["Missing"] = discard.purity_discard
        for method in methods:
            imputer = make_imputer(method, **overrides.get(method, {}))
            try:
                outcome = clustering_application(
                    relation, imputer, n_clusters=n_clusters,
                    missing_fraction=profile.missing_fraction, random_state=random_state,
                )
                scores[method] = outcome.purity
            except Exception:  # noqa: BLE001 - mirror harness: record as missing
                scores[method] = float("nan")
        result.clustering[dataset] = scores

    for dataset in classification_datasets:
        relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
        scores = {}
        scores["Missing"] = classification_without_imputation(relation, random_state=random_state)
        for method in methods:
            imputer = make_imputer(method, **overrides.get(method, {}))
            try:
                scores[method] = classification_application(
                    relation, imputer, random_state=random_state
                )
            except Exception:  # noqa: BLE001
                scores[method] = float("nan")
        result.classification[dataset] = scores

    return result
