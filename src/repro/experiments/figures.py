"""Runners for the paper's Figures 4 through 13.

Every figure in the paper's evaluation plots imputation RMS error and/or
time against one swept parameter.  Each runner here performs the same sweep
and returns a :class:`FigureResult` with one series per method (and, for the
timing figures, per learning variant), which ``render()`` turns into an
aligned text table — the offline equivalent of the gnuplot output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import figure_comparison_methods, make_imputer
from ..core import IIMImputer, adaptive_learning, candidate_ell_values
from ..core.learning import learn_models_for_candidates
from ..data.datasets import load_dataset
from ..data.missing import inject_missing_attribute, inject_missing_clustered
from ..data.relation import Relation
from ..metrics import rms_error
from .harness import compare_methods, default_method_overrides, run_method_on_injection
from .reporting import format_series
from .settings import ScaleProfile, get_profile

__all__ = [
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
]


@dataclass
class FigureResult:
    """Series data backing one figure (RMS and/or time per swept value)."""

    figure: str
    x_label: str
    x_values: List[object] = field(default_factory=list)
    rms: Dict[str, List[float]] = field(default_factory=dict)
    seconds: Dict[str, List[float]] = field(default_factory=dict)
    profile: str = "bench"

    def rms_series(self, method: str) -> List[float]:
        """The RMS series of one method."""
        return list(self.rms[method])

    def time_series(self, method: str) -> List[float]:
        """The timing series of one method."""
        return list(self.seconds[method])

    def render(self) -> str:
        """Aligned text rendering: one block for RMS, one for time."""
        blocks = []
        title = f"{self.figure} ({self.profile} profile)"
        if self.rms:
            blocks.append(
                format_series(self.x_label, self.x_values, self.rms, title=f"{title} - RMS error")
            )
        if self.seconds:
            blocks.append(
                format_series(
                    self.x_label, self.x_values, self.seconds, title=f"{title} - time (s)", digits=4
                )
            )
        return "\n\n".join(blocks)


def _record(result: FigureResult, method: str, rms: float, seconds: float) -> None:
    result.rms.setdefault(method, []).append(rms)
    result.seconds.setdefault(method, []).append(seconds)


# --------------------------------------------------------------------------- #
# Figures 4 & 5: varying the number of complete attributes |F|
# --------------------------------------------------------------------------- #
def _attribute_sweep(
    figure: str,
    dataset: str,
    attribute_counts: Sequence[int],
    n_incomplete: int,
    methods: Sequence[str],
    profile: ScaleProfile,
    random_state: int,
) -> FigureResult:
    relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
    target = relation.schema.attributes[-1]
    other_attributes = list(relation.schema.attributes[:-1])
    overrides = default_method_overrides(profile)
    result = FigureResult(
        figure=figure, x_label="#complete attributes", profile=profile.name
    )

    for count in attribute_counts:
        count = min(count, len(other_attributes))
        projected = relation.select_attributes(other_attributes[:count] + [target])
        injection = inject_missing_attribute(
            projected, target, n_incomplete=n_incomplete, random_state=random_state
        )
        comparison = compare_methods(
            injection, methods, dataset_name=dataset, method_overrides=overrides
        )
        result.x_values.append(count)
        for method in methods:
            run = comparison.runs[method]
            _record(result, method, comparison.rms_of(method), run.impute_seconds)
    return result


def figure4(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 4: RMS and time vs. number of complete attributes, over ASF."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else figure_comparison_methods()
    return _attribute_sweep(
        "Figure 4", "asf", profile.attribute_counts_asf, profile.asf_incomplete,
        methods, profile, random_state,
    )


def figure5(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 5: RMS and time vs. number of complete attributes, over CA."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else figure_comparison_methods()
    return _attribute_sweep(
        "Figure 5", "ca", profile.attribute_counts_ca, profile.ca_incomplete,
        methods, profile, random_state,
    )


# --------------------------------------------------------------------------- #
# Figures 6 & 7: varying the number of complete tuples n
# --------------------------------------------------------------------------- #
def _tuple_sweep(
    figure: str,
    dataset: str,
    tuple_counts: Sequence[int],
    n_incomplete: int,
    methods: Sequence[str],
    profile: ScaleProfile,
    random_state: int,
) -> FigureResult:
    overrides = default_method_overrides(profile)
    result = FigureResult(figure=figure, x_label="#complete tuples", profile=profile.name)
    full = load_dataset(dataset, size=max(tuple_counts) + n_incomplete)
    target = full.schema.attributes[-1]
    rng = np.random.default_rng(random_state)

    for n in tuple_counts:
        rows = np.sort(rng.choice(full.n_tuples, size=n + n_incomplete, replace=False))
        subset = full.select_rows(rows)
        injection = inject_missing_attribute(
            subset, target, n_incomplete=n_incomplete, random_state=random_state
        )
        comparison = compare_methods(
            injection, methods, dataset_name=dataset, method_overrides=overrides
        )
        result.x_values.append(n)
        for method in methods:
            run = comparison.runs[method]
            _record(result, method, comparison.rms_of(method), run.impute_seconds)
    return result


def figure6(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 6: RMS and time vs. number of complete tuples, over ASF."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else figure_comparison_methods()
    return _tuple_sweep(
        "Figure 6", "asf", profile.tuple_counts_asf, profile.asf_incomplete,
        methods, profile, random_state,
    )


def figure7(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 7: RMS and time vs. number of complete tuples, over CA."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else figure_comparison_methods()
    return _tuple_sweep(
        "Figure 7", "ca", profile.tuple_counts_ca, profile.ca_incomplete,
        methods, profile, random_state,
    )


# --------------------------------------------------------------------------- #
# Figure 8: varying the cluster size of incomplete tuples
# --------------------------------------------------------------------------- #
def figure8(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 8: RMS and time vs. the cluster size of incomplete tuples (ASF)."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else figure_comparison_methods()
    overrides = default_method_overrides(profile)
    relation = load_dataset("asf", size=profile.dataset_sizes.get("asf"))
    target = relation.schema.attributes[-1]
    result = FigureResult(
        figure="Figure 8", x_label="cluster size of incomplete tuples", profile=profile.name
    )

    for cluster_size in profile.cluster_sizes:
        injection = inject_missing_clustered(
            relation,
            n_incomplete=profile.asf_incomplete,
            cluster_size=cluster_size,
            attribute=target,
            random_state=random_state,
        )
        comparison = compare_methods(
            injection, methods, dataset_name="asf", method_overrides=overrides
        )
        result.x_values.append(cluster_size)
        for method in methods:
            run = comparison.runs[method]
            _record(result, method, comparison.rms_of(method), run.impute_seconds)
    return result


# --------------------------------------------------------------------------- #
# Figures 9 & 10: varying the number of imputation neighbours k
# --------------------------------------------------------------------------- #
def _k_sweep(
    figure: str,
    dataset: str,
    n_incomplete: int,
    methods: Sequence[str],
    profile: ScaleProfile,
    random_state: int,
) -> FigureResult:
    relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
    target = relation.schema.attributes[-1]
    injection = inject_missing_attribute(
        relation, target, n_incomplete=n_incomplete, random_state=random_state
    )
    n_complete = injection.dirty.complete_part().n_tuples
    result = FigureResult(figure=figure, x_label="#imputation neighbors k", profile=profile.name)

    for k in profile.imputation_neighbors:
        if k > n_complete:
            continue
        result.x_values.append(k)
        for method in methods:
            overrides: Dict[str, object] = {"k": k}
            if method == "IIM":
                overrides.update(
                    stepping=profile.iim_stepping,
                    max_learning_neighbors=profile.iim_max_learning_neighbors,
                )
            imputer = make_imputer(method, **overrides)
            run = run_method_on_injection(imputer, injection, method)
            _record(result, method, run.rms if not run.failed else float("nan"), run.impute_seconds)
    return result


def figure9(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 9: RMS and time vs. the number of imputation neighbours, over ASF."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else ["kNN", "IIM", "kNNE"]
    return _k_sweep("Figure 9", "asf", profile.asf_incomplete, methods, profile, random_state)


def figure10(
    methods: Optional[Sequence[str]] = None,
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> FigureResult:
    """Figure 10: RMS and time vs. the number of imputation neighbours, over CA."""
    profile = profile or get_profile()
    methods = list(methods) if methods is not None else ["kNN", "IIM", "kNNE"]
    return _k_sweep("Figure 10", "ca", profile.ca_incomplete, methods, profile, random_state)


# --------------------------------------------------------------------------- #
# Figure 11: fixed ℓ vs. adaptive learning
# --------------------------------------------------------------------------- #
def figure11(
    datasets: Sequence[str] = ("asf", "ca"),
    profile: Optional[ScaleProfile] = None,
    random_state: int = 0,
) -> Dict[str, FigureResult]:
    """Figure 11: imputation error of fixed-ℓ learning vs. adaptive learning.

    Returns one :class:`FigureResult` per dataset; the ``"Adaptive"`` series
    is constant across the swept ℓ values (it does not depend on them), as
    in the paper's horizontal reference line.
    """
    profile = profile or get_profile()
    results: Dict[str, FigureResult] = {}

    for dataset in datasets:
        relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
        target = relation.schema.attributes[-1]
        n_incomplete = profile.asf_incomplete if dataset == "asf" else profile.ca_incomplete
        injection = inject_missing_attribute(
            relation, target, n_incomplete=n_incomplete, random_state=random_state
        )
        n_complete = injection.dirty.complete_part().n_tuples
        result = FigureResult(
            figure=f"Figure 11 ({dataset.upper()})",
            x_label="#learning neighbors l",
            profile=profile.name,
        )

        adaptive = IIMImputer(
            k=profile.default_k,
            learning="adaptive",
            stepping=profile.iim_stepping,
            max_learning_neighbors=profile.iim_max_learning_neighbors,
        )
        adaptive_run = run_method_on_injection(adaptive, injection, "Adaptive")

        for ell in profile.learning_neighbors:
            if ell > n_complete:
                continue
            result.x_values.append(ell)
            fixed = IIMImputer(k=profile.default_k, learning="fixed", learning_neighbors=ell)
            fixed_run = run_method_on_injection(fixed, injection, "Fixed")
            _record(result, "Fixed l", fixed_run.rms, fixed_run.total_seconds)
            _record(result, "Adaptive", adaptive_run.rms, adaptive_run.total_seconds)
        results[dataset] = result
    return results


# --------------------------------------------------------------------------- #
# Figure 12: scalability of adaptive learning (straightforward vs incremental)
# --------------------------------------------------------------------------- #
def figure12(
    datasets: Sequence[str] = ("sn", "ca"),
    profile: Optional[ScaleProfile] = None,
    stepping: Optional[int] = None,
    random_state: int = 0,
) -> Dict[str, FigureResult]:
    """Figure 12: adaptive-learning (model determination) time vs. n.

    Compares the straightforward re-learning of Algorithm 3 against the
    incremental computation of Proposition 3 (both with the same stepping,
    the paper uses h = 50).
    """
    profile = profile or get_profile()
    stepping = stepping if stepping is not None else max(profile.iim_stepping, 10)
    results: Dict[str, FigureResult] = {}

    for dataset in datasets:
        result = FigureResult(
            figure=f"Figure 12 ({dataset.upper()})",
            x_label="#complete tuples",
            profile=profile.name,
        )
        full = load_dataset(dataset, size=max(profile.scalability_tuple_counts))
        target_index = full.n_attributes - 1
        feature_indices = [i for i in range(full.n_attributes) if i != target_index]
        values = full.raw

        for n in profile.scalability_tuple_counts:
            features = values[:n, feature_indices]
            target = values[:n, target_index]
            candidates = candidate_ell_values(
                n, stepping=stepping, max_ell=min(n, profile.iim_max_learning_neighbors)
            )
            timings = {}
            for variant, incremental in (("Straightforward", False), ("Incremental", True)):
                start = time.perf_counter()
                adaptive_learning(
                    features,
                    target,
                    validation_neighbors=profile.default_k,
                    candidates=candidates,
                    incremental=incremental,
                )
                timings[variant] = time.perf_counter() - start
            result.x_values.append(n)
            for variant, seconds in timings.items():
                result.seconds.setdefault(variant, []).append(seconds)
        results[dataset] = result
    return results


# --------------------------------------------------------------------------- #
# Figure 13: trade-off via stepping h
# --------------------------------------------------------------------------- #
def figure13(
    profile: Optional[ScaleProfile] = None,
    dataset: str = "asf",
    random_state: int = 0,
) -> FigureResult:
    """Figure 13: imputation RMS and determination time vs. the stepping h.

    Both the straightforward and the incremental determination are timed;
    their imputation errors are identical (asserted in the test suite), so a
    single RMS series is reported.
    """
    profile = profile or get_profile()
    relation = load_dataset(dataset, size=profile.dataset_sizes.get(dataset))
    target = relation.schema.attributes[-1]
    injection = inject_missing_attribute(
        relation, target, n_incomplete=profile.asf_incomplete, random_state=random_state
    )
    complete = injection.dirty.complete_part()
    target_index = complete.n_attributes - 1
    feature_indices = [i for i in range(complete.n_attributes) if i != target_index]
    features = complete.raw[:, feature_indices]
    target_values = complete.raw[:, target_index]
    queries = injection.dirty.raw[np.ix_(injection.rows, feature_indices)]
    n_complete = complete.n_tuples

    result = FigureResult(figure="Figure 13", x_label="stepping h", profile=profile.name)
    max_ell = min(n_complete, profile.iim_max_learning_neighbors)

    from ..core.imputation import impute_with_individual_models

    for h in profile.stepping_values:
        candidates = candidate_ell_values(n_complete, stepping=h, max_ell=max_ell)
        timings = {}
        models = None
        for variant, incremental in (("Straightforward", False), ("Incremental", True)):
            start = time.perf_counter()
            outcome = adaptive_learning(
                features,
                target_values,
                validation_neighbors=profile.default_k,
                candidates=candidates,
                incremental=incremental,
            )
            timings[variant] = time.perf_counter() - start
            models = outcome.models
        imputed = impute_with_individual_models(
            queries, models, features, target_values, k=min(profile.default_k, n_complete)
        )
        result.x_values.append(h)
        result.rms.setdefault("IIM", []).append(rms_error(injection.truth, imputed))
        for variant, seconds in timings.items():
            result.seconds.setdefault(variant, []).append(seconds)
    return result
