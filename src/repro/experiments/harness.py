"""Generic experiment harness shared by every table and figure runner.

The harness factors out the paper's evaluation protocol:

1. build (or accept) a complete relation;
2. inject missing values under one of the protocols of Section VI-A2;
3. fit each method on the complete part, impute, and time the two phases;
4. score the imputations against the held-out truth with RMS error.

Every method runs through the :mod:`repro.api` session protocol
(:class:`~repro.api.BatchSession` adapting the registry imputer), the same
surface the CLI and the serve loop speak — the sessions delegate verbatim,
so the harness numbers are bit-identical to driving the imputers directly.
Results come back as plain dataclasses so the table/figure runners and the
pytest benchmarks can format or assert on them without re-running anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..api.sessions import BatchSession, ImputationSession
from ..baselines.base import BaseImputer
from ..data.missing import InjectionResult
from ..exceptions import ExperimentError
from ..metrics import rms_error

__all__ = [
    "MethodRun",
    "ComparisonRun",
    "run_method_on_injection",
    "compare_methods",
    "default_method_overrides",
]


@dataclass
class MethodRun:
    """Outcome of one method on one dirty relation."""

    method: str
    rms: float
    fit_seconds: float
    impute_seconds: float
    n_imputed: int
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether the method raised instead of producing imputations."""
        return self.error is not None

    @property
    def total_seconds(self) -> float:
        """Fit plus impute time."""
        return self.fit_seconds + self.impute_seconds


@dataclass
class ComparisonRun:
    """Outcome of several methods on the same injected relation."""

    dataset: str
    n_tuples: int
    n_attributes: int
    n_incomplete: int
    runs: Dict[str, MethodRun] = field(default_factory=dict)

    def rms_of(self, method: str) -> float:
        """RMS error of one method (NaN when the method failed)."""
        run = self.runs[method]
        return float("nan") if run.failed else run.rms

    def best_method(self) -> str:
        """The method with the lowest RMS among those that succeeded."""
        valid = {name: run.rms for name, run in self.runs.items() if not run.failed}
        if not valid:
            raise ExperimentError("no method produced a valid imputation")
        return min(valid, key=valid.get)

    def ranking(self) -> List[str]:
        """Methods ordered from best (lowest RMS) to worst; failures last."""
        valid = sorted(
            (name for name, run in self.runs.items() if not run.failed),
            key=lambda name: self.runs[name].rms,
        )
        failed = [name for name, run in self.runs.items() if run.failed]
        return valid + failed


def default_method_overrides(profile) -> Dict[str, Dict[str, object]]:
    """Per-method constructor overrides derived from a scale profile.

    Keeps the neighbour-based methods and IIM on the same ``k`` and bounds
    IIM's adaptive search so the comparison is fair and fast.
    """
    k = profile.default_k
    return {
        "IIM": {
            "k": k,
            "stepping": profile.iim_stepping,
            "max_learning_neighbors": profile.iim_max_learning_neighbors,
            # A validation neighbourhood larger than k makes the per-tuple ℓ
            # selection more robust on collinear data (see DESIGN.md §6).
            "validation_neighbors": 3 * k,
        },
        "kNN": {"k": k},
        "kNNE": {"k": k},
        "ILLS": {"k": k},
        "ERACER": {"k": k},
        "LOESS": {"k": max(k, 15)},
        "BLR": {"random_state": 0},
        "PMM": {"random_state": 0},
    }


def run_method_on_injection(
    imputer: Union[BaseImputer, ImputationSession],
    injection: InjectionResult,
    method_name: Optional[str] = None,
) -> MethodRun:
    """Fit, impute and score one method on one injected relation.

    ``imputer`` may be a raw :class:`BaseImputer` (adapted into a
    :class:`~repro.api.BatchSession` on the spot) or any
    :class:`~repro.api.ImputationSession`.  A method that raises is
    reported as failed rather than aborting the whole comparison (the paper
    similarly omits methods that are undefined on a dataset, e.g. SVD on
    two-attribute data).
    """
    if isinstance(imputer, ImputationSession):
        session = imputer
    else:
        session = BatchSession(imputer=imputer)
    name = method_name or session.method
    dirty = injection.dirty
    try:
        start = time.perf_counter()
        session.fit(dirty)
        fit_seconds = time.perf_counter() - start

        start = time.perf_counter()
        imputed = session.impute(dirty)
        impute_seconds = time.perf_counter() - start

        values = imputed[injection.rows, injection.attributes]
        rms = rms_error(injection.truth, values)
        return MethodRun(
            method=name,
            rms=rms,
            fit_seconds=fit_seconds,
            impute_seconds=impute_seconds,
            n_imputed=len(injection),
        )
    except Exception as exc:  # noqa: BLE001 - deliberate: record and continue
        return MethodRun(
            method=name,
            rms=float("nan"),
            fit_seconds=0.0,
            impute_seconds=0.0,
            n_imputed=len(injection),
            error=f"{type(exc).__name__}: {exc}",
        )


def compare_methods(
    injection: InjectionResult,
    methods: Sequence[str],
    dataset_name: str = "",
    method_overrides: Optional[Dict[str, Dict[str, object]]] = None,
) -> ComparisonRun:
    """Run a list of registered methods on the same injected relation.

    Each method is served through a fresh :class:`~repro.api.BatchSession`,
    so the comparison exercises the exact surface production callers use.
    """
    overrides = method_overrides or {}
    dirty = injection.dirty
    comparison = ComparisonRun(
        dataset=dataset_name or dirty.name,
        n_tuples=dirty.n_tuples,
        n_attributes=dirty.n_attributes,
        n_incomplete=len(injection),
    )
    for method in methods:
        session = BatchSession(method, **overrides.get(method, {}))
        comparison.runs[method] = run_method_on_injection(session, injection, method)
    return comparison
