"""Experiment scaling profiles.

The paper runs on datasets of up to 100k tuples with 14 methods; repeating
that verbatim takes hours on a laptop.  Every experiment in this package
therefore reads its workload sizes from a :class:`ScaleProfile`:

* ``smoke``  — very small sizes used by the unit tests of the harness;
* ``bench``  — the default for ``pytest benchmarks/``: small enough to finish
  in minutes, large enough that the paper's qualitative shape (method
  ordering, crossovers, U-shaped ℓ curves) is preserved;
* ``paper``  — the published sizes (set ``REPRO_FULL=1`` to select it).

The profile only changes *sizes* (number of tuples, number of incomplete
tuples, sweep grids); the algorithms and protocols are identical across
profiles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ScaleProfile", "get_profile", "PROFILES"]


@dataclass(frozen=True)
class ScaleProfile:
    """Workload sizes for the experiment harness."""

    name: str
    #: Number of tuples per dataset (overrides the registry defaults).
    dataset_sizes: Dict[str, int]
    #: Number of incomplete tuples used by the ASF-based experiments.
    asf_incomplete: int
    #: Number of incomplete tuples used by the CA-based experiments.
    ca_incomplete: int
    #: Fraction of incomplete tuples for Table V style experiments.
    missing_fraction: float
    #: Sweep grids.
    attribute_counts_asf: List[int] = field(default_factory=list)
    attribute_counts_ca: List[int] = field(default_factory=list)
    tuple_counts_asf: List[int] = field(default_factory=list)
    tuple_counts_ca: List[int] = field(default_factory=list)
    cluster_sizes: List[int] = field(default_factory=list)
    imputation_neighbors: List[int] = field(default_factory=list)
    learning_neighbors: List[int] = field(default_factory=list)
    stepping_values: List[int] = field(default_factory=list)
    scalability_tuple_counts: List[int] = field(default_factory=list)
    #: IIM configuration shared by the comparison experiments.
    iim_stepping: int = 5
    iim_max_learning_neighbors: int = 100
    default_k: int = 10


_SMOKE = ScaleProfile(
    name="smoke",
    dataset_sizes={
        "asf": 200, "ccs": 200, "ccpp": 200, "sn": 300, "phase": 200,
        "ca": 250, "da": 200, "mam": 150, "hep": 120,
    },
    asf_incomplete=20,
    ca_incomplete=25,
    missing_fraction=0.05,
    attribute_counts_asf=[2, 3, 5],
    attribute_counts_ca=[5, 8],
    tuple_counts_asf=[100, 150, 200],
    tuple_counts_ca=[150, 250],
    cluster_sizes=[1, 3, 5],
    imputation_neighbors=[1, 3, 5, 10],
    learning_neighbors=[1, 5, 10, 20, 50],
    stepping_values=[1, 5, 20],
    scalability_tuple_counts=[100, 200],
    iim_stepping=10,
    iim_max_learning_neighbors=40,
    default_k=5,
)

_BENCH = ScaleProfile(
    name="bench",
    dataset_sizes={
        "asf": 600, "ccs": 500, "ccpp": 800, "sn": 1200, "phase": 800,
        "ca": 800, "da": 700, "mam": 400, "hep": 200,
    },
    asf_incomplete=60,
    ca_incomplete=80,
    missing_fraction=0.05,
    attribute_counts_asf=[2, 3, 4, 5],
    attribute_counts_ca=[5, 6, 7, 8],
    tuple_counts_asf=[150, 300, 450, 600],
    tuple_counts_ca=[200, 400, 600, 800],
    cluster_sizes=[1, 2, 3, 5, 8, 10],
    imputation_neighbors=[1, 2, 3, 5, 10, 20, 50],
    learning_neighbors=[1, 5, 10, 20, 50, 100, 200],
    stepping_values=[1, 5, 10, 20, 60],
    scalability_tuple_counts=[200, 400, 600, 800],
    iim_stepping=5,
    iim_max_learning_neighbors=100,
    default_k=10,
)

_PAPER = ScaleProfile(
    name="paper",
    dataset_sizes={
        "asf": 1500, "ccs": 1000, "ccpp": 10000, "sn": 100000, "phase": 10000,
        "ca": 20000, "da": 7000, "mam": 1000, "hep": 200,
    },
    asf_incomplete=100,
    ca_incomplete=1000,
    missing_fraction=0.05,
    attribute_counts_asf=[2, 3, 4, 5],
    attribute_counts_ca=[5, 6, 7, 8],
    tuple_counts_asf=[150, 300, 450, 600, 750, 900, 1000, 1200, 1300, 1400],
    tuple_counts_ca=[2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000],
    cluster_sizes=[1, 2, 3, 5, 8, 10],
    imputation_neighbors=[1, 2, 3, 5, 10, 20, 50, 100],
    learning_neighbors=[1, 10, 20, 50, 100, 200, 300, 500, 700, 1000],
    stepping_values=[1, 5, 10, 20, 60, 100, 200, 300, 500],
    scalability_tuple_counts=[2000, 4000, 6000, 8000, 10000],
    iim_stepping=5,
    iim_max_learning_neighbors=1000,
    default_k=10,
)

PROFILES: Dict[str, ScaleProfile] = {
    "smoke": _SMOKE,
    "bench": _BENCH,
    "paper": _PAPER,
}


def get_profile(name: str = None) -> ScaleProfile:
    """Resolve a scale profile.

    Priority: explicit ``name`` argument, then the ``REPRO_PROFILE``
    environment variable, then ``REPRO_FULL=1`` (paper scale), then the
    ``bench`` default.
    """
    if name is None:
        name = os.environ.get("REPRO_PROFILE")
    if name is None:
        name = "paper" if os.environ.get("REPRO_FULL") == "1" else "bench"
    key = str(name).lower()
    if key not in PROFILES:
        raise KeyError(f"unknown scale profile {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[key]
