"""Plain-text reporting of experiment results.

The paper presents its evaluation as tables (Tables V-VII) and gnuplot-style
figures.  Offline we render everything as aligned text tables, which the
example scripts print and EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_matrix", "format_series", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Render a float compactly, using ``-`` for NaN (a failed/unavailable run)."""
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "-"
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render rows of mixed str/float cells as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell, digits))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    values: Mapping[str, Mapping[str, float]],
    corner: str = "",
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render a nested mapping ``values[row][column]`` as a table."""
    headers = [corner] + list(column_labels)
    rows = []
    for row_label in row_labels:
        row = [row_label]
        for column in column_labels:
            row.append(values.get(row_label, {}).get(column, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title, digits=digits)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    digits: int = 3,
) -> str:
    """Render figure-style data: one x column plus one column per method."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title, digits=digits)
