"""The metrics registry: counters, gauges and fixed-bucket histograms.

Stdlib-only and thread-safe: one :class:`MetricsRegistry` holds named
*families* (a metric name plus its label names), each family holds one
series per distinct label-value tuple, and every mutation takes the
registry lock — increments are plain float adds under the GIL, so the lock
is only ever held for nanoseconds and contention is irrelevant next to the
numpy work being measured.

Histograms use **fixed buckets** (default: a latency ladder from 100µs to
10s plus ``+Inf``), the same representation Prometheus uses: cumulative
counts per upper bound, a running sum and count.  Quantiles (p50/p95/p99)
are estimated the way ``histogram_quantile`` does it — find the bucket the
rank falls in, interpolate linearly inside it — which the test suite checks
against ``numpy.percentile`` to within one bucket width.

Two snapshot surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict (what the ``metrics``
  serve command returns by default);
* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` once per family, label values escaped), so a
  scrape of the serve loop drops straight into Prometheus.

When the registry is disabled (constructor argument, or deferring to the
``repro.config`` ``obs_enabled`` knob) every mutation returns before
touching the lock — the cost of a disabled instrument is one attribute
load and one boolean check.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import get_obs_enabled
from ..exceptions import ConfigurationError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets: a latency ladder (seconds) from 100µs to 10s.
#: ``+Inf`` is implicit — observations above the last bound land there.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_metric_name(name: str) -> str:
    if not isinstance(name, str) or not _METRIC_NAME.match(name):
        raise ConfigurationError(
            f"invalid metric name {name!r}; must match "
            f"[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _validate_label_names(labelnames) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for name in names:
        if not isinstance(name, str) or not _LABEL_NAME.match(name):
            raise ConfigurationError(
                f"invalid label name {name!r}; must match "
                f"[a-zA-Z_][a-zA-Z0-9_]*"
            )
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate label names in {names!r}")
    return names


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared plumbing of one metric family (name + label names)."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        # label-value tuple -> series state (subclass-specific)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        names = self.labelnames
        # Hot path: the exact label set, keyed in declaration order.
        if len(labels) == len(names):
            try:
                return tuple(str(labels[name]) for name in names)
            except KeyError:
                pass
        raise ConfigurationError(
            f"metric {self.name!r} takes labels "
            f"{sorted(names)}, got {sorted(labels)}"
        )

    def series_labels(self) -> List[Dict[str, str]]:
        """Label dicts of every live series in this family.

        Lets a consumer enumerate what was actually observed — e.g. the
        scenario replayer harvesting per-phase latency summaries without
        hard-coding the phase names it expects to find.
        """
        with self._registry._lock:
            keys = list(self._series.keys())
        return [dict(zip(self.labelnames, key)) for key in keys]


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, cells)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self._inc_fast(self._key(labels), amount)

    def _inc_fast(self, key: Tuple[str, ...], amount: float = 1.0) -> None:
        # Hot path for the package helpers: the caller has already checked
        # the enabled knob and supplies label values in declaration order.
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._registry._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """A value that goes up and down (open sessions, live rows)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._registry._lock:
            return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative), +Inf last
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution with interpolated quantile summaries."""

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be a non-empty strictly "
                f"increasing sequence, got {buckets!r}"
            )
        self.buckets = bounds  # finite upper bounds; +Inf is implicit

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._observe_fast(self._key(labels), float(value))

    def _observe_fast(self, key: Tuple[str, ...], value: float) -> None:
        # Hot path for the package helpers (see Counter._inc_fast).
        # First bucket whose upper bound contains the value (le-inclusive);
        # values above the last finite bound land in the +Inf bucket.
        index = bisect_left(self.buckets, value)
        with self._registry._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1
                )
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimate the q-quantile by interpolating inside its bucket.

        Returns ``None`` for an empty series.  Observations above the last
        finite bound clamp to that bound (the ``+Inf`` bucket has no upper
        edge to interpolate toward) — the same convention Prometheus'
        ``histogram_quantile`` uses.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._registry._lock:
            series = self._series.get(self._key(labels))
            if series is None or series.count == 0:
                return None
            counts = list(series.counts)
            total = series.count
        rank = q * total
        cumulative = 0.0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = self.buckets[i]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def summary(self, **labels) -> Dict[str, object]:
        """Count/sum plus p50/p95/p99 for one series."""
        with self._registry._lock:
            series = self._series.get(self._key(labels))
            count = 0 if series is None else series.count
            total = 0.0 if series is None else series.sum
        return {
            "count": count,
            "sum": total,
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
        }


class MetricsRegistry:
    """A process-wide table of metric families.

    ``enabled=None`` (the default) defers to the ``obs_enabled`` knob in
    :mod:`repro.config` at every mutation, so flipping the knob switches
    every already-created instrument; an explicit ``True``/``False`` pins
    the registry (used by tests and micro-benchmarks).
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self._families: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        if self._enabled is not None:
            return self._enabled
        return get_obs_enabled()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _register(self, cls, name, help, labelnames, **kwargs):
        _validate_metric_name(name)
        labelnames = _validate_label_names(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != labelnames
                ):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind} with labels "
                        f"{sorted(existing.labelnames)}"
                    )
                return existing
            instrument = cls(self, name, help, labelnames, **kwargs)
            self._families[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def reset(self) -> None:
        """Zero every series (families stay registered)."""
        with self._lock:
            for family in self._families.values():
                family._series.clear()

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dict of every family and series."""
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in families:
            with self._lock:
                items = list(family._series.items())
            if isinstance(family, Histogram):
                series = []
                for key, state in items:
                    labels = dict(zip(family.labelnames, key))
                    entry = {
                        "labels": labels,
                        "counts": list(state.counts),
                        **family.summary(**labels),
                    }
                    series.append(entry)
                out["histograms"][family.name] = {
                    "help": family.help,
                    "buckets": list(family.buckets),
                    "series": series,
                }
            else:
                section = (
                    out["counters"] if isinstance(family, Counter)
                    else out["gauges"]
                )
                section[family.name] = {
                    "help": family.help,
                    "series": [
                        {
                            "labels": dict(zip(family.labelnames, key)),
                            "value": value,
                        }
                        for key, value in items
                    ],
                }
        return out

    def to_prometheus(self) -> str:
        """The text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            with self._lock:
                items = sorted(family._series.items())
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for key, state in items:
                    label_str = self._labels(family.labelnames, key)
                    cumulative = 0
                    for bound, count in zip(
                        family.buckets + (float("inf"),), state.counts
                    ):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        extra = f'le="{le}"'
                        joined = (
                            f"{label_str[:-1]},{extra}}}" if label_str
                            else f"{{{extra}}}"
                        )
                        lines.append(
                            f"{family.name}_bucket{joined} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{label_str} "
                        f"{_format_value(state.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{label_str} {state.count}"
                    )
            else:
                for key, value in items:
                    label_str = self._labels(family.labelnames, key)
                    lines.append(
                        f"{family.name}{label_str} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
        if not names:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(names, values)
        )
        return "{" + pairs + "}"
