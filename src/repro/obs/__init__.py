"""repro.obs — the observability layer: metrics, tracing, instrumentation.

Stdlib-only and dependency-free, this package gives the rest of the
library one process-wide :class:`MetricsRegistry` (:func:`get_registry`)
and one :class:`Tracer` (:func:`get_tracer`), plus tiny helper functions
(:func:`engine_phase`, :func:`observe_request`, ...) that the serve loop,
the online engine, the WAL, the artifact store and the fault injector call
at their interesting moments.  Every helper checks the ``obs_enabled``
config knob first and returns immediately when observability is off, so
the disabled cost at a call site is one function call and one boolean.

The standard metric families are registered eagerly at import so that
``python -m repro metrics-dump`` and a Prometheus scrape of a fresh server
expose the full catalogue (with ``# HELP`` text) even before traffic:

===============================  =========  ===========================
metric                           kind       labels
===============================  =========  ===========================
``repro_requests_total``         counter    ``cmd``, ``status``
``repro_request_seconds``        histogram  ``cmd``
``repro_engine_phase_seconds``   histogram  ``phase``
``repro_imputed_cells_total``    counter    ``kind`` (batch/online)
``repro_wal_sync_seconds``       histogram  ``policy``
``repro_wal_bytes_total``        counter    —
``repro_wal_rotations_total``    counter    —
``repro_artifact_io_seconds``    histogram  ``op`` (write/read)
``repro_artifact_bytes_total``   counter    ``op``
``repro_fault_activations_total``  counter  ``site``, ``kind``
``repro_store_rows_total``       counter    ``op`` (append/delete/update)
``repro_journal_spills_total``   counter    —
``repro_sessions_open``          gauge      —
``repro_serve_workers``          gauge      —
``repro_queue_depth``            gauge      —
``repro_microbatches_total``     counter    —
``repro_microbatch_rows_total``  counter    —
``repro_microbatch_fill``        histogram  —
``repro_microbatch_wait_seconds``  histogram  —
``repro_admission_rejections_total``  counter  ``reason``
``repro_query_seconds``          histogram  ``phase``
``repro_query_rows_total``       counter    ``kind`` (scanned/imputed)
===============================  =========  ===========================
"""

from __future__ import annotations

import time
from typing import Dict, Optional

# Bound once at import (repro.config imports nothing from this package, so
# there is no cycle); the function itself re-reads the knob on every call,
# keeping set_obs_enabled() instant while the disabled path stays two calls.
from ..config import get_obs_enabled as _enabled

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _HistogramSeries,
    bisect_left,
)
from .tracing import (
    TRACE_SEGMENT_SUFFIX,
    JsonlTraceSink,
    Span,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "Span",
    "JsonlTraceSink",
    "TRACE_SEGMENT_SUFFIX",
    "get_registry",
    "get_tracer",
    "reset_observability",
    "trace_span",
    "engine_phase",
    "observe_request",
    "observe_imputed_cells",
    "observe_wal_sync",
    "count_wal_bytes",
    "count_wal_rotation",
    "observe_artifact_io",
    "count_fault_activation",
    "count_store_rows",
    "count_journal_spill",
    "set_sessions_open",
    "set_serve_workers",
    "set_queue_depth",
    "observe_microbatch",
    "count_admission_rejection",
    "query_phase",
    "count_query_rows",
    "install_trace_sink",
]

_registry = MetricsRegistry()
_tracer = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry every instrumented module feeds."""
    return _registry


def get_tracer() -> Tracer:
    """The process-wide tracer behind the serve loop's request spans."""
    return _tracer


def reset_observability() -> None:
    """Zero every metric series and drop the trace ring (test isolation)."""
    _registry.reset()
    _tracer.reset()


# --------------------------------------------------------------------------- #
# The standard instrument catalogue
# --------------------------------------------------------------------------- #
REQUESTS_TOTAL = _registry.counter(
    "repro_requests_total",
    "Serve-loop requests answered, by command and response status.",
    ("cmd", "status"),
)
REQUEST_SECONDS = _registry.histogram(
    "repro_request_seconds",
    "Serve-loop request latency, by command.",
    ("cmd",),
)
ENGINE_PHASE_SECONDS = _registry.histogram(
    "repro_engine_phase_seconds",
    "Online-engine phase latency (append, order maintenance, subset "
    "relearn, cost rebuild, full rebuild, impute kernel).",
    ("phase",),
)
IMPUTED_CELLS_TOTAL = _registry.counter(
    "repro_imputed_cells_total",
    "Cells imputed, by session kind (batch or online).",
    ("kind",),
)
WAL_SYNC_SECONDS = _registry.histogram(
    "repro_wal_sync_seconds",
    "WAL flush/fsync latency, by sync policy.",
    ("policy",),
)
WAL_BYTES_TOTAL = _registry.counter(
    "repro_wal_bytes_total",
    "Bytes framed into the write-ahead log.",
)
WAL_ROTATIONS_TOTAL = _registry.counter(
    "repro_wal_rotations_total",
    "WAL segment rotations.",
)
ARTIFACT_IO_SECONDS = _registry.histogram(
    "repro_artifact_io_seconds",
    "Artifact save/restore latency, by operation.",
    ("op",),
)
ARTIFACT_BYTES_TOTAL = _registry.counter(
    "repro_artifact_bytes_total",
    "Artifact bytes written or read, by operation.",
    ("op",),
)
FAULT_ACTIVATIONS_TOTAL = _registry.counter(
    "repro_fault_activations_total",
    "Injected-fault activations, by site and fault kind.",
    ("site", "kind"),
)
STORE_ROWS_TOTAL = _registry.counter(
    "repro_store_rows_total",
    "Tuple-store row mutations, by operation.",
    ("op",),
)
JOURNAL_SPILLS_TOTAL = _registry.counter(
    "repro_journal_spills_total",
    "Mutation-journal spills (journal overflow forcing a flush).",
)
SESSIONS_OPEN = _registry.gauge(
    "repro_sessions_open",
    "Sessions currently open on the serve loop.",
)
SERVE_WORKERS = _registry.gauge(
    "repro_serve_workers",
    "Worker threads in the serve scheduler's pool.",
)
QUEUE_DEPTH = _registry.gauge(
    "repro_queue_depth",
    "Requests queued across every session FIFO queue of the serve scheduler.",
)
MICROBATCHES_TOTAL = _registry.counter(
    "repro_microbatches_total",
    "Coalesced impute batches formed by the serve micro-batcher.",
)
MICROBATCH_ROWS_TOTAL = _registry.counter(
    "repro_microbatch_rows_total",
    "Single-row impute requests coalesced into micro-batches.",
)
MICROBATCH_FILL = _registry.histogram(
    "repro_microbatch_fill",
    "Rows per coalesced impute batch.",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
)
MICROBATCH_WAIT_SECONDS = _registry.histogram(
    "repro_microbatch_wait_seconds",
    "Queue-to-execution latency of requests coalesced into a micro-batch.",
)
ADMISSION_REJECTIONS_TOTAL = _registry.counter(
    "repro_admission_rejections_total",
    "Requests rejected at admission, by reason (quota, overloaded, auth).",
    ("reason",),
)
QUERY_SECONDS = _registry.histogram(
    "repro_query_seconds",
    "Query-layer phase latency (parse, plan, impute, evaluate).",
    ("phase",),
)
QUERY_ROWS_TOTAL = _registry.counter(
    "repro_query_rows_total",
    "Rows processed by the query layer, by kind (scanned or imputed "
    "on demand).",
    ("kind",),
)


# --------------------------------------------------------------------------- #
# Call-site helpers (each one no-ops when obs_enabled is off)
# --------------------------------------------------------------------------- #
class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


def trace_span(name: str, **attrs):
    """Open a child span under the current request's trace.

    The package-level spelling of :meth:`Tracer.trace_span` on the
    process-wide tracer: a context manager that is a no-op when no trace
    is active on this thread (e.g. engine used directly, not via serve).
    """
    if not _enabled():
        return _NULL_CONTEXT
    return _tracer.trace_span(name, **attrs)


class _PhaseTimer:
    """Times one named phase into a histogram and (if traced) a span.

    Engine phases sit inside the imputation hot loop, so the timer talks to
    the tracer's span stack directly instead of going through another
    context manager: one timestamp pair serves both the histogram sample
    and the span duration.  Subclasses pick the histogram and the span-name
    prefix (``engine.`` / ``query.``); each keeps its own interned
    span-name cache.
    """

    __slots__ = ("phase", "_start", "_span")

    _histogram = ENGINE_PHASE_SECONDS
    _prefix = "engine."
    _span_names: Dict[str, str] = {}

    def __init__(self, phase: str):
        self.phase = phase

    def __enter__(self) -> "_PhaseTimer":
        active = getattr(_tracer._local, "active", None)
        if active is None:
            self._span = None
        else:
            names = self._span_names
            name = names.get(self.phase)
            if name is None:
                name = names[self.phase] = f"{self._prefix}{self.phase}"
            self._span = _tracer._push(name, {})
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        if self._span is not None:
            _tracer._pop(self._span, exc_type)
        self._histogram._observe_fast((self.phase,), duration)
        return False


class _QueryPhaseTimer(_PhaseTimer):
    __slots__ = ()

    _histogram = QUERY_SECONDS
    _prefix = "query."
    _span_names: Dict[str, str] = {}


def engine_phase(phase: str):
    """Context manager naming one engine phase (histogram + child span)."""
    if not _enabled():
        return _NULL_CONTEXT
    return _PhaseTimer(phase)


def query_phase(phase: str):
    """Context manager naming one query-layer phase (histogram + child span).

    Phases: ``parse`` (tokenize + parse), ``plan`` (attribute resolution +
    touched-row analysis), ``impute`` (the batched on-demand imputation of
    touched rows), ``evaluate`` (filter/order/project/aggregate).  Spans
    nest under the serving request's root when one is active.
    """
    if not _enabled():
        return _NULL_CONTEXT
    return _QueryPhaseTimer(phase)


def count_query_rows(kind: str, n_rows: int) -> None:
    """Count rows the query layer scanned or imputed on demand."""
    if not _enabled():
        return
    QUERY_ROWS_TOTAL._inc_fast((kind,), n_rows)


def observe_request(cmd: str, status: str,
                    seconds: Optional[float] = None) -> None:
    """Record one answered serve-loop request.

    ``seconds=None`` counts the request without a latency sample — used
    for rejections (malformed JSON, oversized lines) whose timing isn't
    meaningful.
    """
    if not _enabled():
        return
    if seconds is None:
        REQUESTS_TOTAL._inc_fast((cmd, status))
        return
    # Fused counter + histogram update under one lock acquisition: this
    # runs once per answered request, right on the serving hot path.
    histogram = REQUEST_SECONDS
    index = bisect_left(histogram.buckets, seconds)
    counter_key = (cmd, status)
    with _registry._lock:
        counter_series = REQUESTS_TOTAL._series
        counter_series[counter_key] = counter_series.get(counter_key, 0.0) + 1.0
        series = histogram._series.get((cmd,))
        if series is None:
            series = histogram._series[(cmd,)] = _HistogramSeries(
                len(histogram.buckets) + 1
            )
        series.counts[index] += 1
        series.sum += seconds
        series.count += 1


def observe_imputed_cells(n_cells: int, kind: str) -> None:
    if not _enabled():
        return
    IMPUTED_CELLS_TOTAL._inc_fast((kind,), n_cells)


def observe_wal_sync(seconds: float, policy: str) -> None:
    if not _enabled():
        return
    WAL_SYNC_SECONDS._observe_fast((policy,), seconds)


def count_wal_bytes(n_bytes: int) -> None:
    if not _enabled():
        return
    WAL_BYTES_TOTAL._inc_fast((), n_bytes)


def count_wal_rotation() -> None:
    if not _enabled():
        return
    WAL_ROTATIONS_TOTAL._inc_fast(())


def observe_artifact_io(op: str, seconds: float, n_bytes: int) -> None:
    if not _enabled():
        return
    ARTIFACT_IO_SECONDS._observe_fast((op,), seconds)
    ARTIFACT_BYTES_TOTAL._inc_fast((op,), n_bytes)


def count_fault_activation(site: str, kind: str) -> None:
    if not _enabled():
        return
    FAULT_ACTIVATIONS_TOTAL._inc_fast((site, kind))


def count_store_rows(op: str, n_rows: int) -> None:
    if not _enabled():
        return
    STORE_ROWS_TOTAL._inc_fast((op,), n_rows)


def count_journal_spill(n: int = 1) -> None:
    if not _enabled():
        return
    JOURNAL_SPILLS_TOTAL._inc_fast((), n)


def set_sessions_open(n: int) -> None:
    if not _enabled():
        return
    SESSIONS_OPEN.set(n)


def set_serve_workers(n: int) -> None:
    if not _enabled():
        return
    SERVE_WORKERS.set(n)


def set_queue_depth(n: int) -> None:
    if not _enabled():
        return
    QUEUE_DEPTH.set(n)


def observe_microbatch(fill: int, wait_seconds: float) -> None:
    """Record one coalesced impute batch: its row count and the longest
    queue-to-execution wait among its member requests."""
    if not _enabled():
        return
    MICROBATCHES_TOTAL._inc_fast(())
    MICROBATCH_ROWS_TOTAL._inc_fast((), fill)
    MICROBATCH_FILL._observe_fast((), float(fill))
    MICROBATCH_WAIT_SECONDS._observe_fast((), wait_seconds)


def count_admission_rejection(reason: str) -> None:
    if not _enabled():
        return
    ADMISSION_REJECTIONS_TOTAL._inc_fast((reason,))


def install_trace_sink(directory, sample: Optional[float] = None
                       ) -> JsonlTraceSink:
    """Attach a rotated JSONL sink (and optional sample rate) to the tracer."""
    sink = JsonlTraceSink(directory)
    _tracer.configure(sample=sample, sink=sink)
    return sink
