"""Request tracing: nested spans, a bounded ring, an optional JSONL sink.

A *trace* is one request's tree of timed spans.  The serve loop opens the
root span (named after the command, carrying the request's trace ID); the
engine opens child spans around its phases via
:func:`repro.obs.engine_phase`.  Nesting is tracked per *thread* — the
serve loop runs each handler body in exactly one thread (the transport
thread, or the deadline worker), so a thread-local span stack gives
correct parent/child links without any cross-thread bookkeeping.

Completed traces are JSON-safe dicts::

    {"trace_id": "4f2a9c1b-00000007", "root": "serve.impute",
     "duration_seconds": 0.0123,
     "spans": [{"span_id": 1, "parent_id": null, "name": "serve.impute",
                "start_offset_seconds": 0.0, "duration_seconds": 0.0123,
                "status": "ok", "attrs": {"session": "s"}}, ...]}

kept in a bounded in-memory ring (:meth:`Tracer.recent`, the ``traces``
serve command) and — when a sink is attached — appended to rotated JSONL
segment files, one trace per line, mirroring the WAL's segment naming so
operators meet one directory layout everywhere.

Sampling: the decision is taken once, when the root opens.  An unsampled
request still gets a trace ID (IDs are cheap and clients rely on the echo)
but no span is assembled for it, so ``--trace-sample 0.01`` keeps the ring
and sink useful under load without taxing every request.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import (
    _validate_obs_trace_sample,
    get_obs_enabled,
    get_obs_trace_sample,
)
from ..exceptions import ConfigurationError

__all__ = ["Tracer", "Span", "JsonlTraceSink", "TRACE_SEGMENT_SUFFIX"]

#: Suffix of one rotated trace-sink segment (``00000001.trace.jsonl``).
TRACE_SEGMENT_SUFFIX = ".trace.jsonl"

#: Completed traces the in-memory ring retains.
DEFAULT_RING_CAPACITY = 64


class Span:
    """One timed operation inside a trace (mutable while open)."""

    __slots__ = (
        "name", "span_id", "parent_id", "attrs", "start",
    )

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, object], start: float):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = start


class _ActiveTrace:
    __slots__ = ("trace_id", "root_name", "start", "spans", "stack", "next_id")

    def __init__(self, trace_id: str, root_name: str, start: float):
        self.trace_id = trace_id
        self.root_name = root_name
        self.start = start
        # Finished spans as compact tuples; dicts are built lazily at read
        # time (see _span_record) to keep the per-request path allocation
        # light.  Tuple layout:
        #   (span_id, parent_id, name, start_offset, duration, error, attrs)
        self.spans: List[tuple] = []
        self.stack: List[Span] = []
        self.next_id = 1


def _span_record(entry: tuple) -> Dict[str, object]:
    """Materialize one finished-span tuple into its JSON-shaped record."""
    span_id, parent_id, name, offset, duration, error, attrs = entry
    record = {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_offset_seconds": round(offset, 9),
        "duration_seconds": round(duration, 9),
        "status": "ok" if error is None else f"error:{error}",
    }
    if attrs:
        record["attrs"] = {
            key: value for key, value in attrs.items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
    return record


def _trace_record(raw: Dict[str, object]) -> Dict[str, object]:
    """Materialize one ring entry (compact spans) into the public shape."""
    return {
        "trace_id": raw["trace_id"],
        "root": raw["root"],
        "duration_seconds": round(raw["duration_seconds"], 9),
        "spans": [_span_record(entry) for entry in raw["spans"]],
    }


class _RootSpan:
    """Context manager for one request's root span (returned by ``trace``)."""

    __slots__ = ("_tracer", "_name", "_trace_id", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._trace_id = trace_id
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> "_RootSpan":
        local = self._tracer._local
        active = _ActiveTrace(
            self._trace_id, self._name, time.perf_counter()
        )
        local.active = active
        self._span = self._tracer._push(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        assert self._span is not None
        duration = tracer._pop(self._span, exc_type)
        active = tracer._local.active
        tracer._local.active = None
        tracer._finish({
            "trace_id": active.trace_id,
            "root": active.root_name,
            "duration_seconds": duration,
            "spans": active.spans,
        })
        return False


class _ChildSpan:
    """Context manager for one nested span (returned by ``trace_span``)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> "_ChildSpan":
        self._span = self._tracer._push(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            self._tracer._pop(self._span, exc_type)
        return False


class _NullSpan:
    """The no-op span: what you get when tracing is off or unsampled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-thread span stacks feeding a bounded ring and an optional sink."""

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY,
                 sample: Optional[float] = None,
                 sink: Optional["JsonlTraceSink"] = None):
        if ring_capacity < 1:
            raise ConfigurationError(
                f"trace ring capacity must be >= 1, got {ring_capacity}"
            )
        self.ring_capacity = ring_capacity
        self._sample = sample  # None = defer to the config knob
        self.sink = sink
        # deque(maxlen=...) evicts the oldest trace in C on append.
        self._ring: deque = deque(maxlen=ring_capacity)
        self._ring_lock = threading.Lock()
        self._local = threading.local()
        self._rng = random.Random()
        self._id_prefix = os.urandom(4).hex()
        self._id_counter = 0
        self._id_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def sample(self) -> float:
        if self._sample is not None:
            return self._sample
        return get_obs_trace_sample()

    def configure(self, sample: Optional[float] = None,
                  sink: Optional["JsonlTraceSink"] = None) -> None:
        """Pin the sampling rate and/or attach a sink (serve startup)."""
        if sample is not None:
            self._sample = _validate_obs_trace_sample(sample)
        if sink is not None:
            self.sink = sink

    def reset(self) -> None:
        """Drop the ring (tests); open spans on other threads are unaffected."""
        with self._ring_lock:
            self._ring.clear()

    # ------------------------------------------------------------------ #
    # Trace IDs and spans
    # ------------------------------------------------------------------ #
    def new_trace_id(self) -> str:
        """A process-unique request ID (prefix from ``os.urandom`` + counter)."""
        with self._id_lock:
            self._id_counter += 1
            return f"{self._id_prefix}-{self._id_counter:08x}"

    def trace(self, name: str, trace_id: Optional[str] = None, **attrs):
        """Open a root span; decides sampling for the whole trace."""
        if not get_obs_enabled():
            return _NULL_SPAN
        rate = self.sample
        if rate <= 0.0 or (rate < 1.0 and self._rng.random() >= rate):
            return _NULL_SPAN
        if getattr(self._local, "active", None) is not None:
            # A root inside a root (in-process reentrancy): nest instead of
            # clobbering the outer trace.
            return _ChildSpan(self, name, attrs)
        if trace_id is None:
            trace_id = self.new_trace_id()
        return _RootSpan(self, name, trace_id, attrs)

    def trace_span(self, name: str, **attrs):
        """Open a child span under the thread's active trace (no-op without one)."""
        if getattr(self._local, "active", None) is None:
            return _NULL_SPAN
        return _ChildSpan(self, name, attrs)

    @property
    def current_trace_id(self) -> Optional[str]:
        active = getattr(self._local, "active", None)
        return None if active is None else active.trace_id

    def _push(self, name: str, attrs: Dict[str, object]) -> Span:
        active = self._local.active
        parent = active.stack[-1].span_id if active.stack else None
        span = Span(name, active.next_id, parent, attrs, time.perf_counter())
        active.next_id += 1
        active.stack.append(span)
        return span

    def _pop(self, span: Span, exc_type) -> float:
        active = getattr(self._local, "active", None)
        if active is None or not active.stack:
            return 0.0
        duration = time.perf_counter() - span.start
        active.stack.pop()
        active.spans.append((
            span.span_id,
            span.parent_id,
            span.name,
            span.start - active.start,
            duration,
            None if exc_type is None else exc_type.__name__,
            span.attrs,
        ))
        return duration

    def _finish(self, record: Dict[str, object]) -> None:
        with self._ring_lock:
            self._ring.append(record)
        sink = self.sink
        if sink is not None:
            sink.write(_trace_record(record))

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The newest completed traces, newest last."""
        with self._ring_lock:
            traces = list(self._ring)
        if limit is not None and limit >= 0:
            traces = traces[-limit:] if limit else []
        return [_trace_record(raw) for raw in traces]


class JsonlTraceSink:
    """Rotated JSONL segments of completed traces, one trace per line.

    Mirrors the WAL's directory idiom: zero-padded segment names
    (``00000001.trace.jsonl``), a fresh segment every
    ``max_records_per_segment`` traces, append-only text.  Writes are
    flushed per record (traces are per-request, not per-row, so the flush
    is noise) but not fsynced — traces are diagnostics, not durability
    state.
    """

    def __init__(self, directory: Union[str, Path],
                 max_records_per_segment: int = 4096):
        if max_records_per_segment < 1:
            raise ConfigurationError(
                f"trace segment size must be >= 1, got "
                f"{max_records_per_segment}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_records_per_segment = max_records_per_segment
        self._lock = threading.Lock()
        existing = sorted(self.directory.glob("*" + TRACE_SEGMENT_SUFFIX))
        self._segment_index = (
            int(existing[-1].name.split(".")[0]) if existing else 0
        )
        self._records_in_segment = 0
        self._handle = None
        self._open_next_segment()

    def _open_next_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
        self._segment_index += 1
        path = self.directory / (
            f"{self._segment_index:08d}{TRACE_SEGMENT_SUFFIX}"
        )
        self._handle = open(path, "a", encoding="utf-8")
        self._records_in_segment = 0

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            if self._records_in_segment >= self.max_records_per_segment:
                self._open_next_segment()
            self._handle.write(line + "\n")
            self._handle.flush()
            self._records_in_segment += 1

    def segments(self) -> List[Path]:
        return sorted(self.directory.glob("*" + TRACE_SEGMENT_SUFFIX))

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
