"""Downstream-application pipelines (Section VI-D of the paper).

Two pipelines evaluate how imputation quality propagates to applications:

* :func:`clustering_application` — cluster the original complete data with
  k-means to obtain "truth" clusters, inject missing values, impute (or
  discard incomplete tuples), re-cluster, and report purity against the
  truth clusters (Table VII, first two rows).
* :func:`classification_application` — on a labelled dataset with real
  missing values, run stratified 5-fold cross validation of a kNN
  classifier over (a) the data with incomplete tuples discarded and (b) the
  data imputed by a method, and report the weighted F1 (Table VII, last
  rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_positive_int
from ..baselines.base import BaseImputer
from ..cluster import KMeans
from ..data.missing import inject_missing
from ..data.relation import Relation
from ..data.splits import StratifiedKFold
from ..exceptions import DataError
from ..metrics import f1_score, purity_score
from .knn_classifier import KNNClassifier

__all__ = [
    "ClusteringApplicationResult",
    "clustering_application",
    "classification_application",
    "classification_without_imputation",
]


@dataclass
class ClusteringApplicationResult:
    """Purity of clustering after imputation, plus the discard baseline."""

    purity: float
    purity_discard: float
    n_clusters: int


def clustering_application(
    relation: Relation,
    imputer: Optional[BaseImputer],
    n_clusters: int = 5,
    missing_fraction: float = 0.05,
    random_state: int = 0,
) -> ClusteringApplicationResult:
    """Run the clustering application of Section VI-D1 for one imputer.

    Passing ``imputer=None`` evaluates only the discard baseline (the
    "Missing" column of Table VII).
    """
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    if not relation.is_complete():
        raise DataError("clustering_application expects a complete relation")

    # Truth clusters from the original complete data.
    truth_model = KMeans(n_clusters=n_clusters, random_state=random_state).fit(relation.raw)
    truth_labels = truth_model.labels_

    injection = inject_missing(relation, fraction=missing_fraction, random_state=random_state)
    dirty = injection.dirty

    # Discard baseline: cluster only the remaining complete tuples.
    complete_rows = dirty.complete_rows
    discard_model = KMeans(n_clusters=n_clusters, random_state=random_state)
    discard_labels = discard_model.fit_predict(dirty.raw[complete_rows])
    purity_discard = purity_score(truth_labels[complete_rows], discard_labels)

    if imputer is None:
        return ClusteringApplicationResult(
            purity=purity_discard, purity_discard=purity_discard, n_clusters=n_clusters
        )

    imputed = imputer.fit(dirty).impute(dirty)
    imputed_model = KMeans(n_clusters=n_clusters, random_state=random_state)
    imputed_labels = imputed_model.fit_predict(imputed.raw)
    purity = purity_score(truth_labels, imputed_labels)
    return ClusteringApplicationResult(
        purity=purity, purity_discard=purity_discard, n_clusters=n_clusters
    )


def _cross_validated_f1(
    values: np.ndarray,
    labels: np.ndarray,
    n_splits: int,
    k_neighbors: int,
    random_state: int,
) -> float:
    splitter = StratifiedKFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    scores = []
    for train_idx, test_idx in splitter.split(labels):
        classifier = KNNClassifier(k=k_neighbors).fit(values[train_idx], labels[train_idx])
        predictions = classifier.predict(values[test_idx])
        scores.append(f1_score(labels[test_idx], predictions, average="weighted"))
    return float(np.mean(scores))


def classification_application(
    relation: Relation,
    imputer: BaseImputer,
    n_splits: int = 5,
    k_neighbors: int = 5,
    random_state: int = 0,
) -> float:
    """F1 of a kNN classifier after imputing the real missing values.

    The relation must be labelled; missing cells are imputed by ``imputer``
    (fitted on the relation's complete part) before cross validation.
    """
    if relation.labels is None:
        raise DataError("classification_application requires a labelled relation")
    imputed = imputer.fit(relation).impute(relation)
    return _cross_validated_f1(
        imputed.raw, relation.labels, n_splits, k_neighbors, random_state
    )


def classification_without_imputation(
    relation: Relation,
    n_splits: int = 5,
    k_neighbors: int = 5,
    random_state: int = 0,
) -> float:
    """F1 of the same classifier when incomplete tuples are simply discarded."""
    if relation.labels is None:
        raise DataError("classification_without_imputation requires a labelled relation")
    complete = relation.complete_part()
    if complete.n_tuples < n_splits:
        raise DataError("too few complete tuples remain after discarding for cross validation")
    return _cross_validated_f1(
        complete.raw, complete.labels, n_splits, k_neighbors, random_state
    )
