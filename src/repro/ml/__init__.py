"""Downstream machine-learning applications: kNN classification and pipelines."""

from .applications import (
    ClusteringApplicationResult,
    classification_application,
    classification_without_imputation,
    clustering_application,
)
from .knn_classifier import KNNClassifier

__all__ = [
    "KNNClassifier",
    "clustering_application",
    "classification_application",
    "classification_without_imputation",
    "ClusteringApplicationResult",
]
