"""k-nearest-neighbour classifier (the Weka ``ibk`` stand-in).

Section VI-D2 of the paper evaluates imputation through a downstream
classification task using Weka's ``ibk`` classifier.  This module provides
the equivalent: majority vote (optionally distance-weighted) over the ``k``
nearest training instances under the paper's normalized Euclidean distance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import as_float_matrix, check_in_choices, check_positive_int
from ..exceptions import DataError, NotFittedError
from ..neighbors import BruteForceNeighbors

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Instance-based classifier with majority voting.

    Parameters
    ----------
    k:
        Number of voting neighbours.
    weighting:
        ``"uniform"`` (plain majority) or ``"distance"`` (inverse-distance
        weighted votes).
    metric:
        Distance metric for the neighbour search.
    """

    def __init__(self, k: int = 5, weighting: str = "uniform", metric: str = "paper_euclidean"):
        self.k = check_positive_int(k, "k")
        self.weighting = check_in_choices(weighting, "weighting", ("uniform", "distance"))
        self.metric = metric
        self._searcher: Optional[BruteForceNeighbors] = None
        self._labels: Optional[np.ndarray] = None
        self._classes: Optional[np.ndarray] = None

    def fit(self, X, y) -> "KNNClassifier":
        """Store the training instances and their labels."""
        X = as_float_matrix(X, name="X")
        y = np.asarray(y).ravel()
        if y.shape[0] != X.shape[0]:
            raise DataError("X and y must have the same number of rows")
        self._searcher = BruteForceNeighbors(metric=self.metric).fit(X)
        self._labels = y.copy()
        self._classes = np.unique(y)
        return self

    def _check_fitted(self) -> None:
        if self._searcher is None:
            raise NotFittedError("KNNClassifier must be fitted before predicting")

    @property
    def classes_(self) -> np.ndarray:
        """Sorted unique training labels."""
        self._check_fitted()
        return self._classes.copy()

    def predict_proba(self, X) -> np.ndarray:
        """Class membership scores (vote fractions) per query row."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        k = min(self.k, self._labels.shape[0])
        distances, indices = self._searcher.kneighbors(X, k)
        if distances.ndim == 1:
            distances = distances.reshape(1, -1)
            indices = indices.reshape(1, -1)

        probabilities = np.zeros((X.shape[0], self._classes.shape[0]))
        class_position = {label: i for i, label in enumerate(self._classes)}
        for row in range(X.shape[0]):
            neighbor_labels = self._labels[indices[row]]
            if self.weighting == "uniform":
                weights = np.ones(k)
            else:
                safe = np.maximum(distances[row], 1e-12)
                weights = 1.0 / safe
            for label, weight in zip(neighbor_labels, weights):
                probabilities[row, class_position[label]] += weight
            probabilities[row] /= probabilities[row].sum()
        return probabilities

    def predict(self, X) -> np.ndarray:
        """Predicted class labels per query row."""
        probabilities = self.predict_proba(X)
        return self._classes[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))
