"""Clustering substrate: k-means, fuzzy c-means and Gaussian mixtures."""

from .fuzzy_cmeans import FuzzyCMeans
from .gmm import GaussianMixture
from .kmeans import KMeans

__all__ = ["KMeans", "FuzzyCMeans", "GaussianMixture"]
