"""Gaussian mixture model fitted by expectation–maximisation.

The GMM baseline of the paper (Yan et al. 2015) imputes missing values from
the responsibilities of a Gaussian mixture fitted over the complete tuples.
This module provides a full-covariance (or diagonal) GMM with k-means
initialisation; the imputer lives in :mod:`repro.baselines.gmm_impute`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    check_in_choices,
    check_positive_float,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConfigurationError, NotFittedError
from .kmeans import KMeans

__all__ = ["GaussianMixture"]


class GaussianMixture:
    """Gaussian mixture model with EM fitting.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    covariance_type:
        ``"full"`` or ``"diag"``.
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence tolerance on the mean log-likelihood improvement.
    reg_covar:
        Diagonal jitter added to every covariance for numerical stability.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_components: int = 4,
        covariance_type: str = "full",
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        random_state=None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.covariance_type = check_in_choices(covariance_type, "covariance_type", ("full", "diag"))
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = check_positive_float(tol, "tol", allow_zero=True)
        self.reg_covar = check_positive_float(reg_covar, "reg_covar", allow_zero=True)
        self.random_state = random_state
        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.covariances_: Optional[np.ndarray] = None
        self.converged_: bool = False
        self.n_iter_: int = 0
        self.lower_bound_: float = -np.inf

    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.means_ is None:
            raise NotFittedError("GaussianMixture must be fitted before use")

    def _initialise(self, X: np.ndarray, rng: np.random.Generator) -> None:
        seed = int(rng.integers(0, 2**31 - 1))
        kmeans = KMeans(n_clusters=self.n_components, n_init=2, random_state=seed).fit(X)
        labels = kmeans.labels_
        n, d = X.shape
        self.means_ = kmeans.cluster_centers_.copy()
        self.weights_ = np.array([(labels == c).mean() for c in range(self.n_components)])
        self.weights_ = np.maximum(self.weights_, 1e-6)
        self.weights_ /= self.weights_.sum()
        covariances = np.empty((self.n_components, d, d))
        for c in range(self.n_components):
            members = X[labels == c]
            if members.shape[0] > d:
                covariance = np.cov(members, rowvar=False)
            else:
                covariance = np.cov(X, rowvar=False)
            covariances[c] = np.atleast_2d(covariance) + self.reg_covar * np.eye(d)
        if self.covariance_type == "diag":
            covariances = np.stack([np.diag(np.diag(c)) for c in covariances])
        self.covariances_ = covariances

    def _log_gaussian(self, X: np.ndarray, mean: np.ndarray, covariance: np.ndarray) -> np.ndarray:
        d = X.shape[1]
        diff = X - mean
        try:
            chol = np.linalg.cholesky(covariance)
        except np.linalg.LinAlgError:
            covariance = covariance + 10 * self.reg_covar * np.eye(d)
            chol = np.linalg.cholesky(covariance)
        # Solve L z = diffᵀ; chol is lower-triangular but np.linalg.solve is
        # sufficient here and keeps this module free of scipy.
        z = np.linalg.solve(chol, diff.T)
        mahalanobis = np.sum(z * z, axis=0)
        log_det = 2.0 * np.sum(np.log(np.diag(chol)))
        return -0.5 * (d * np.log(2.0 * np.pi) + log_det + mahalanobis)

    def _estimate_log_prob(self, X: np.ndarray) -> np.ndarray:
        log_prob = np.empty((X.shape[0], self.n_components))
        for c in range(self.n_components):
            log_prob[:, c] = self._log_gaussian(X, self.means_[c], self.covariances_[c])
        return log_prob + np.log(self.weights_)[None, :]

    @staticmethod
    def _log_sum_exp(log_prob: np.ndarray) -> np.ndarray:
        maximum = log_prob.max(axis=1, keepdims=True)
        return (maximum + np.log(np.exp(log_prob - maximum).sum(axis=1, keepdims=True))).ravel()

    # ------------------------------------------------------------------ #
    def fit(self, X) -> "GaussianMixture":
        """Fit the mixture to the rows of ``X`` with EM."""
        X = as_float_matrix(X, name="X")
        if self.n_components > X.shape[0]:
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds the number of points {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)
        self._initialise(X, rng)
        previous = -np.inf
        self.converged_ = False
        for iteration in range(1, self.max_iter + 1):
            # E step.
            weighted_log_prob = self._estimate_log_prob(X)
            log_norm = self._log_sum_exp(weighted_log_prob)
            responsibilities = np.exp(weighted_log_prob - log_norm[:, None])
            # M step.
            counts = responsibilities.sum(axis=0) + 1e-12
            self.weights_ = counts / counts.sum()
            self.means_ = (responsibilities.T @ X) / counts[:, None]
            d = X.shape[1]
            for c in range(self.n_components):
                diff = X - self.means_[c]
                weighted = responsibilities[:, c][:, None] * diff
                covariance = (weighted.T @ diff) / counts[c] + self.reg_covar * np.eye(d)
                if self.covariance_type == "diag":
                    covariance = np.diag(np.diag(covariance))
                self.covariances_[c] = covariance
            self.lower_bound_ = float(log_norm.mean())
            self.n_iter_ = iteration
            if abs(self.lower_bound_ - previous) <= self.tol:
                self.converged_ = True
                break
            previous = self.lower_bound_
        return self

    # ------------------------------------------------------------------ #
    def predict_proba(self, X) -> np.ndarray:
        """Responsibilities of each component for each row of ``X``."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        weighted_log_prob = self._estimate_log_prob(X)
        log_norm = self._log_sum_exp(weighted_log_prob)
        return np.exp(weighted_log_prob - log_norm[:, None])

    def predict(self, X) -> np.ndarray:
        """Hard component assignment."""
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X) -> float:
        """Mean log-likelihood of ``X`` under the fitted mixture."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        return float(self._log_sum_exp(self._estimate_log_prob(X)).mean())

    def sample(self, n_samples: int, random_state=None) -> np.ndarray:
        """Draw ``n_samples`` points from the fitted mixture."""
        self._check_fitted()
        n_samples = check_positive_int(n_samples, "n_samples")
        rng = check_random_state(random_state)
        components = rng.choice(self.n_components, size=n_samples, p=self.weights_)
        samples = np.empty((n_samples, self.means_.shape[1]))
        for c in range(self.n_components):
            members = np.flatnonzero(components == c)
            if members.size:
                samples[members] = rng.multivariate_normal(
                    self.means_[c], self.covariances_[c], size=members.size
                )
        return samples
