"""Fuzzy c-means clustering (Bezdek), the engine behind the IFC baseline.

The IFC imputation method of the paper (Nikfalazar et al., FUZZ-IEEE 2017)
iteratively clusters the data with fuzzy k-means and imputes each missing
cell from the membership-weighted cluster centroids.  This module provides
the soft clustering; the imputer lives in :mod:`repro.baselines.ifc`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    check_positive_float,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConfigurationError, NotFittedError

__all__ = ["FuzzyCMeans"]


class FuzzyCMeans:
    """Soft clustering with per-point membership degrees.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``c``.
    fuzziness:
        Fuzzifier ``m`` (> 1); larger values give softer memberships.
    max_iter:
        Maximum update iterations.
    tol:
        Convergence tolerance on the membership change.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_clusters: int = 4,
        fuzziness: float = 2.0,
        max_iter: int = 150,
        tol: float = 1e-5,
        random_state=None,
    ):
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.fuzziness = check_positive_float(fuzziness, "fuzziness")
        if self.fuzziness <= 1.0:
            raise ConfigurationError("fuzziness must be > 1")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = check_positive_float(tol, "tol", allow_zero=True)
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.membership_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    def _update_membership(self, X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = np.sqrt(np.sum((X[:, None, :] - centers[None, :, :]) ** 2, axis=2))
        distances = np.maximum(distances, 1e-12)
        power = 2.0 / (self.fuzziness - 1.0)
        ratio = distances[:, :, None] / distances[:, None, :]
        membership = 1.0 / np.sum(ratio ** power, axis=2)
        return membership

    def _update_centers(self, X: np.ndarray, membership: np.ndarray) -> np.ndarray:
        weights = membership ** self.fuzziness
        denominator = weights.sum(axis=0)
        denominator = np.maximum(denominator, 1e-12)
        return (weights.T @ X) / denominator[:, None]

    # ------------------------------------------------------------------ #
    def fit(self, X) -> "FuzzyCMeans":
        """Cluster the rows of ``X`` into ``n_clusters`` soft clusters."""
        X = as_float_matrix(X, name="X")
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds the number of points {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)
        membership = rng.random((X.shape[0], self.n_clusters))
        membership /= membership.sum(axis=1, keepdims=True)

        for iteration in range(1, self.max_iter + 1):
            centers = self._update_centers(X, membership)
            new_membership = self._update_membership(X, centers)
            change = np.max(np.abs(new_membership - membership))
            membership = new_membership
            self.n_iter_ = iteration
            if change <= self.tol:
                break

        self.cluster_centers_ = self._update_centers(X, membership)
        self.membership_ = membership
        return self

    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise NotFittedError("FuzzyCMeans must be fitted before use")

    def predict_membership(self, X) -> np.ndarray:
        """Membership degrees of new points w.r.t. the learned centers."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        return self._update_membership(X, self.cluster_centers_)

    def predict(self, X) -> np.ndarray:
        """Hard assignment (argmax membership) of new points."""
        return np.argmax(self.predict_membership(X), axis=1)

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the hard assignment of the training points."""
        self.fit(X)
        return np.argmax(self.membership_, axis=1)
