"""K-means clustering (Lloyd's algorithm) with k-means++ initialisation.

Used in two places in the reproduction:

* the clustering application of Section VI-D1 (the paper uses Weka's
  ``kmeans``), where cluster purity before/after imputation is compared;
* as a building block of the IFC baseline's cluster assignment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    check_positive_float,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConfigurationError, NotFittedError

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's k-means with k-means++ seeding and multiple restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of random restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative centroid-movement tolerance for convergence.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state=None,
    ):
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = check_positive_float(tol, "tol", allow_zero=True)
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centers proportionally to distance²."""
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = rng.integers(n)
        centers[0] = X[first]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for c in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centers[c:] = X[rng.integers(n, size=self.n_clusters - c)]
                break
            probabilities = closest_sq / total
            choice = rng.choice(n, p=probabilities)
            centers[c] = X[choice]
            closest_sq = np.minimum(closest_sq, np.sum((X - centers[c]) ** 2, axis=1))
        return centers

    @staticmethod
    def _assign(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = np.sum((X[:, None, :] - centers[None, :, :]) ** 2, axis=2)
        return np.argmin(distances, axis=1)

    def _single_run(self, X: np.ndarray, rng: np.random.Generator):
        centers = self._init_centers(X, rng)
        labels = self._assign(X, centers)
        n_iterations = 0
        for n_iterations in range(1, self.max_iter + 1):
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[labels == c]
                if members.shape[0] > 0:
                    new_centers[c] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its center.
                    distances = np.sum((X - centers[labels]) ** 2, axis=1)
                    new_centers[c] = X[int(np.argmax(distances))]
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            labels = self._assign(X, centers)
            if shift <= self.tol * max(1.0, np.linalg.norm(centers)):
                break
        inertia = float(np.sum((X - centers[labels]) ** 2))
        return centers, labels, inertia, n_iterations

    # ------------------------------------------------------------------ #
    def fit(self, X) -> "KMeans":
        """Cluster the rows of ``X``."""
        X = as_float_matrix(X, name="X")
        if self.n_clusters > X.shape[0]:
            raise ConfigurationError(
                f"n_clusters={self.n_clusters} exceeds the number of points {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iterations = self._single_run(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iterations)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans must be fitted before predicting")

    def predict(self, X) -> np.ndarray:
        """Assign each row of ``X`` to its nearest learned center."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        return self._assign(X, self.cluster_centers_)

    def fit_predict(self, X) -> np.ndarray:
        """Fit the model and return the training labels."""
        return self.fit(X).labels_.copy()
