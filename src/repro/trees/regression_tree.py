"""CART regression tree grown with variance-reduction splits.

This is the weak learner behind the gradient-boosting baseline (the paper's
XGB method, which it runs through the R ``xgboost`` package).  The tree uses
exact greedy splitting over sorted feature values with the usual depth,
minimum-samples and minimum-gain stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_consistent_length,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import NotFittedError

__all__ = ["RegressionTree"]


@dataclass
class _TreeNode:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Binary regression tree minimising squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    min_gain:
        Minimum reduction of the sum of squared errors required to split.
    max_features:
        Optional number of random features evaluated per split (None = all);
        used by ensembles for decorrelation.
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_gain: float = 1e-12,
        max_features: Optional[int] = None,
        random_state=None,
    ):
        self.max_depth = check_non_negative_int(max_depth, "max_depth")
        self.min_samples_split = check_positive_int(min_samples_split, "min_samples_split")
        self.min_samples_leaf = check_positive_int(min_samples_leaf, "min_samples_leaf")
        self.min_gain = check_positive_float(min_gain, "min_gain", allow_zero=True)
        if max_features is not None:
            max_features = check_positive_int(max_features, "max_features")
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_TreeNode] = None
        self._n_features = 0

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> "RegressionTree":
        """Grow the tree on ``(X, y)``."""
        X = as_float_matrix(X, name="X")
        y = as_float_vector(y, name="y")
        check_consistent_length(X, y, names=("X", "y"))
        self._n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._grow(X, y, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _TreeNode:
        node = _TreeNode(prediction=float(y.mean()))
        n_samples = y.shape[0]
        if (
            depth >= self.max_depth
            or n_samples < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node

        best = self._best_split(X, y, rng)
        if best is None:
            return node

        feature, threshold, gain = best
        if gain < self.min_gain:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator):
        n_samples, n_features = X.shape
        if self.max_features is not None and self.max_features < n_features:
            features = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            features = np.arange(n_features)

        parent_sse = float(np.sum((y - y.mean()) ** 2))
        best_gain = -np.inf
        best_feature = -1
        best_threshold = 0.0

        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            x_sorted = X[order, feature]
            y_sorted = y[order]
            # Prefix sums allow O(1) SSE evaluation at every split position.
            prefix_sum = np.cumsum(y_sorted)
            prefix_sq = np.cumsum(y_sorted ** 2)
            total_sum = prefix_sum[-1]
            total_sq = prefix_sq[-1]
            for i in range(self.min_samples_leaf, n_samples - self.min_samples_leaf + 1):
                if i < n_samples and x_sorted[i - 1] == x_sorted[i]:
                    continue  # cannot split between identical values
                if i >= n_samples:
                    break
                left_n = i
                right_n = n_samples - i
                left_sum = prefix_sum[i - 1]
                left_sq = prefix_sq[i - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                left_sse = left_sq - left_sum ** 2 / left_n
                right_sse = right_sq - right_sum ** 2 / right_n
                gain = parent_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = float((x_sorted[i - 1] + x_sorted[i]) / 2.0)

        if best_feature < 0:
            return None
        return best_feature, best_threshold, best_gain

    # ------------------------------------------------------------------ #
    def predict(self, X) -> np.ndarray:
        """Predict targets for the rows of ``X``."""
        if self._root is None:
            raise NotFittedError("RegressionTree must be fitted before predicting")
        X = as_float_matrix(X, name="X")
        predictions = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            predictions[i] = node.prediction
        return predictions

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self._root is None:
            raise NotFittedError("RegressionTree must be fitted before inspecting it")

        def walk(node: _TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def n_leaves(self) -> int:
        """Number of leaves of the grown tree."""
        if self._root is None:
            raise NotFittedError("RegressionTree must be fitted before inspecting it")

        def walk(node: _TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)
