"""Tree substrate: CART regression trees and gradient boosting."""

from .gradient_boosting import GradientBoostingRegressor
from .regression_tree import RegressionTree

__all__ = ["RegressionTree", "GradientBoostingRegressor"]
