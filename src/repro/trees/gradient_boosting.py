"""Gradient-boosted regression trees — the stand-in for the paper's XGB baseline.

The paper imputes with the R ``xgboost`` library.  Offline, we reproduce the
same *family* of model: an additive ensemble of shallow regression trees fit
to the residuals (gradients of the squared loss), with shrinkage and optional
row/feature subsampling.  The exact split-finding heuristics of XGBoost
(second-order approximation, histogram binning) are not needed for the
paper's experiments, which only use the model as a black-box regressor.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_consistent_length,
    check_fraction,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConfigurationError, NotFittedError
from .regression_tree import RegressionTree

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting over CART trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the individual trees.
    subsample:
        Fraction of rows sampled (without replacement) per round.
    max_features:
        Number of features evaluated per split (None = all).
    min_samples_leaf:
        Minimum samples per leaf of the individual trees.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        max_features: Optional[int] = None,
        min_samples_leaf: int = 2,
        random_state=None,
    ):
        self.n_estimators = check_positive_int(n_estimators, "n_estimators")
        self.learning_rate = check_positive_float(learning_rate, "learning_rate")
        self.max_depth = check_non_negative_int(max_depth, "max_depth")
        self.subsample = check_fraction(subsample, "subsample", inclusive=True)
        if self.subsample == 0:
            raise ConfigurationError("subsample must be positive")
        self.max_features = max_features
        self.min_samples_leaf = check_positive_int(min_samples_leaf, "min_samples_leaf")
        self.random_state = random_state
        self._trees: List[RegressionTree] = []
        self._initial_prediction = 0.0
        self._fitted = False
        self.train_scores_: List[float] = []

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> "GradientBoostingRegressor":
        """Fit the boosted ensemble on ``(X, y)``."""
        X = as_float_matrix(X, name="X")
        y = as_float_vector(y, name="y")
        check_consistent_length(X, y, names=("X", "y"))
        rng = check_random_state(self.random_state)

        self._trees = []
        self.train_scores_ = []
        self._initial_prediction = float(y.mean())
        current = np.full(y.shape[0], self._initial_prediction)

        n_samples = y.shape[0]
        sample_size = max(1, int(round(self.subsample * n_samples)))

        for round_index in range(self.n_estimators):
            residuals = y - current
            if sample_size < n_samples:
                rows = rng.choice(n_samples, size=sample_size, replace=False)
            else:
                rows = np.arange(n_samples)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[rows], residuals[rows])
            update = tree.predict(X)
            current = current + self.learning_rate * update
            self._trees.append(tree)
            self.train_scores_.append(float(np.mean((y - current) ** 2)))

        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        """Predict targets by summing the shrunken tree contributions."""
        if not self._fitted:
            raise NotFittedError("GradientBoostingRegressor must be fitted before predicting")
        X = as_float_matrix(X, name="X")
        predictions = np.full(X.shape[0], self._initial_prediction)
        for tree in self._trees:
            predictions += self.learning_rate * tree.predict(X)
        return predictions

    @property
    def n_trees(self) -> int:
        """Number of fitted trees."""
        return len(self._trees)
