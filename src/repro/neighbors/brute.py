"""Brute-force k-nearest-neighbour search.

This is the reference implementation of ``NN(t, F, k)`` from the paper: an
exhaustive scan under the configured metric.  It is exact, supports every
metric, and is the backend the more elaborate KD-tree index is validated
against in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..exceptions import ConfigurationError, NotFittedError
from .distance import get_metric

__all__ = ["BruteForceNeighbors"]


class BruteForceNeighbors:
    """Exact nearest-neighbour search by exhaustive scan.

    Parameters
    ----------
    metric:
        Name of a metric registered in :mod:`repro.neighbors.distance`;
        defaults to the paper's normalized Euclidean distance.
    """

    def __init__(self, metric: str = "paper_euclidean"):
        self.metric = metric
        self._metric_fn = get_metric(metric)
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "BruteForceNeighbors":
        """Index the reference points (rows of ``data``)."""
        self._data = as_float_matrix(data, name="data")
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed reference points."""
        self._check_fitted()
        return self._data.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed points."""
        self._check_fitted()
        return self._data.shape[1]

    def _check_fitted(self) -> None:
        if self._data is None:
            raise NotFittedError("BruteForceNeighbors must be fitted before querying")

    # ------------------------------------------------------------------ #
    def kneighbors(
        self,
        query,
        k: int,
        exclude_self: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Find the ``k`` nearest indexed points for each query.

        Parameters
        ----------
        query:
            One vector or a batch ``(q, m)`` of query points.
        k:
            Number of neighbours to return.
        exclude_self:
            When True, a reference point at distance exactly zero from the
            query is skipped once (used when the query itself belongs to the
            indexed data and should not count as its own neighbour).

        Returns
        -------
        (distances, indices):
            Arrays of shape ``(k,)`` for a single query or ``(q, k)`` for a
            batch, sorted by increasing distance (ties broken by index for
            determinism).
        """
        self._check_fitted()
        k = check_positive_int(k, "k")
        query_array = np.asarray(query, dtype=float)
        single = query_array.ndim == 1

        available = self.n_points - (1 if exclude_self else 0)
        if k > available:
            raise ConfigurationError(
                f"requested k={k} neighbours but only {available} are available"
            )

        distances = self._metric_fn(query_array, self._data)
        if single:
            distances = distances.reshape(1, -1)

        n_queries = distances.shape[0]
        out_dist = np.empty((n_queries, k))
        out_idx = np.empty((n_queries, k), dtype=int)
        for row in range(n_queries):
            d = distances[row]
            order = np.lexsort((np.arange(d.shape[0]), d))
            if exclude_self:
                # Skip exactly one zero-distance match (the query itself).
                if d[order[0]] == 0.0:
                    order = order[1:]
            chosen = order[:k]
            out_dist[row] = d[chosen]
            out_idx[row] = chosen

        if single:
            return out_dist[0], out_idx[0]
        return out_dist, out_idx

    def neighbor_order(self, query, exclude_self: bool = False) -> np.ndarray:
        """All indexed points ordered by increasing distance from ``query``.

        The adaptive-learning algorithm needs, for each tuple, the full
        ordering of its neighbours so that the sets ``NN(t, F, ℓ)`` for all
        ``ℓ`` can be read off as prefixes (the subsumption property of
        Formula 13).
        """
        self._check_fitted()
        query_array = np.asarray(query, dtype=float)
        single = query_array.ndim == 1
        distances = self._metric_fn(query_array, self._data)
        if single:
            distances = distances.reshape(1, -1)
        orders = []
        for row in range(distances.shape[0]):
            d = distances[row]
            order = np.lexsort((np.arange(d.shape[0]), d))
            if exclude_self and d[order[0]] == 0.0:
                order = order[1:]
            orders.append(order)
        result = np.asarray(orders)
        return result[0] if single else result
