"""Brute-force k-nearest-neighbour search.

This is the reference implementation of ``NN(t, F, k)`` from the paper: an
exhaustive scan under the configured metric.  It is exact, supports every
metric, and is the backend the more elaborate KD-tree index is validated
against in the test suite.

Two kernel implementations are provided (see :mod:`repro.config`):

* ``"vectorized"`` (default) — one pairwise-distance matrix per query
  block, ``np.argpartition`` top-k selection with an exact tie repair, and
  batched self-exclusion;
* ``"loop"`` — the original per-row ``np.lexsort`` scan, kept as the
  executable reference the vectorized kernels are tested against.

Both produce identical neighbour sets: ordering is by increasing distance
with ties broken by index.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..config import resolve_backend
from ..exceptions import ConfigurationError, NotFittedError
from .distance import get_metric

__all__ = ["BruteForceNeighbors", "stable_order", "topk_batch", "drop_self_rows"]


def stable_order(distances: np.ndarray) -> np.ndarray:
    """Row-wise ordering by increasing distance, ties broken by index.

    A stable argsort breaks ties by original position, which for a plain
    distance row *is* the index — exactly the ``np.lexsort((arange, d))``
    ordering of the reference loop.
    """
    return np.argsort(distances, axis=-1, kind="stable")


def drop_self_rows(order: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
    """Remove each row's own index from an ordered ``(r, w)`` index block.

    ``order`` holds per-row neighbour orderings and ``row_indices`` the
    owning tuple index of each row.  A row where the self index does not
    appear (crowded out of a truncated ordering by zero-distance
    duplicates) loses its last entry instead — either way the result is
    exactly the first ``w - 1`` non-self entries, order preserved.
    """
    keep = order != row_indices[:, None]
    kept_cols = np.argsort(~keep, axis=1, kind="stable")[:, : order.shape[1] - 1]
    return np.take_along_axis(order, kept_cols, axis=1)


def topk_batch(distances: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Exact batched top-k of a ``(q, n)`` distance matrix.

    Uses ``np.argpartition`` to restrict the sort to ``k`` candidates per
    row, then repairs the (rare) rows where a distance tie straddles the
    partition boundary so the result matches a full stable sort exactly.

    Returns ``(distances, indices)`` of shape ``(q, k)``, ordered by
    increasing distance with ties broken by index.
    """
    n = distances.shape[1]
    if k >= n or 4 * k >= n:
        # Partitioning buys nothing near k ~ n; sort the full rows.
        order = stable_order(distances)[:, :k]
        return np.take_along_axis(distances, order, axis=1), order

    # Partition one past k so the (k+1)-th order statistic is available for
    # the boundary-tie check below.
    part = np.argpartition(distances, k, axis=1)[:, : k + 1]
    # Sorting the candidate indices first makes the stable argsort below
    # break distance ties by original index, matching the reference loop.
    part.sort(axis=1)
    part_dist = np.take_along_axis(distances, part, axis=1)
    inner = np.argsort(part_dist, axis=1, kind="stable")
    idx = np.take_along_axis(part, inner, axis=1)[:, :k]
    dist = np.take_along_axis(part_dist, inner, axis=1)

    # Tie repair: when the (k+1)-th smallest distance equals the k-th, the
    # partition picked an arbitrary subset of the boundary tie — redo those
    # rows with a full stable sort (exact, and rare on continuous data).
    ambiguous = dist[:, k] == dist[:, k - 1]
    dist = dist[:, :k]
    if ambiguous.any():
        rows = np.flatnonzero(ambiguous)
        order = stable_order(distances[rows])[:, :k]
        idx[rows] = order
        dist[rows] = np.take_along_axis(distances[rows], order, axis=1)
    return dist, idx


class BruteForceNeighbors:
    """Exact nearest-neighbour search by exhaustive scan.

    Parameters
    ----------
    metric:
        Name of a metric registered in :mod:`repro.neighbors.distance`;
        defaults to the paper's normalized Euclidean distance.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` to follow the global knob
        of :mod:`repro.config`.
    """

    def __init__(self, metric: str = "paper_euclidean", backend: Optional[str] = None):
        self.metric = metric
        self.backend = None if backend is None else resolve_backend(backend)
        self._metric_fn = get_metric(metric)
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "BruteForceNeighbors":
        """Index the reference points (rows of ``data``)."""
        self._data = as_float_matrix(data, name="data")
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed reference points."""
        self._check_fitted()
        return self._data.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed points."""
        self._check_fitted()
        return self._data.shape[1]

    def _check_fitted(self) -> None:
        if self._data is None:
            raise NotFittedError("BruteForceNeighbors must be fitted before querying")

    def _resolve_backend(self, backend: Optional[str]) -> str:
        if backend is not None:
            return resolve_backend(backend)
        if self.backend is not None:
            return self.backend
        return resolve_backend(None)

    # ------------------------------------------------------------------ #
    def kneighbors(
        self,
        query,
        k: int,
        exclude_self: bool = False,
        backend: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Find the ``k`` nearest indexed points for each query.

        Parameters
        ----------
        query:
            One vector or a batch ``(q, m)`` of query points.
        k:
            Number of neighbours to return.
        exclude_self:
            When True, a reference point at distance exactly zero from the
            query is skipped once (used when the query itself belongs to the
            indexed data and should not count as its own neighbour).
        backend:
            Optional per-call backend override.

        Returns
        -------
        (distances, indices):
            Arrays of shape ``(k,)`` for a single query or ``(q, k)`` for a
            batch, sorted by increasing distance (ties broken by index for
            determinism).
        """
        self._check_fitted()
        k = check_positive_int(k, "k")
        query_array = np.asarray(query, dtype=float)
        single = query_array.ndim == 1

        available = self.n_points - (1 if exclude_self else 0)
        if k > available:
            raise ConfigurationError(
                f"requested k={k} neighbours but only {available} are available"
            )

        distances = self._metric_fn(query_array, self._data)
        if single:
            distances = distances.reshape(1, -1)

        if self._resolve_backend(backend) == "loop":
            out_dist, out_idx = self._kneighbors_loop(distances, k, exclude_self)
        else:
            out_dist, out_idx = self._kneighbors_vectorized(distances, k, exclude_self)

        if single:
            return out_dist[0], out_idx[0]
        return out_dist, out_idx

    def _kneighbors_loop(
        self, distances: np.ndarray, k: int, exclude_self: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_queries = distances.shape[0]
        out_dist = np.empty((n_queries, k))
        out_idx = np.empty((n_queries, k), dtype=int)
        for row in range(n_queries):
            d = distances[row]
            order = np.lexsort((np.arange(d.shape[0]), d))
            if exclude_self:
                # Skip exactly one zero-distance match (the query itself).
                if d[order[0]] == 0.0:
                    order = order[1:]
            chosen = order[:k]
            out_dist[row] = d[chosen]
            out_idx[row] = chosen
        return out_dist, out_idx

    def _kneighbors_vectorized(
        self, distances: np.ndarray, k: int, exclude_self: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        need = min(k + (1 if exclude_self else 0), distances.shape[1])
        dist, idx = topk_batch(distances, need)
        if not exclude_self:
            return dist, idx
        # Drop exactly one zero-distance match per row when present; rows
        # without one keep their first k candidates.
        offset = (dist[:, 0] == 0.0).astype(int)
        cols = offset[:, None] + np.arange(k)[None, :]
        return np.take_along_axis(dist, cols, axis=1), np.take_along_axis(idx, cols, axis=1)

    # ------------------------------------------------------------------ #
    def neighbor_order(
        self,
        query,
        exclude_self: bool = False,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """All indexed points ordered by increasing distance from ``query``.

        The adaptive-learning algorithm needs, for each tuple, the full
        ordering of its neighbours so that the sets ``NN(t, F, ℓ)`` for all
        ``ℓ`` can be read off as prefixes (the subsumption property of
        Formula 13).

        With ``exclude_self=True`` one zero-distance match is dropped per
        query when present.  For a single query the result keeps its natural
        length (``n - 1`` with a zero-distance match, ``n`` without).  For a
        *batch* of queries the result is always a rectangular ``(q, n - 1)``
        array: a row with no zero-distance match (the query is not one of
        the indexed points) is trimmed of its farthest neighbour so the rows
        stay aligned.  The previous behaviour silently produced a ragged
        object array in that case.
        """
        self._check_fitted()
        query_array = np.asarray(query, dtype=float)
        single = query_array.ndim == 1
        distances = self._metric_fn(query_array, self._data)
        if single:
            distances = distances.reshape(1, -1)

        if self._resolve_backend(backend) == "loop":
            result = self._neighbor_order_loop(distances, exclude_self, single)
        else:
            result = self._neighbor_order_vectorized(distances, exclude_self, single)
        return result[0] if single else result

    def _neighbor_order_loop(
        self, distances: np.ndarray, exclude_self: bool, single: bool
    ) -> np.ndarray:
        n = distances.shape[1]
        orders = []
        for row in range(distances.shape[0]):
            d = distances[row]
            order = np.lexsort((np.arange(n), d))
            if exclude_self:
                if d[order[0]] == 0.0:
                    order = order[1:]
                elif not single:
                    # Keep batch output rectangular: trim the farthest
                    # neighbour when there is no zero-distance match.
                    order = order[:-1]
            orders.append(order)
        return np.asarray(orders)

    def _neighbor_order_vectorized(
        self, distances: np.ndarray, exclude_self: bool, single: bool
    ) -> np.ndarray:
        n = distances.shape[1]
        order = stable_order(distances)
        if not exclude_self:
            return order
        first = np.take_along_axis(distances, order[:, :1], axis=1)[:, 0]
        drop = first == 0.0
        if single:
            return order[:, 1:] if drop[0] else order
        cols = drop.astype(int)[:, None] + np.arange(n - 1)[None, :]
        return np.take_along_axis(order, cols, axis=1)
