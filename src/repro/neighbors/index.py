"""Facade over the neighbour-search backends plus a cached neighbour ordering.

:class:`NeighborIndex` gives the rest of the library a single entry point:
pick a backend (``"brute"`` or ``"kdtree"``), fit it on the complete
relation's ``F`` columns, and query ``NN(t, F, k)``.

:class:`NeighborOrderCache` materialises, for each indexed tuple on demand,
the ordering of the other tuples by distance.  Adaptive learning
(Algorithm 3) and the incremental computation (Section V-B) both rely on the
fact that ``NN(t, F, ℓ)`` is a *prefix* of ``NN(t, F, ℓ + h)`` (Formula 13);
caching the ordering once per tuple makes every prefix available in O(1).
The cache is lazy and can be capped at a maximum ordering length so that the
memory cost stays ``O(n · max_length)`` rather than ``O(n²)``.

:meth:`NeighborOrderCache.order_matrix` additionally materialises *all*
orderings at once as a dense ``(n, max_length)`` matrix, computed block-wise
from pairwise-distance chunks with a single stable argsort per block — the
entry point the vectorized learning kernels build on.

:meth:`NeighborOrderCache.append` grows the cache *incrementally*: new
tuples are merged into every cached ordering by one sorted merge per row
(cost ``O(n · (L + b))`` instead of the ``O(n²)`` rebuild), and the result
reports, per pre-existing tuple, the first ordering position that changed —
the signal the online engine uses to invalidate only the affected per-tuple
models.  The merged orderings are exactly those a cold rebuild over the
grown data would produce (same distance values, same index tie-breaks).

:class:`NeighborOrderCache` can be backed either by a private data matrix
(the standalone/batch mode) or — for the online engine — by a *store
feature view* (:class:`repro.online.store.StoreFeatureView`): an object
carrying slot references into the shared columnar tuple store instead of a
``(n, m)`` float copy.  In store-backed mode the lifecycle methods take
slot references (``append(slots=...)`` / ``replace(index, slot=...)``),
row values are gathered from the store on demand, and pairwise distances
are computed per shard — bit-identical to the matrix mode, without the
cache owning any tuple payload.

:meth:`NeighborOrderCache.remove` and :meth:`NeighborOrderCache.replace`
complete the tuple lifecycle.  Removal compacts every cached ordering (an
order-preserving deletion of the removed entries, so index tie-breaks stay
correct under the compacted renumbering) and re-fills the few rows whose
capped ordering went short from fresh distance rows; replacement removes
the stale entry from every ordering and merges the revised tuple back in by
one row-wise ``(distance, index)`` lexsort over the kept distances.  Both
report per-row first-changed positions exactly like :meth:`append`, and
both leave the cache bit-identical to a cold rebuild over the surviving
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..exceptions import ConfigurationError, DataError, NotFittedError
from .brute import BruteForceNeighbors, drop_self_rows, stable_order, topk_batch
from .distance import get_metric
from .kdtree import KDTreeNeighbors

__all__ = [
    "NeighborIndex",
    "NeighborOrderCache",
    "OrderAppendResult",
    "OrderRemoveResult",
    "OrderReplaceResult",
]

_BACKENDS = ("brute", "kdtree")


class NeighborIndex:
    """Unified k-nearest-neighbour index.

    Parameters
    ----------
    metric:
        Distance metric name (see :mod:`repro.neighbors.distance`).
    backend:
        ``"brute"`` (default, supports every metric) or ``"kdtree"``
        (Euclidean family only, faster for large ``n``).
    leaf_size:
        KD-tree leaf size; ignored by the brute-force backend.
    """

    def __init__(self, metric: str = "paper_euclidean", backend: str = "brute", leaf_size: int = 32):
        if backend not in _BACKENDS:
            raise ConfigurationError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.metric = metric
        self.backend = backend
        self.leaf_size = leaf_size
        if backend == "kdtree":
            self._impl = KDTreeNeighbors(metric=metric, leaf_size=leaf_size)
        else:
            self._impl = BruteForceNeighbors(metric=metric)
        self._fitted = False

    def fit(self, data) -> "NeighborIndex":
        """Index the rows of ``data``."""
        self._impl.fit(as_float_matrix(data, name="data"))
        self._fitted = True
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        self._check_fitted()
        return self._impl.n_points

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("NeighborIndex must be fitted before querying")

    def kneighbors(self, query, k: int, exclude_self: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """``NN(query, F, k)`` — distances and indices of the k nearest points."""
        self._check_fitted()
        return self._impl.kneighbors(query, k, exclude_self=exclude_self)

    def kneighbors_indices(self, query, k: int, exclude_self: bool = False) -> np.ndarray:
        """Indices only, for callers that do not need the distances."""
        return self.kneighbors(query, k, exclude_self=exclude_self)[1]


@dataclass
class OrderAppendResult:
    """Outcome of one :meth:`NeighborOrderCache.append` call.

    Attributes
    ----------
    n_before:
        Number of indexed tuples before the append.
    n_appended:
        Number of tuples added by the append.
    first_changed:
        Array of shape ``(n_before,)``: for every pre-existing tuple, the
        first position of its cached ordering that changed.  A tuple whose
        ordering merely grew at the tail reports the old effective length; a
        tuple whose ordering is completely unchanged reports the new
        effective length (so ``first_changed[i] < ell`` is exactly "the
        ``ell``-prefix of tuple ``i`` changed").
    """

    n_before: int
    n_appended: int
    first_changed: np.ndarray

    def changed_rows(self, prefix_length: int) -> np.ndarray:
        """Pre-existing tuples whose first ``prefix_length`` neighbours changed."""
        prefix_length = check_positive_int(prefix_length, "prefix_length")
        return np.flatnonzero(self.first_changed < prefix_length)


@dataclass
class OrderRemoveResult:
    """Outcome of one :meth:`NeighborOrderCache.remove` call.

    Attributes
    ----------
    n_before:
        Number of indexed tuples before the removal.
    n_removed:
        Number of tuples removed.
    first_changed:
        Array of shape ``(n_after,)``, aligned with the *surviving* tuples
        in their new (compacted) index order: the first position of each
        surviving tuple's ordering where the neighbour *identity* changed.
        A fully unchanged ordering reports the new effective length, so
        ``first_changed[i] < ell`` is exactly "the ``ell``-prefix of
        surviving tuple ``i`` changed".
    index_map:
        Array of shape ``(n_before,)`` mapping old tuple indices to their
        compacted new indices; removed tuples map to ``-1``.
    """

    n_before: int
    n_removed: int
    first_changed: np.ndarray
    index_map: np.ndarray

    def changed_rows(self, prefix_length: int) -> np.ndarray:
        """Surviving tuples (new indices) whose ``prefix_length``-prefix changed."""
        prefix_length = check_positive_int(prefix_length, "prefix_length")
        return np.flatnonzero(self.first_changed < prefix_length)

    def kept_rows(self) -> np.ndarray:
        """Old indices of the surviving tuples, in new index order."""
        return np.flatnonzero(self.index_map >= 0)


@dataclass
class OrderReplaceResult:
    """Outcome of one :meth:`NeighborOrderCache.replace` call.

    Attributes
    ----------
    index:
        The replaced tuple's index (unchanged by the operation).
    first_changed:
        Array of shape ``(n,)``: per tuple, the first ordering position
        whose neighbour identity changed (``length`` when unchanged).  Note
        this tracks ordering changes only — a tuple whose prefix still
        *contains* ``index`` at the same position has an unchanged ordering
        even though that neighbour's values changed; callers that learn
        models over the prefix values must treat those rows as dirty too.
    """

    index: int
    first_changed: np.ndarray

    def changed_rows(self, prefix_length: int) -> np.ndarray:
        """Tuples whose first ``prefix_length`` neighbours changed."""
        prefix_length = check_positive_int(prefix_length, "prefix_length")
        return np.flatnonzero(self.first_changed < prefix_length)


class NeighborOrderCache:
    """Per-tuple neighbour orderings, computed lazily and cached.

    Parameters
    ----------
    data:
        Matrix of shape ``(n, m)`` — typically the complete relation
        restricted to the complete attributes ``F``.
    metric:
        Distance metric name.
    include_self:
        Whether a tuple counts as its own nearest neighbour (the paper's
        learning phase includes the tuple itself in ``NN(t_i, F, ℓ)``;
        the validation step of Algorithm 3 excludes it).
    max_length:
        Optional cap on the ordering length kept per tuple; ``None`` keeps
        the full ordering.  Capping bounds memory at ``O(n · max_length)``.
    keep_distances:
        Also materialise the distances aligned with the cached orderings
        (needed by :meth:`append`, which enables it automatically).  Off by
        default so batch-learning callers pay for the index matrix only.
    """

    def __init__(
        self,
        data,
        metric: str = "paper_euclidean",
        include_self: bool = True,
        max_length: Optional[int] = None,
        keep_distances: bool = False,
    ):
        # A store feature view (duck-typed: it computes its own per-shard
        # pairwise distances) is kept as-is; anything else is a matrix.
        self._store_backed = hasattr(data, "pairwise") and hasattr(data, "slots")
        if self._store_backed:
            self._data = data
        else:
            self._data = as_float_matrix(data, name="data")
        self._metric_fn = get_metric(metric)
        self.metric = metric
        self.include_self = bool(include_self)
        if max_length is not None:
            max_length = check_positive_int(max_length, "max_length")
        # The *requested* cap is kept separately so the effective length can
        # grow back towards it when append() adds tuples to a store that was
        # smaller than the cap.
        self._requested_length = max_length
        self.max_length = None if max_length is None else min(max_length, self.max_neighbors())
        self.keep_distances = bool(keep_distances)
        self._cache: Dict[int, np.ndarray] = {}
        self._matrix: Optional[np.ndarray] = None
        self._dists: Optional[np.ndarray] = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._data.shape[0]

    @property
    def data(self):
        """The indexed points: a read-only array, or the store view."""
        if self._store_backed:
            return self._data
        view = self._data.view()
        view.setflags(write=False)
        return view

    @property
    def store_backed(self) -> bool:
        """Whether the cache reads through a shared columnar store."""
        return self._store_backed

    @property
    def slots(self) -> Optional[np.ndarray]:
        """Store slots of the indexed points (store-backed mode only)."""
        return self._data.slots if self._store_backed else None

    def _pairwise(self, query) -> np.ndarray:
        """Distances of ``query`` against every indexed point."""
        if self._store_backed:
            return self._data.pairwise(query, self._metric_fn)
        return self._metric_fn(query, self._data)

    def max_neighbors(self) -> int:
        """The largest ℓ available from this cache."""
        return self.n_points if self.include_self else self.n_points - 1

    def effective_length(self) -> int:
        """The ordering length currently kept per tuple."""
        return self.max_neighbors() if self.max_length is None else self.max_length

    def _compute_order(self, index: int) -> np.ndarray:
        distances = self._pairwise(self._data[index])
        order = np.lexsort((np.arange(distances.shape[0]), distances))
        if not self.include_self:
            keep = order != index
            order = order[keep]
        limit = self.max_length
        if limit is not None:
            order = order[:limit]
        return np.ascontiguousarray(order)

    def order_of(self, index: int) -> np.ndarray:
        """Tuples ordered by increasing distance from tuple ``index``."""
        if not 0 <= index < self.n_points:
            raise ConfigurationError(f"tuple index {index} out of range")
        if self._matrix is not None:
            return self._matrix[index]
        cached = self._cache.get(index)
        if cached is None:
            cached = self._compute_order(index)
            self._cache[index] = cached
        return cached

    def order_matrix(self, chunk_size: Optional[int] = None) -> np.ndarray:
        """All orderings as one ``(n, L)`` matrix (``L`` = effective length).

        The matrix is built block-wise: one pairwise-distance chunk per
        block, one stable argsort (ties broken by index, exactly like the
        per-row ``np.lexsort`` of :meth:`order_of`), and — without
        ``include_self`` — one masked removal of the diagonal entry.  The
        result is cached, after which :meth:`order_of` and :meth:`prefix`
        become O(1) row views.

        Parameters
        ----------
        chunk_size:
            Number of query rows per distance block; defaults to a size
            keeping the ``(chunk, n)`` distance block near ~100k floats
            (measured fastest: the block plus its argpartition scratch
            stay cache-resident).
        """
        if self._matrix is not None:
            return self._matrix
        n = self.n_points
        length = self.effective_length()
        if chunk_size is None:
            chunk_size = max(32, min(n, 100_000 // max(1, n)))
        # Without include_self the self entry must be dropped from the kept
        # prefix, so one extra ordered position is selected per row.
        select = min(n, length + (0 if self.include_self else 1))
        out = np.empty((n, length), dtype=int)
        out_dists = np.empty((n, length)) if self.keep_distances else None
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            distances = self._pairwise(self._data[start:stop])
            if select < n:
                _, order = topk_batch(distances, select)
            else:
                order = stable_order(distances)
            if not self.include_self:
                order = drop_self_rows(order, np.arange(start, stop))
            order = order[:, :length]
            out[start:stop] = order
            if out_dists is not None:
                out_dists[start:stop] = np.take_along_axis(distances, order, axis=1)
        self._matrix = out
        self._dists = out_dists
        self._cache.clear()
        return out

    def prefix(self, index: int, length: int) -> np.ndarray:
        """``NN(t_index, F, length)`` as a prefix of the cached ordering."""
        length = check_positive_int(length, "length")
        order = self.order_of(index)
        if length > order.shape[0]:
            raise ConfigurationError(
                f"requested {length} neighbours but only {order.shape[0]} are available"
            )
        return order[:length]

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def _normalize_rows(self, rows, name: str) -> np.ndarray:
        """Coerce ``rows`` to a validated ``(b, m)`` float block.

        A single 1-D tuple becomes one row; an empty batch still has its
        attribute count checked (a ``(0, m+3)`` block is a shape error, not
        a silent no-op).  Width mismatches violate the index contract and
        raise :class:`ConfigurationError`; malformed contents (conversion
        failures, NaN/inf cells) are data problems and raise
        :class:`DataError`, matching :func:`~repro._validation.as_float_matrix`.
        """
        width = self._data.shape[1]
        try:
            rows = np.asarray(rows, dtype=float)
        except (TypeError, ValueError) as exc:
            raise DataError(
                f"{name} could not be converted to a float array: {exc}"
            ) from exc
        if rows.ndim == 1:
            rows = rows.reshape(1, -1) if rows.size else rows.reshape(0, width)
        if rows.ndim != 2:
            raise DataError(
                f"{name} must be 2-dimensional, got shape {rows.shape}"
            )
        if rows.shape[1] != width:
            raise ConfigurationError(
                f"{name} have {rows.shape[1]} attributes, index has {width}"
            )
        if not np.all(np.isfinite(rows)):
            raise DataError(f"{name} contain NaN or infinite values")
        return np.ascontiguousarray(rows)

    def append(self, rows=None, *, slots=None) -> OrderAppendResult:
        """Add tuples to the indexed data and update every cached ordering.

        Each pre-existing tuple's ordering is merged with the new candidate
        distances by one stable row-wise sort over ``L + b`` entries; the new
        tuples' orderings are computed against the grown store.  Both are
        *exactly* the orderings a cold rebuild would produce: the per-pair
        distance values are identical and ties still break by index (old
        tuples carry smaller indices than appended ones, and the old cached
        ordering/new candidate block are each already in index order, so a
        stable sort on distance preserves the lexicographic order).

        The effective ordering length grows back towards the requested
        ``max_length`` cap as the store grows; a tuple whose cached ordering
        held *all* points keeps a complete ordering after the merge.

        In store-backed mode pass ``slots`` (the columnar-store slots the
        engine appended) instead of ``rows``; the values are gathered from
        the store.

        Returns an :class:`OrderAppendResult` reporting, per pre-existing
        tuple, the first ordering position that changed.
        """
        n_before = self.n_points
        if self._store_backed:
            if slots is None:
                raise ConfigurationError(
                    "a store-backed cache grows by slots; pass append(slots=...)"
                )
            slots = np.asarray(slots, dtype=np.int64)
            rows = self._data.store.rows(slots, attrs=self._data.attrs)
        else:
            if rows is None:
                raise ConfigurationError("append requires rows (or a store view)")
            rows = self._normalize_rows(rows, "appended rows")
        if rows.shape[0] == 0:
            length = self.effective_length()
            return OrderAppendResult(
                n_before, 0, np.full(n_before, length, dtype=int)
            )
        n_appended = rows.shape[0]

        # Materialise the current orderings (and distances) before growing.
        self.keep_distances = True
        old_orders = self.order_matrix()
        old_dists = self._ensure_distances()
        old_length = old_orders.shape[1]

        n_after = n_before + n_appended
        new_indices = np.arange(n_before, n_after)

        # Distances of the appended rows against the full grown store; the
        # transpose of its left block is, by metric symmetry, bit-identical
        # to what a cold rebuild computes for the pre-existing rows.
        if self._store_backed:
            self._data = self._data.extended(slots)
        else:
            self._data = np.vstack([self._data, rows])
        appended_distances = self._pairwise(rows)

        if self._requested_length is not None:
            self.max_length = min(self._requested_length, self.max_neighbors())
        new_length = self.effective_length()

        # --- Orderings of the appended tuples (cold path over the full
        # store, truncated selection exactly like order_matrix()).
        select = min(n_after, new_length + (0 if self.include_self else 1))
        if select < n_after:
            _, appended_order = topk_batch(appended_distances, select)
        else:
            appended_order = stable_order(appended_distances)
        if not self.include_self:
            appended_order = drop_self_rows(appended_order, new_indices)
        appended_order = appended_order[:, :new_length]
        appended_order_dists = np.take_along_axis(
            appended_distances, appended_order, axis=1
        )

        # --- Merge the new candidates into every pre-existing ordering.
        candidate_dists = appended_distances[:, :n_before].T  # (n_before, b)
        concat_dists = np.hstack([old_dists, candidate_dists])
        concat_orders = np.hstack(
            [old_orders, np.broadcast_to(new_indices, (n_before, n_appended))]
        )
        merge = np.argsort(concat_dists, axis=1, kind="stable")[:, :new_length]
        merged_orders = np.take_along_axis(concat_orders, merge, axis=1)
        merged_dists = np.take_along_axis(concat_dists, merge, axis=1)

        # First changed position per pre-existing tuple (old_length when the
        # ordering only grew at the tail, new_length when fully unchanged).
        padded = np.full((n_before, new_length), -1, dtype=int)
        padded[:, :old_length] = old_orders[:, : min(old_length, new_length)]
        differs = merged_orders != padded
        first_changed = np.where(
            differs.any(axis=1), differs.argmax(axis=1), new_length
        )

        self._matrix = np.vstack([merged_orders, appended_order])
        self._dists = np.vstack([merged_dists, appended_order_dists])
        self._cache.clear()
        return OrderAppendResult(n_before, n_appended, first_changed)

    def remove(self, indices) -> OrderRemoveResult:
        """Remove tuples from the indexed data and repair every ordering.

        Each surviving tuple's ordering is *compacted*: the removed entries
        are deleted in place (an order-preserving operation, so the result
        is the cold ordering over the surviving data under the compacted
        renumbering — the old index tie-breaks map monotonically onto the
        new ones).  Rows whose capped ordering loses more entries than the
        new effective length allows are re-filled from a fresh distance row
        (the dropped tail was never cached); uncapped caches never need
        this.

        Returns an :class:`OrderRemoveResult` carrying the per-survivor
        first-changed positions (new index space) and the old→new
        ``index_map``.
        """
        n_before = self.n_points
        indices = np.unique(np.atleast_1d(np.asarray(indices, dtype=int)))
        if indices.size == 0:
            return OrderRemoveResult(
                n_before,
                0,
                np.full(n_before, self.effective_length(), dtype=int),
                np.arange(n_before),
            )
        if indices[0] < 0 or indices[-1] >= n_before:
            raise ConfigurationError(
                f"removal indices must lie in [0, {n_before}), got "
                f"[{indices[0]}, {indices[-1]}]"
            )

        removed_mask = np.zeros(n_before, dtype=bool)
        removed_mask[indices] = True
        kept = np.flatnonzero(~removed_mask)
        index_map = np.full(n_before, -1, dtype=int)
        index_map[kept] = np.arange(kept.size)
        n_after = kept.size

        if n_after == 0:
            if self._store_backed:
                self._data = self._data.selected(np.empty(0, dtype=np.int64))
            else:
                self._data = self._data[:0].copy()
            self.max_length = None if self._requested_length is None else 0
            self._matrix = np.empty((0, 0), dtype=int)
            self._dists = np.empty((0, 0)) if self.keep_distances else None
            self._cache.clear()
            return OrderRemoveResult(
                n_before, n_before, np.empty(0, dtype=int), index_map
            )

        # Materialise the current orderings (and distances) before shrinking.
        self.keep_distances = True
        old_orders = self.order_matrix()
        old_dists = self._ensure_distances()

        if self._store_backed:
            self._data = self._data.selected(kept)
        else:
            self._data = self._data[kept]
        if self._requested_length is not None:
            self.max_length = min(self._requested_length, self.max_neighbors())
        new_length = self.effective_length()

        # --- Compact each survivor's ordering: stable-partition the kept
        # entries to the front (order preserved), then truncate.
        rows = old_orders[kept]
        row_dists = old_dists[kept]
        keep_entry = ~removed_mask[rows]
        counts = keep_entry.sum(axis=1)
        cols = np.argsort(~keep_entry, axis=1, kind="stable")[:, :new_length]
        compact = np.take_along_axis(rows, cols, axis=1)
        compact_d = np.take_along_axis(row_dists, cols, axis=1)
        new_orders = index_map[compact]
        new_dists = compact_d

        # --- Rows whose capped ordering went short lost prefix entries the
        # cache never held beyond the cap; rebuild those rows cold.
        deficit = np.flatnonzero(counts < new_length)
        if deficit.size:
            distances = self._pairwise(self._data[deficit])
            select = min(n_after, new_length + (0 if self.include_self else 1))
            if select < n_after:
                _, order = topk_batch(distances, select)
            else:
                order = stable_order(distances)
            if not self.include_self:
                order = drop_self_rows(order, deficit)
            order = order[:, :new_length]
            new_orders[deficit] = order
            new_dists[deficit] = np.take_along_axis(distances, order, axis=1)

        # First changed position per survivor: compare neighbour identities
        # against the old prefix (removed entries map to -1, never equal).
        old_remap = index_map[rows[:, :new_length]]
        differs = new_orders != old_remap
        first_changed = np.where(
            differs.any(axis=1), differs.argmax(axis=1), new_length
        )

        self._matrix = np.ascontiguousarray(new_orders)
        self._dists = np.ascontiguousarray(new_dists)
        self._cache.clear()
        return OrderRemoveResult(n_before, indices.size, first_changed, index_map)

    def replace(self, index: int, row=None, *, slot=None) -> OrderReplaceResult:
        """Replace one indexed tuple's values and repair every ordering.

        Removal + merge over the kept distances: the stale entry for
        ``index`` is dropped from every ordering (its cached distance is
        retired) and the revised tuple is merged back in by one row-wise
        ``(distance, index)`` lexsort, so ties still break exactly like a
        cold rebuild.  Rows where the revised tuple fell out of a capped
        prefix are re-filled from a fresh distance row; the replaced
        tuple's own ordering is recomputed outright.

        In store-backed mode pass ``slot`` (the fresh columnar-store slot
        holding the revised tuple) instead of ``row``.
        """
        n = self.n_points
        index = int(index)
        if not 0 <= index < n:
            raise ConfigurationError(f"tuple index {index} out of range")
        if self._store_backed:
            if slot is None:
                raise ConfigurationError(
                    "a store-backed cache revises by slot; pass replace(index, slot=...)"
                )
        else:
            if row is None:
                raise ConfigurationError("replace requires a row (or a store view)")
            row = self._normalize_rows(row, "replacement row")
            if row.shape[0] != 1:
                raise ConfigurationError(
                    f"replace expects exactly one row, got {row.shape[0]}"
                )

        self.keep_distances = True
        old_orders = self.order_matrix()
        old_dists = self._ensure_distances()
        length = old_orders.shape[1]

        if self._store_backed:
            self._data = self._data.replaced(index, slot)
        else:
            data = self._data.copy()
            data[index] = row[0]
            self._data = data
        # Distances of the revised tuple against the updated store (its own
        # entry included); by metric symmetry this column doubles as every
        # other tuple's candidate distance.
        cand_dists = self._pairwise(self._data[index])

        # --- Drop the stale entry for ``index`` from every ordering (it
        # moves to the last column), then merge the revised candidate in.
        stale = old_orders == index
        contained = stale.any(axis=1)
        cols = np.argsort(stale, axis=1, kind="stable")
        compact = np.take_along_axis(old_orders, cols, axis=1)
        compact_d = np.take_along_axis(old_dists, cols, axis=1)
        # Retire the stale entry by pushing it past every finite distance.
        compact_d[contained, -1] = np.inf

        concat_orders = np.hstack(
            [compact, np.full((n, 1), index, dtype=int)]
        )
        concat_dists = np.hstack([compact_d, cand_dists[:, None]])
        merge = np.lexsort((concat_orders, concat_dists), axis=1)[:, :length]
        new_orders = np.take_along_axis(concat_orders, merge, axis=1)
        new_dists = np.take_along_axis(concat_dists, merge, axis=1)

        # --- Re-fill rows that cannot be repaired from cached state: a row
        # whose capped ordering contained ``index`` only knows length - 1
        # other entries, so when the revised candidate lands on the final
        # position the true occupant may be an uncached tuple.
        truncated = length < self.max_neighbors()
        refill = [index]
        if truncated and contained.any():
            cand_last = new_orders[:, length - 1] == index
            refill = np.flatnonzero(contained & cand_last).tolist()
            if index not in refill:
                refill.append(index)
        refill = np.asarray(sorted(refill), dtype=int)
        distances = self._pairwise(self._data[refill])
        select = min(n, length + (0 if self.include_self else 1))
        if select < n:
            _, order = topk_batch(distances, select)
        else:
            order = stable_order(distances)
        if not self.include_self:
            order = drop_self_rows(order, refill)
        order = order[:, :length]
        new_orders[refill] = order
        new_dists[refill] = np.take_along_axis(distances, order, axis=1)

        differs = new_orders != old_orders
        first_changed = np.where(differs.any(axis=1), differs.argmax(axis=1), length)

        self._matrix = np.ascontiguousarray(new_orders)
        self._dists = np.ascontiguousarray(new_dists)
        self._cache.clear()
        return OrderReplaceResult(index, first_changed)

    def _ensure_distances(self, chunk_size: Optional[int] = None) -> np.ndarray:
        """Backfill the distance matrix for already-materialised orderings."""
        if self._dists is not None:
            return self._dists
        matrix = self.order_matrix()
        if self._dists is not None:  # order_matrix built both just now
            return self._dists
        n = self.n_points
        if chunk_size is None:
            chunk_size = max(32, min(n, 100_000 // max(1, n)))
        dists = np.empty(matrix.shape)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            distances = self._pairwise(self._data[start:stop])
            dists[start:stop] = np.take_along_axis(
                distances, matrix[start:stop], axis=1
            )
        self._dists = dists
        return dists

    def restore_matrix(self, orders: np.ndarray, dists: np.ndarray) -> None:
        """Install previously materialised orderings (artifact restore path).

        ``orders``/``dists`` must be the arrays a prior :meth:`order_matrix`
        (possibly followed by :meth:`append` calls) produced for exactly the
        data this cache was constructed over.
        """
        orders = np.asarray(orders, dtype=int)
        dists = np.asarray(dists, dtype=float)
        expected = (self.n_points, self.effective_length())
        if orders.shape != expected or dists.shape != expected:
            raise ConfigurationError(
                f"restored ordering matrices must have shape {expected}, got "
                f"{orders.shape} and {dists.shape}"
            )
        self.keep_distances = True
        self._matrix = orders.copy()
        self._dists = dists.copy()
        self._cache.clear()

    @property
    def order_distances(self) -> Optional[np.ndarray]:
        """The distances aligned with :meth:`order_matrix` (``None`` until built)."""
        return self._dists

    def clear(self) -> None:
        """Drop all cached orderings (frees memory)."""
        self._cache.clear()
        self._matrix = None
        self._dists = None
