"""Facade over the neighbour-search backends plus a cached neighbour ordering.

:class:`NeighborIndex` gives the rest of the library a single entry point:
pick a backend (``"brute"`` or ``"kdtree"``), fit it on the complete
relation's ``F`` columns, and query ``NN(t, F, k)``.

:class:`NeighborOrderCache` materialises, for each indexed tuple on demand,
the ordering of the other tuples by distance.  Adaptive learning
(Algorithm 3) and the incremental computation (Section V-B) both rely on the
fact that ``NN(t, F, ℓ)`` is a *prefix* of ``NN(t, F, ℓ + h)`` (Formula 13);
caching the ordering once per tuple makes every prefix available in O(1).
The cache is lazy and can be capped at a maximum ordering length so that the
memory cost stays ``O(n · max_length)`` rather than ``O(n²)``.

:meth:`NeighborOrderCache.order_matrix` additionally materialises *all*
orderings at once as a dense ``(n, max_length)`` matrix, computed block-wise
from pairwise-distance chunks with a single stable argsort per block — the
entry point the vectorized learning kernels build on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..exceptions import ConfigurationError, NotFittedError
from .brute import BruteForceNeighbors, drop_self_rows, stable_order, topk_batch
from .distance import get_metric
from .kdtree import KDTreeNeighbors

__all__ = ["NeighborIndex", "NeighborOrderCache"]

_BACKENDS = ("brute", "kdtree")


class NeighborIndex:
    """Unified k-nearest-neighbour index.

    Parameters
    ----------
    metric:
        Distance metric name (see :mod:`repro.neighbors.distance`).
    backend:
        ``"brute"`` (default, supports every metric) or ``"kdtree"``
        (Euclidean family only, faster for large ``n``).
    leaf_size:
        KD-tree leaf size; ignored by the brute-force backend.
    """

    def __init__(self, metric: str = "paper_euclidean", backend: str = "brute", leaf_size: int = 32):
        if backend not in _BACKENDS:
            raise ConfigurationError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.metric = metric
        self.backend = backend
        self.leaf_size = leaf_size
        if backend == "kdtree":
            self._impl = KDTreeNeighbors(metric=metric, leaf_size=leaf_size)
        else:
            self._impl = BruteForceNeighbors(metric=metric)
        self._fitted = False

    def fit(self, data) -> "NeighborIndex":
        """Index the rows of ``data``."""
        self._impl.fit(as_float_matrix(data, name="data"))
        self._fitted = True
        return self

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        self._check_fitted()
        return self._impl.n_points

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("NeighborIndex must be fitted before querying")

    def kneighbors(self, query, k: int, exclude_self: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """``NN(query, F, k)`` — distances and indices of the k nearest points."""
        self._check_fitted()
        return self._impl.kneighbors(query, k, exclude_self=exclude_self)

    def kneighbors_indices(self, query, k: int, exclude_self: bool = False) -> np.ndarray:
        """Indices only, for callers that do not need the distances."""
        return self.kneighbors(query, k, exclude_self=exclude_self)[1]


class NeighborOrderCache:
    """Per-tuple neighbour orderings, computed lazily and cached.

    Parameters
    ----------
    data:
        Matrix of shape ``(n, m)`` — typically the complete relation
        restricted to the complete attributes ``F``.
    metric:
        Distance metric name.
    include_self:
        Whether a tuple counts as its own nearest neighbour (the paper's
        learning phase includes the tuple itself in ``NN(t_i, F, ℓ)``;
        the validation step of Algorithm 3 excludes it).
    max_length:
        Optional cap on the ordering length kept per tuple; ``None`` keeps
        the full ordering.  Capping bounds memory at ``O(n · max_length)``.
    """

    def __init__(
        self,
        data,
        metric: str = "paper_euclidean",
        include_self: bool = True,
        max_length: Optional[int] = None,
    ):
        self._data = as_float_matrix(data, name="data")
        self._metric_fn = get_metric(metric)
        self.metric = metric
        self.include_self = bool(include_self)
        if max_length is not None:
            max_length = check_positive_int(max_length, "max_length")
            max_length = min(max_length, self.max_neighbors())
        self.max_length = max_length
        self._cache: Dict[int, np.ndarray] = {}
        self._matrix: Optional[np.ndarray] = None

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self._data.shape[0]

    def max_neighbors(self) -> int:
        """The largest ℓ available from this cache."""
        return self.n_points if self.include_self else self.n_points - 1

    def _compute_order(self, index: int) -> np.ndarray:
        distances = self._metric_fn(self._data[index], self._data)
        order = np.lexsort((np.arange(distances.shape[0]), distances))
        if not self.include_self:
            keep = order != index
            order = order[keep]
        limit = self.max_length
        if limit is not None:
            order = order[:limit]
        return np.ascontiguousarray(order)

    def order_of(self, index: int) -> np.ndarray:
        """Tuples ordered by increasing distance from tuple ``index``."""
        if not 0 <= index < self.n_points:
            raise ConfigurationError(f"tuple index {index} out of range")
        if self._matrix is not None:
            return self._matrix[index]
        cached = self._cache.get(index)
        if cached is None:
            cached = self._compute_order(index)
            self._cache[index] = cached
        return cached

    def order_matrix(self, chunk_size: Optional[int] = None) -> np.ndarray:
        """All orderings as one ``(n, L)`` matrix (``L`` = effective length).

        The matrix is built block-wise: one pairwise-distance chunk per
        block, one stable argsort (ties broken by index, exactly like the
        per-row ``np.lexsort`` of :meth:`order_of`), and — without
        ``include_self`` — one masked removal of the diagonal entry.  The
        result is cached, after which :meth:`order_of` and :meth:`prefix`
        become O(1) row views.

        Parameters
        ----------
        chunk_size:
            Number of query rows per distance block; defaults to a size
            keeping the ``(chunk, n)`` distance block near ~100k floats
            (measured fastest: the block plus its argpartition scratch
            stay cache-resident).
        """
        if self._matrix is not None:
            return self._matrix
        n = self.n_points
        length = self.max_neighbors() if self.max_length is None else self.max_length
        if chunk_size is None:
            chunk_size = max(32, min(n, 100_000 // max(1, n)))
        # Without include_self the self entry must be dropped from the kept
        # prefix, so one extra ordered position is selected per row.
        select = min(n, length + (0 if self.include_self else 1))
        out = np.empty((n, length), dtype=int)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            distances = self._metric_fn(self._data[start:stop], self._data)
            if select < n:
                _, order = topk_batch(distances, select)
            else:
                order = stable_order(distances)
            if not self.include_self:
                order = drop_self_rows(order, np.arange(start, stop))
            out[start:stop] = order[:, :length]
        self._matrix = out
        self._cache.clear()
        return out

    def prefix(self, index: int, length: int) -> np.ndarray:
        """``NN(t_index, F, length)`` as a prefix of the cached ordering."""
        length = check_positive_int(length, "length")
        order = self.order_of(index)
        if length > order.shape[0]:
            raise ConfigurationError(
                f"requested {length} neighbours but only {order.shape[0]} are available"
            )
        return order[:length]

    def clear(self) -> None:
        """Drop all cached orderings (frees memory)."""
        self._cache.clear()
        self._matrix = None
