"""Distance functions used for neighbour search.

The paper defines the distance between tuples on the complete attributes
``F`` as the *normalized* Euclidean distance (Formula 1):

.. math::

    d_{x,i} = \\sqrt{\\frac{\\sum_{A \\in F} (t_x[A] - t_i[A])^2}{|F|}}

Manhattan and Chebyshev distances are provided as well for ablations; all
functions operate on plain numpy arrays and support both a single query
vector and a batch of queries.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .._validation import as_float_matrix, as_float_vector
from ..exceptions import ConfigurationError, DataError

try:  # scipy's compiled pairwise kernels; optional, numpy fallback below.
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - exercised only without scipy
    _cdist = None

__all__ = [
    "paper_euclidean",
    "euclidean",
    "manhattan",
    "chebyshev",
    "pairwise_distances",
    "get_metric",
    "METRICS",
]


def _prepare(query: np.ndarray, data: np.ndarray) -> tuple:
    data = as_float_matrix(data, name="data")
    query = np.asarray(query, dtype=float)
    single = query.ndim == 1
    if single:
        query = query.reshape(1, -1)
    query = as_float_matrix(query, name="query")
    if query.shape[1] != data.shape[1]:
        raise DataError(
            f"query has {query.shape[1]} attributes but data has {data.shape[1]}"
        )
    return query, data, single


def paper_euclidean(query, data) -> np.ndarray:
    """Formula 1: root-mean-square difference over the shared attributes.

    Parameters
    ----------
    query:
        Either one vector of length ``m`` or a batch of shape ``(q, m)``.
    data:
        Matrix of shape ``(n, m)``.

    Returns
    -------
    numpy.ndarray
        Distances of shape ``(n,)`` for a single query or ``(q, n)`` for a
        batch.
    """
    query, data, single = _prepare(query, data)
    if _cdist is not None:
        # Direct (non-expanded) squared differences, so identical tuples are
        # at distance exactly 0.0 — the self-exclusion logic relies on it.
        distances = np.sqrt(_cdist(query, data, "sqeuclidean") / query.shape[1])
    else:
        diff = query[:, None, :] - data[None, :, :]
        # einsum contracts the squared differences without materialising diff².
        distances = np.sqrt(np.einsum("qnd,qnd->qn", diff, diff) / query.shape[1])
    return distances[0] if single else distances


def euclidean(query, data) -> np.ndarray:
    """Standard (non-normalized) Euclidean distance."""
    query, data, single = _prepare(query, data)
    if _cdist is not None:
        distances = np.sqrt(_cdist(query, data, "sqeuclidean"))
    else:
        diff = query[:, None, :] - data[None, :, :]
        distances = np.sqrt(np.einsum("qnd,qnd->qn", diff, diff))
    return distances[0] if single else distances


def manhattan(query, data) -> np.ndarray:
    """L1 (city-block) distance."""
    query, data, single = _prepare(query, data)
    if _cdist is not None:
        distances = _cdist(query, data, "cityblock")
    else:
        distances = np.sum(np.abs(query[:, None, :] - data[None, :, :]), axis=2)
    return distances[0] if single else distances


def chebyshev(query, data) -> np.ndarray:
    """L-infinity (maximum coordinate difference) distance."""
    query, data, single = _prepare(query, data)
    if _cdist is not None:
        distances = _cdist(query, data, "chebyshev")
    else:
        distances = np.max(np.abs(query[:, None, :] - data[None, :, :]), axis=2)
    return distances[0] if single else distances


#: Registry of metric names accepted throughout the library.
METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "paper_euclidean": paper_euclidean,
    "euclidean": euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a metric function by name."""
    key = str(name).lower()
    if key not in METRICS:
        raise ConfigurationError(
            f"unknown metric {name!r}; available metrics: {sorted(METRICS)}"
        )
    return METRICS[key]


def pairwise_distances(data, metric: str = "paper_euclidean") -> np.ndarray:
    """All-pairs distance matrix of shape ``(n, n)`` under the named metric."""
    data = as_float_matrix(data, name="data")
    return get_metric(metric)(data, data)
