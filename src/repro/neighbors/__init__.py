"""Nearest-neighbour search substrate (Formula 1 distance, brute force, KD-tree)."""

from .brute import BruteForceNeighbors
from .distance import (
    METRICS,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    paper_euclidean,
    pairwise_distances,
)
from .index import (
    NeighborIndex,
    NeighborOrderCache,
    OrderAppendResult,
    OrderRemoveResult,
    OrderReplaceResult,
)
from .kdtree import KDTreeNeighbors

__all__ = [
    "BruteForceNeighbors",
    "KDTreeNeighbors",
    "NeighborIndex",
    "NeighborOrderCache",
    "OrderAppendResult",
    "OrderRemoveResult",
    "OrderReplaceResult",
    "METRICS",
    "paper_euclidean",
    "euclidean",
    "manhattan",
    "chebyshev",
    "get_metric",
    "pairwise_distances",
]
