"""A from-scratch KD-tree for exact k-nearest-neighbour search.

The paper notes that "advanced indexing and searching techniques could be
applied" to the neighbour searches of Algorithms 1–3.  This module provides
such an index: a classic median-split KD-tree with a bounded-priority-queue
search.  It supports the Euclidean family of metrics (including the paper's
normalized Euclidean distance, which orders points identically to plain
Euclidean distance and only rescales the reported distance values).

The tree is validated against :class:`~repro.neighbors.brute.BruteForceNeighbors`
in the test suite — both must return identical neighbour sets.

Batched queries traverse the tree once per *batch* on the default
``"vectorized"`` backend of :mod:`repro.config`: every node is visited with
the subset of queries that reach it, leaf distances are computed as one
block, and per-query candidate lists are merged with a row-wise lexsort.
Pruning stays per-query (each query carries its own current worst
distance), so the result is exactly the per-query traversal's — and
identical to brute force, ties broken by index.  The ``"loop"`` backend
keeps the original one-query-at-a-time bounded-priority-queue search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..config import resolve_backend
from ..exceptions import ConfigurationError, NotFittedError

__all__ = ["KDTreeNeighbors"]

_SUPPORTED_METRICS = ("euclidean", "paper_euclidean")


@dataclass
class _Node:
    """One KD-tree node: either an internal split or a leaf bucket."""

    indices: np.ndarray
    split_dim: int = -1
    split_value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class KDTreeNeighbors:
    """Exact nearest-neighbour index backed by a median-split KD-tree.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or ``"paper_euclidean"``.  Both produce the same
        neighbour ordering; the latter divides reported distances by
        ``sqrt(m)`` to match Formula 1 of the paper.
    leaf_size:
        Maximum number of points stored in a leaf bucket before splitting.
    backend:
        ``"vectorized"`` (batched traversal for batch queries), ``"loop"``
        (per-query search), or ``None`` to follow the global knob of
        :mod:`repro.config`.
    """

    def __init__(
        self,
        metric: str = "paper_euclidean",
        leaf_size: int = 32,
        backend: Optional[str] = None,
    ):
        if metric not in _SUPPORTED_METRICS:
            raise ConfigurationError(
                f"KDTreeNeighbors supports metrics {_SUPPORTED_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.leaf_size = check_positive_int(leaf_size, "leaf_size")
        self.backend = None if backend is None else resolve_backend(backend)
        self._data: Optional[np.ndarray] = None
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def fit(self, data) -> "KDTreeNeighbors":
        """Build the tree over the rows of ``data``."""
        self._data = as_float_matrix(data, name="data")
        self._root = self._build(np.arange(self._data.shape[0]))
        return self

    def _build(self, indices: np.ndarray) -> _Node:
        if indices.shape[0] <= self.leaf_size:
            return _Node(indices=indices)
        points = self._data[indices]
        spreads = points.max(axis=0) - points.min(axis=0)
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] == 0.0:
            # All remaining points are identical; keep them in one leaf.
            return _Node(indices=indices)
        column = points[:, split_dim]
        split_value = float(np.median(column))
        left_mask = column <= split_value
        # Guard against degenerate splits where the median equals the max.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(column, kind="stable")
            half = indices.shape[0] // 2
            left_mask = np.zeros(indices.shape[0], dtype=bool)
            left_mask[order[:half]] = True
            split_value = float(column[order[half - 1]])
        node = _Node(indices=indices, split_dim=split_dim, split_value=split_value)
        node.left = self._build(indices[left_mask])
        node.right = self._build(indices[~left_mask])
        return node

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        self._check_fitted()
        return self._data.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed points."""
        self._check_fitted()
        return self._data.shape[1]

    def depth(self) -> int:
        """Height of the tree (1 for a single leaf)."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def _check_fitted(self) -> None:
        if self._data is None or self._root is None:
            raise NotFittedError("KDTreeNeighbors must be fitted before querying")

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def kneighbors(
        self,
        query,
        k: int,
        exclude_self: bool = False,
        backend: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Find the ``k`` nearest indexed points for each query.

        Returns ``(distances, indices)`` of shape ``(k,)`` for a single
        query vector or ``(q, k)`` for a batch, ordered by increasing
        distance with ties broken by index so results are deterministic and
        identical to the brute-force backend.

        On the ``"vectorized"`` backend a batch of queries traverses the
        tree together (see the module docstring); the ``"loop"`` backend
        searches one query at a time.
        """
        self._check_fitted()
        k = check_positive_int(k, "k")
        query_array = np.asarray(query, dtype=float)
        single = query_array.ndim == 1
        if single:
            query_array = query_array.reshape(1, -1)
        if query_array.shape[1] != self.n_features:
            raise ConfigurationError(
                f"query has {query_array.shape[1]} attributes, index has {self.n_features}"
            )
        available = self.n_points - (1 if exclude_self else 0)
        if k > available:
            raise ConfigurationError(
                f"requested k={k} neighbours but only {available} are available"
            )

        if backend is not None:
            resolved = resolve_backend(backend)
        elif self.backend is not None:
            resolved = self.backend
        else:
            resolved = resolve_backend(None)

        scale = 1.0 / np.sqrt(self.n_features) if self.metric == "paper_euclidean" else 1.0
        if resolved == "vectorized" and query_array.shape[0] > 1:
            out_dist, out_idx = self._query_batch(query_array, k, exclude_self)
            out_dist = out_dist * scale
        else:
            out_dist = np.empty((query_array.shape[0], k))
            out_idx = np.empty((query_array.shape[0], k), dtype=int)
            for row in range(query_array.shape[0]):
                dist, idx = self._query_single(query_array[row], k, exclude_self)
                out_dist[row] = dist * scale
                out_idx[row] = idx
        if single:
            return out_dist[0], out_idx[0]
        return out_dist, out_idx

    def _query_single(
        self, point: np.ndarray, k: int, exclude_self: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Max-heap of the best k candidates, stored as (-distance, -index) so
        # the worst candidate (largest distance, then largest index) is on top
        # and tie-breaking matches the brute-force lexsort order.
        heap: List[Tuple[float, int]] = []
        budget = k + (1 if exclude_self else 0)

        def consider(index: int, distance: float) -> None:
            entry = (-distance, -index)
            if len(heap) < budget:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        def worst_distance() -> float:
            if len(heap) < budget:
                return np.inf
            return -heap[0][0]

        def visit(node: _Node) -> None:
            if node.is_leaf:
                points = self._data[node.indices]
                diffs = points - point
                distances = np.sqrt(np.sum(diffs * diffs, axis=1))
                for index, distance in zip(node.indices, distances):
                    consider(int(index), float(distance))
                return
            delta = point[node.split_dim] - node.split_value
            near, far = (node.right, node.left) if delta > 0 else (node.left, node.right)
            visit(near)
            if abs(delta) <= worst_distance():
                visit(far)

        visit(self._root)
        candidates = sorted(((-d, -i) for d, i in heap))
        if exclude_self and candidates and candidates[0][0] == 0.0:
            candidates = candidates[1:]
        candidates = candidates[:k]
        distances = np.array([c[0] for c in candidates])
        indices = np.array([c[1] for c in candidates], dtype=int)
        return distances, indices

    def _query_batch(
        self, queries: np.ndarray, k: int, exclude_self: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One traversal for a whole query batch (identical results).

        Every node is visited with the subset of queries whose search
        frontier reaches it: leaves merge a block distance matrix into the
        per-query best-``budget`` candidate lists (row-wise lexsort on
        ``(distance, index)``), internal nodes split the subset by query
        side and prune the far child per query against its current worst
        candidate — exactly the scalar search's bound.
        """
        n = self.n_points
        q = queries.shape[0]
        budget = k + (1 if exclude_self else 0)
        # Sentinel entries: +inf distance with index n sorts after every real
        # candidate, so unfilled slots never displace one.
        cand_dist = np.full((q, budget), np.inf)
        cand_idx = np.full((q, budget), n, dtype=int)

        def merge_leaf(node: _Node, rows: np.ndarray) -> None:
            points = self._data[node.indices]
            diffs = queries[rows][:, None, :] - points[None, :, :]
            distances = np.sqrt(np.einsum("qld,qld->ql", diffs, diffs))
            leaf_idx = np.broadcast_to(node.indices, distances.shape)
            merged_dist = np.hstack([cand_dist[rows], distances])
            merged_idx = np.hstack([cand_idx[rows], leaf_idx])
            order = np.lexsort((merged_idx, merged_dist), axis=1)[:, :budget]
            cand_dist[rows] = np.take_along_axis(merged_dist, order, axis=1)
            cand_idx[rows] = np.take_along_axis(merged_idx, order, axis=1)

        def visit(node: _Node, rows: np.ndarray) -> None:
            if node.is_leaf:
                merge_leaf(node, rows)
                return
            delta = queries[rows, node.split_dim] - node.split_value
            near_is_left = delta <= 0
            for near, far, mask in (
                (node.left, node.right, near_is_left),
                (node.right, node.left, ~near_is_left),
            ):
                group = rows[mask]
                if group.size == 0:
                    continue
                visit(near, group)
                # The far child can only contribute when the splitting plane
                # is at most as far as the query's current worst candidate
                # (ties included, so an equal-distance smaller index can
                # still win — matching the scalar bound).
                keep = np.abs(delta[mask]) <= cand_dist[group, -1]
                if keep.any():
                    visit(far, group[keep])

        visit(self._root, np.arange(q))
        if not exclude_self:
            return cand_dist, cand_idx
        # Drop exactly one zero-distance match per row when present.
        offset = (cand_dist[:, 0] == 0.0).astype(int)
        cols = offset[:, None] + np.arange(k)[None, :]
        return (
            np.take_along_axis(cand_dist, cols, axis=1),
            np.take_along_axis(cand_idx, cols, axis=1),
        )
