"""Pytest bootstrap: make ``src/repro`` importable without an install.

The canonical workflow is ``pip install -e .``; this hook simply keeps the
test and benchmark suites runnable in environments where the editable
install is unavailable (e.g. fully offline machines without ``wheel``).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
