"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import candidate_vote_weights, combine_uniform, combine_voting
from repro.core.learning import learn_individual_models
from repro.data import Relation, inject_missing
from repro.metrics import purity_score, r_squared, rms_error
from repro.neighbors import BruteForceNeighbors, KDTreeNeighbors, paper_euclidean
from repro.regression import IncrementalRidge, RidgeRegression

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def matrices(min_rows=2, max_rows=30, min_cols=1, max_cols=5):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=64),
    )


class TestDistanceProperties:
    @given(matrices(min_rows=2, max_rows=15, min_cols=1, max_cols=4))
    @settings(max_examples=40, deadline=None)
    def test_distances_nonnegative_and_zero_on_self(self, data):
        distances = paper_euclidean(data[0], data)
        assert (distances >= 0).all()
        assert distances[0] == pytest.approx(0.0, abs=1e-9)

    @given(matrices(min_rows=3, max_rows=20, min_cols=1, max_cols=3), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_kdtree_matches_brute_force(self, data, k):
        assume(k <= data.shape[0])
        query = data[0] + 0.5
        brute = BruteForceNeighbors().fit(data)
        tree = KDTreeNeighbors(leaf_size=4).fit(data)
        bd, bi = brute.kneighbors(query, k)
        td, ti = tree.kneighbors(query, k)
        np.testing.assert_allclose(np.sort(bd), np.sort(td), atol=1e-9)
        np.testing.assert_allclose(bd, td, atol=1e-9)

    @given(matrices(min_rows=4, max_rows=20, min_cols=1, max_cols=3))
    @settings(max_examples=30, deadline=None)
    def test_neighbor_distances_monotone_in_k(self, data):
        searcher = BruteForceNeighbors().fit(data)
        dist, _ = searcher.kneighbors(data.mean(axis=0), min(5, data.shape[0]))
        assert (np.diff(dist) >= -1e-12).all()


class TestCombinationProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 10),
                      elements=st.floats(-1e4, 1e4, allow_nan=False, width=64)))
    @settings(max_examples=60, deadline=None)
    def test_voting_weights_are_a_distribution(self, candidates):
        weights = candidate_vote_weights(candidates)
        assert weights.shape == candidates.shape
        assert (weights >= 0).all()
        assert weights.sum() == pytest.approx(1.0)

    @given(hnp.arrays(np.float64, st.integers(1, 10),
                      elements=st.floats(-1e4, 1e4, allow_nan=False, width=64)))
    @settings(max_examples=60, deadline=None)
    def test_combined_value_within_candidate_range(self, candidates):
        for combiner in (combine_voting, combine_uniform):
            value, weights = combiner(candidates)
            assert candidates.min() - 1e-9 <= value <= candidates.max() + 1e-9
            assert weights.sum() == pytest.approx(1.0)

    @given(hnp.arrays(np.float64, st.integers(2, 8),
                      elements=st.floats(-100, 100, allow_nan=False, width=64)),
           st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_voting_translation_equivariance(self, candidates, shift):
        shifted, _ = combine_voting(candidates + shift)
        base, _ = combine_voting(candidates)
        assert shifted == pytest.approx(base + shift, abs=1e-6)


class TestRegressionProperties:
    @given(matrices(min_rows=5, max_rows=25, min_cols=1, max_cols=3))
    @settings(max_examples=40, deadline=None)
    def test_ridge_reproduces_exact_linear_data(self, X):
        coefficients = np.arange(1, X.shape[1] + 2, dtype=float)
        y = coefficients[0] + X @ coefficients[1:]
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        assume(np.linalg.matrix_rank(design) == X.shape[1] + 1)
        # The α = 0 path solves through the pseudo-inverse of the Gram
        # matrix, whose conditioning is the design's squared; keep the
        # exact-reproduction claim to examples where it can hold in float64.
        assume(np.linalg.cond(design) < 1e5)
        model = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-4)

    @given(matrices(min_rows=4, max_rows=20, min_cols=1, max_cols=3),
           st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_incremental_ridge_invariant_to_batching(self, X, n_batches):
        rng = np.random.default_rng(0)
        y = rng.normal(size=X.shape[0])
        whole = IncrementalRidge(n_features=X.shape[1]).partial_fit(X, y)
        batched = IncrementalRidge(n_features=X.shape[1])
        for chunk in np.array_split(np.arange(X.shape[0]), n_batches):
            if chunk.size:
                batched.partial_fit(X[chunk], y[chunk])
        np.testing.assert_allclose(whole.solve(), batched.solve(), atol=1e-6)


class TestMetricProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 30),
                      elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)))
    @settings(max_examples=50, deadline=None)
    def test_rms_zero_iff_identical(self, truth):
        assert rms_error(truth, truth) == 0.0

    @given(hnp.arrays(np.float64, st.integers(2, 30),
                      elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)),
           hnp.arrays(np.float64, st.integers(2, 30),
                      elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)))
    @settings(max_examples=50, deadline=None)
    def test_rms_symmetric(self, a, b):
        size = min(a.shape[0], b.shape[0])
        assert rms_error(a[:size], b[:size]) == pytest.approx(rms_error(b[:size], a[:size]))

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_purity_bounds_and_perfect_case(self, labels):
        labels = np.array(labels)
        assert purity_score(labels, labels) == 1.0
        shuffled = np.zeros_like(labels)
        assert 0.0 < purity_score(labels, shuffled) <= 1.0

    @given(hnp.arrays(np.float64, st.integers(2, 30),
                      elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)))
    @settings(max_examples=50, deadline=None)
    def test_r_squared_of_truth_is_one(self, truth):
        assume(np.std(truth) > 1e-9)
        assert r_squared(truth, truth) == pytest.approx(1.0)


class TestInjectionProperties:
    @given(st.integers(20, 60), st.integers(2, 5), st.floats(0.05, 0.3),
           st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_injection_counts_and_recoverability(self, n, m, fraction, seed):
        rng = np.random.default_rng(seed)
        relation = Relation(rng.normal(size=(n, m)))
        result = inject_missing(relation, fraction=fraction, random_state=seed)
        expected = max(1, int(round(fraction * n)))
        assert len(result) == expected
        # Putting the truth back yields the original matrix.
        restored = result.dirty.values
        restored[result.rows, result.attributes] = result.truth
        np.testing.assert_array_equal(restored, relation.raw)


class TestLearningProperties:
    @given(st.integers(5, 25), st.integers(1, 5), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_individual_models_shape_and_finiteness(self, n, ell, seed):
        assume(ell <= n)
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, 2))
        target = rng.normal(size=n)
        models = learn_individual_models(features, target, ell)
        assert models.parameters.shape == (n, 3)
        assert np.isfinite(models.parameters).all()
