"""Scripted REPL sessions over the in-process transport.

The REPL speaks the same JSONL protocol as any other client, so a
scripted stdin drives the full stack — create, append with missing
markers, multi-line SELECT, provenance, EXPLAIN, promotion — and stdout
stays machine-readable (prompts go to stderr).
"""

import io
import json

import pytest

from repro.api.repl import Repl, _InProcessTransport, run_repl
from repro.exceptions import ReproError


def _run_script(text, tmp_path, session=None):
    transport = _InProcessTransport(str(tmp_path))
    stdout = io.StringIO()
    repl = Repl(
        transport,
        stdin=io.StringIO(text),
        stdout=stdout,
        stderr=io.StringIO(),
        session=session,
    )
    try:
        code = repl.run()
    finally:
        transport.close()
    return code, stdout.getvalue(), repl


SCRIPT = """\
\\create s k=3 learning=fixed learning_neighbors=3
APPEND VALUES (1.0, 2.0, 3.0), (1.1, 2.1, 3.1), (0.9, 1.9, 2.9),
              (1.2, 2.2, 3.2), (1.05, 2.05, 3.05), (0.95, 1.95, 2.95);
APPEND VALUES (1.02, ?, 3.02), (?, 2.12, 3.12);
\\schema
\\sessions
SELECT A1, A2
  WHERE A1 > 0.9
  ORDER BY A2 DESC
  LIMIT 4;
\\provenance
EXPLAIN SELECT count(*), avg(A2);
IMPUTE;
SELECT count(*);
\\quit
"""


class TestScriptedSession:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        return _run_script(SCRIPT, tmp_path_factory.mktemp("repl"))

    def test_exits_cleanly_with_no_typed_errors(self, run):
        code, out, _ = run
        assert code == 0
        assert "error" not in out

    def test_create_schema_and_sessions_render(self, run):
        _, out, _ = run
        assert "session 's' created" in out
        assert "schema of 's': A1, A2, A3 (8 row(s) live)" in out
        assert "* s  kind=online method=IIM" in out

    def test_select_imputes_on_demand_and_renders_rows(self, run):
        _, out, _ = run
        assert "(4 row(s); 8 scanned, 2 row(s) imputed on demand)" in out
        assert "-- 2 cell(s) carry provenance" in out

    def test_provenance_json_carries_the_contract_fields(self, run):
        _, out, repl = run
        provenance = repl.last_result["provenance"]
        # \provenance printed the same payload as JSON
        assert json.dumps(provenance, indent=2) in out
        # but last_result was then replaced by the later SELECT count(*)
        cells = json.loads(
            out[out.index("[\n") : out.index("\n]") + 2]
        )
        assert {(c["row"], c["attribute"]) for c in cells} == {
            (6, "A2"), (7, "A1"),
        }
        for cell in cells:
            for field in ("value", "method", "combination", "k", "neighbors",
                          "distances", "weights", "learning_neighbors",
                          "confidence", "trace_id"):
                assert field in cell, field
            assert cell["method"] == "IIM"
            assert len(cell["neighbors"]) == cell["k"] == 3

    def test_explain_prints_the_plan(self, run):
        _, out, _ = run
        assert '"kind": "aggregate"' in out
        assert '"referenced_attributes"' in out

    def test_impute_promotes_and_counts_stay_consistent(self, run):
        _, out, _ = run
        assert "impute: rows_promoted=2, n_pending=0" in out
        # final count: 6 complete + 2 promoted
        assert "count(*)\n8\n" in out


class TestReplDiscipline:
    def test_statement_without_a_session_is_a_local_error(self, tmp_path):
        code, out, _ = _run_script("SELECT A1;\n", tmp_path)
        assert code == 0
        assert "error [repl]: no session selected" in out

    def test_server_errors_surface_typed_not_raised(self, tmp_path):
        script = (
            "\\create s k=3 learning=fixed learning_neighbors=3\n"
            "APPEND (1.0, 2.0), (1.1, 2.1), (0.9, 1.9), (1.2, 2.2);\n"
            "SELECT A9;\n"
            "SELECT A1;\n"
        )
        code, out, _ = _run_script(script, tmp_path)
        assert code == 0
        assert "error [query]: unknown attribute 'A9'" in out
        assert "(4 row(s); 4 scanned, 0 row(s) imputed on demand)" in out

    def test_unterminated_statement_fails_at_eof(self, tmp_path):
        script = (
            "\\create s k=3 learning=fixed learning_neighbors=3\n"
            "SELECT A1\n"
        )
        code, out, _ = _run_script(script, tmp_path)
        assert code == 1
        assert "unterminated statement at EOF" in out

    def test_unknown_meta_command_is_reported(self, tmp_path):
        code, out, _ = _run_script("\\frobnicate\n\\quit\n", tmp_path)
        assert code == 0
        assert "unknown meta-command \\frobnicate" in out

    def test_help_prints_the_meta_table(self, tmp_path):
        code, out, _ = _run_script("\\help\n", tmp_path)
        assert code == 0
        assert "\\provenance" in out and "\\sessions" in out

    def test_comments_and_blank_lines_are_skipped(self, tmp_path):
        script = "-- a comment\n\n\\sessions\n\\quit\n"
        code, out, _ = _run_script(script, tmp_path)
        assert code == 0
        assert "no live sessions" in out

    def test_bad_connect_spec_is_a_typed_error(self):
        with pytest.raises(ReproError, match="HOST:PORT"):
            run_repl("nonsense")
        with pytest.raises(ReproError, match="HOST:PORT"):
            run_repl(":7000")

    def test_unreachable_server_is_a_typed_error(self):
        with pytest.raises(ReproError, match="cannot connect"):
            run_repl("127.0.0.1:1")
