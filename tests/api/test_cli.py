"""Tests for the consolidated CLI and the deprecated entry-point shim."""

import warnings

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.data import load_dataset
from repro.data.io import read_csv, write_csv
from repro.data.missing import inject_missing


@pytest.fixture
def dirty_csv(tmp_path):
    relation = load_dataset("asf", size=80)
    injection = inject_missing(relation, fraction=0.05, random_state=0)
    path = tmp_path / "dirty.csv"
    write_csv(injection.dirty, path)
    return path


class TestImputeSubcommand:
    def test_imputes_a_csv_end_to_end(self, dirty_csv, tmp_path, capsys):
        out = tmp_path / "clean.csv"
        code = repro_main([
            "impute", str(dirty_csv), "--method", "kNN", "--set", "k=4",
            "--output", str(out),
        ])
        assert code == 0
        assert "imputed" in capsys.readouterr().out
        cleaned = read_csv(out)
        assert cleaned.n_missing_cells == 0

    def test_unknown_method_fails_with_suggestion(self, dirty_csv, capsys):
        code = repro_main(["impute", str(dirty_csv), "--method", "knnn"])
        assert code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_unknown_override_fails_early(self, dirty_csv, capsys):
        code = repro_main([
            "impute", str(dirty_csv), "--method", "kNN", "--set", "neighbors=4",
        ])
        assert code == 2
        assert "neighbors" in capsys.readouterr().err

    def test_complete_relation_is_a_noop(self, tmp_path, capsys):
        relation = load_dataset("sn", size=30)
        path = tmp_path / "complete.csv"
        write_csv(relation, path)
        assert repro_main(["impute", str(path), "--method", "Mean"]) == 0
        assert "nothing to impute" in capsys.readouterr().out


class TestReplaySubcommand:
    def test_forwards_to_the_trace_replay(self, capsys):
        code = repro_main([
            "replay", "--demo", "60", "--dataset", "sn", "--k", "3",
            "--learning", "fixed", "--learning-neighbors", "3",
        ])
        assert code == 0
        assert "store holds" in capsys.readouterr().out

    def test_replay_does_not_warn(self, capsys):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro_main([
                "replay", "--demo", "40", "--dataset", "sn", "--k", "3",
                "--learning", "fixed", "--learning-neighbors", "3",
            ])
        capsys.readouterr()
        assert not [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
        ]


STATEMENT_TRACE = """\
-- a statement trace: data verbs and queries in one script
APPEND VALUES (1.0, 2.0, 3.0), (1.1, 2.1, 3.1), (0.9, 1.9, 2.9),
              (1.2, 2.2, 3.2), (1.05, 2.05, 3.05), (0.95, 1.95, 2.95);
APPEND (1.02, ?, 3.02);
SELECT A1, A2 WHERE A1 > 0.9 ORDER BY A2 DESC LIMIT 3;
UPDATE 0 SET A1 = 1.01;
IMPUTE;
DELETE 1;
SELECT count(*), avg(A1);
"""

MODEL_ARGS = ["--k", "3", "--learning", "fixed", "--learning-neighbors", "3"]


class TestStatementTraceReplay:
    def test_replays_a_statement_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.sql"
        trace.write_text(STATEMENT_TRACE)
        assert repro_main(["replay", str(trace)] + MODEL_ARGS) == 0
        out = capsys.readouterr().out
        assert "replayed 7 statements" in out
        assert "1 imputed on demand)" in out  # the on-demand SELECT
        assert "rows_promoted=1" in out
        assert "store holds 6 tuples (0 pending)" in out

    def test_detection_survives_comments_and_case(self, tmp_path, capsys):
        trace = tmp_path / "trace.sql"
        trace.write_text(
            "-- header comment\n\nappend (1.0, 2.0), (1.5, 2.5);\n",
            encoding="utf-8",
        )
        assert repro_main(["replay", str(trace)] + MODEL_ARGS) == 0
        assert "replayed 1 statements" in capsys.readouterr().out

    def test_plain_csv_is_not_mistaken_for_statements(self, tmp_path, capsys):
        relation = load_dataset("sn", size=40)
        injection = inject_missing(relation, fraction=0.1, random_state=1)
        trace = tmp_path / "rows.csv"
        write_csv(injection.dirty, trace)
        assert repro_main(["replay", str(trace)] + MODEL_ARGS) == 0
        out = capsys.readouterr().out
        assert "store holds" in out and "replayed" not in out

    def test_statement_trace_does_not_warn(self, tmp_path, capsys):
        trace = tmp_path / "trace.sql"
        trace.write_text("APPEND (1.0, 2.0), (2.0, 3.0);\n")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert repro_main(["replay", str(trace)] + MODEL_ARGS) == 0
        capsys.readouterr()
        assert not [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
        ]

    def test_ops_flag_rejects_a_statement_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.sql"
        trace.write_text("IMPUTE;\n")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            code = repro_main(["replay", str(trace), "--ops"] + MODEL_ARGS)
        assert code == 2
        assert "statement" in capsys.readouterr().err


class TestDeprecatedOpsFormat:
    @pytest.fixture
    def ops_csv(self, tmp_path):
        path = tmp_path / "ops.csv"
        path.write_text(
            "op,index,a,b\n"
            "append,,1.0,2.0\n"
            "append,,1.1,2.1\n"
            "append,,0.9,1.9\n"
            "append,,1.2,2.2\n"
            "impute,,1.5,\n"
            "update,0,1.01,2.0\n"
            "delete,1,,\n"
        )
        return path

    def test_ops_replay_warns_exactly_once_and_still_works(
        self, ops_csv, capsys
    ):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code = repro_main(["replay", str(ops_csv), "--ops"] + MODEL_ARGS)
        assert code == 0
        assert "store holds" in capsys.readouterr().out
        deprecations = [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "deprecated" in message
        assert "query statement language" in message


class TestDeprecatedOnlineEntryPoint:
    def test_shim_warns_exactly_once_and_still_works(self, capsys):
        from repro.online.__main__ import main as deprecated_main

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code = deprecated_main([
                "--demo", "40", "--dataset", "sn", "--k", "3",
                "--learning", "fixed", "--learning-neighbors", "3",
            ])
        assert code == 0
        assert "store holds" in capsys.readouterr().out
        deprecations = [
            entry for entry in caught
            if issubclass(entry.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "python -m repro replay" in str(deprecations[0].message)

    def test_shim_produces_identical_results(self, tmp_path, capsys):
        """The shim and the new subcommand replay a trace identically."""
        from repro.online.__main__ import main as deprecated_main

        relation = load_dataset("sn", size=60)
        injection = inject_missing(relation, fraction=0.1, random_state=3)
        trace = tmp_path / "trace.csv"
        write_csv(injection.dirty, trace)
        args = [
            str(trace), "--k", "3", "--learning", "fixed",
            "--learning-neighbors", "3",
        ]
        old_out = tmp_path / "old.csv"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert deprecated_main(args + ["--output", str(old_out)]) == 0
        new_out = tmp_path / "new.csv"
        assert repro_main(["replay"] + args + ["--output", str(new_out)]) == 0
        capsys.readouterr()
        np.testing.assert_array_equal(read_csv(old_out).raw, read_csv(new_out).raw)


class TestRecoverSubcommand:
    @pytest.fixture
    def crashed_wal(self, tmp_path):
        """A WAL left behind by a session that never checkpointed."""
        from repro.api import MutationOp, OnlineSession
        from repro.reliability import WriteAheadLog

        values = load_dataset("sn", size=60).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:40])
        session.mutate([MutationOp.append(values[40:44])])
        session.close()
        return tmp_path / "wal"

    def test_recovers_and_reports(self, crashed_wal, capsys):
        assert repro_main(["recover", str(crashed_wal)]) == 0
        out = capsys.readouterr().out
        assert "replayed 2 WAL op(s)" in out
        assert "44 tuples live" in out

    def test_json_report(self, crashed_wal, capsys):
        import json

        assert repro_main(["recover", str(crashed_wal), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["replayed_ops"] == 2
        assert report["n_tuples"] == 44
        assert report["torn_tail"] is None

    def test_output_writes_checkpoint_and_truncates(self, crashed_wal, tmp_path, capsys):
        from repro.api import restore_session
        from repro.reliability import read_wal

        ckpt = tmp_path / "ckpt"
        assert repro_main([
            "recover", str(crashed_wal), "--output", str(ckpt),
        ]) == 0
        assert "fresh checkpoint" in capsys.readouterr().out
        session = restore_session(ckpt)
        assert session.stats()["n_tuples"] == 44
        state = read_wal(crashed_wal)
        assert state.base_seq == 2 and not state.ops

    def test_missing_wal_dir_fails_cleanly(self, tmp_path, capsys):
        assert repro_main(["recover", str(tmp_path / "nowhere")]) == 2
        assert "no WAL directory" in capsys.readouterr().err


class TestBareInvocation:
    def test_no_subcommand_prints_help(self, capsys):
        assert repro_main([]) == 2
        assert "impute" in capsys.readouterr().out
