"""Unit tests for the dispatch layer: queues, workers, micro-batches.

These drive :class:`~repro.api.scheduling.RequestScheduler` against a
scripted fake server, so ordering, coalescing and backpressure are tested
in isolation from session semantics (which
``test_serve_concurrency.py``/``test_admission.py`` cover end-to-end).
"""

import threading
import time

import pytest

from repro.api.scheduling import (
    PendingRequest,
    RequestScheduler,
    _missing_signature,
)
from repro.exceptions import ProtocolError, ServerOverloadedError


class FakeServer:
    """Records dispatched requests; can block chosen requests on a gate."""

    def __init__(self, max_rows_per_request=None):
        self.max_rows_per_request = max_rows_per_request
        self.handled = []
        self._lock = threading.Lock()
        #: request id -> Event its handler must wait on before answering.
        self.gates = {}

    def handle_request(self, request):
        gate = self.gates.get(request.get("id"))
        if gate is not None:
            assert gate.wait(timeout=10)
        with self._lock:
            self.handled.append(request)
        return {
            "v": 1,
            "id": request.get("id"),
            "ok": True,
            "result": {
                "rows": [list(row) for row in request.get("rows", [])],
                "echo": request.get("id"),
            },
            "trace": "t-fake",
        }


def impute(session, row, request_id=None):
    return {"v": 1, "id": request_id, "cmd": "impute",
            "session": session, "rows": [row]}


def make_scheduler(server, **overrides):
    knobs = dict(workers=2, microbatch_window_ms=0.0,
                 microbatch_max_rows=8, max_queued_requests=16)
    knobs.update(overrides)
    return RequestScheduler(server, **knobs)


class Collector:
    """Thread-safe respond sink that can be waited on."""

    def __init__(self):
        self.responses = []
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)

    def __call__(self, response):
        with self._lock:
            self.responses.append(response)
            self._arrived.notify_all()

    def wait_for(self, count, timeout=10.0):
        deadline = time.monotonic() + timeout
        with self._lock:
            while len(self.responses) < count:
                remaining = deadline - time.monotonic()
                assert remaining > 0, (
                    f"timed out with {len(self.responses)}/{count} responses"
                )
                self._arrived.wait(remaining)
            return list(self.responses)


class TestCoalescingEligibility:
    def test_single_flat_row_impute_is_coalescible(self):
        pending = PendingRequest(impute("s", [1.0, None, 2.0]), lambda r: None)
        assert pending.single_impute_row() == [1.0, None, 2.0]

    def test_singleton_nested_row_is_coalescible(self):
        request = {"cmd": "impute", "session": "s", "rows": [[1.0, None]]}
        pending = PendingRequest(request, lambda r: None)
        assert pending.single_impute_row() == [1.0, None]

    def test_multi_row_batches_are_not_coalesced(self):
        request = {"cmd": "impute", "session": "s",
                   "rows": [[1.0, None], [2.0, None]]}
        assert PendingRequest(request, lambda r: None).single_impute_row() is None

    def test_non_impute_commands_are_not_coalesced(self):
        request = {"cmd": "append", "session": "s", "rows": [1.0, 2.0]}
        assert PendingRequest(request, lambda r: None).single_impute_row() is None

    def test_non_numeric_cells_are_not_coalesced(self):
        for row in ([1.0, "x"], [True, None], [[1.0], None]):
            pending = PendingRequest(impute("s", row), lambda r: None)
            assert pending.single_impute_row() is None, row

    def test_signature_is_width_plus_missing_positions(self):
        assert _missing_signature([1.0, None, 2.0]) == (3, 1)
        assert _missing_signature([None, None]) == (2, 0, 1)
        assert _missing_signature([1.0]) == (1,)
        # Same positions, different width: incompatible.
        assert _missing_signature([None, 1.0]) != _missing_signature(
            [None, 1.0, 2.0]
        )


class TestOrderingAndParallelism:
    def test_one_sessions_requests_answer_in_submission_order(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=4,
                                   microbatch_max_rows=1,
                                   max_queued_requests=128)
        collector = Collector()
        try:
            for i in range(50):
                # Alternate coalescible and not: ordering must hold anyway.
                if i % 3 == 0:
                    request = {"v": 1, "id": i, "cmd": "stats", "session": "s"}
                else:
                    request = impute("s", [float(i), None], request_id=i)
                scheduler.submit(request, collector)
            responses = collector.wait_for(50)
            assert [r["id"] for r in responses] == list(range(50))
        finally:
            scheduler.stop()

    def test_sessions_execute_concurrently(self):
        """A queued session B runs while session A's handler is blocked."""
        server = FakeServer()
        gate = threading.Event()
        server.gates["a"] = gate
        scheduler = make_scheduler(server, workers=2)
        slow, fast = Collector(), Collector()
        try:
            scheduler.submit({"v": 1, "id": "a", "cmd": "stats",
                              "session": "a"}, slow)
            # A's handler stays blocked; B must still be answered.
            scheduler.submit({"v": 1, "id": "b", "cmd": "stats",
                              "session": "b"}, fast)
            fast.wait_for(1, timeout=5.0)
            assert not slow.responses
            gate.set()
            slow.wait_for(1, timeout=5.0)
        finally:
            gate.set()
            scheduler.stop()

    def test_one_worker_per_session_at_a_time(self):
        """Coalescing run state: snapshot never shows a session twice."""
        server = FakeServer()
        scheduler = make_scheduler(server, workers=4, microbatch_max_rows=1,
                                   max_queued_requests=128)
        collector = Collector()
        try:
            for i in range(40):
                scheduler.submit(impute("only", [1.0, None], i), collector)
            collector.wait_for(40)
            assert [r["id"] for r in collector.responses] == list(range(40))
        finally:
            scheduler.stop()


class TestMicroBatching:
    def _queue_behind_gate(self, scheduler, server, requests):
        """Block the worker on a head request so the rest queue up."""
        gate = threading.Event()
        server.gates["head"] = gate
        head = Collector()
        scheduler.submit({"v": 1, "id": "head", "cmd": "stats",
                          "session": "s"}, head)
        # Wait until the worker holds the session (queue drained of head).
        deadline = time.monotonic() + 5.0
        while "s" not in scheduler.snapshot()["active_sessions"]:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        collector = Collector()
        for request in requests:
            scheduler.submit(request, collector)
        gate.set()
        return head, collector

    def test_contiguous_same_pattern_imputes_form_one_batch(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=1)
        requests = [impute("s", [float(i), None], i) for i in range(5)]
        try:
            head, collector = self._queue_behind_gate(
                scheduler, server, requests
            )
            head.wait_for(1)
            responses = collector.wait_for(5)
        finally:
            scheduler.stop()
        batches = [r for r in server.handled if r.get("cmd") == "impute"]
        assert len(batches) == 1
        assert batches[0]["rows"] == [[float(i), None] for i in range(5)]
        # Scatter: every member keeps its own id and gets only its row.
        assert [r["id"] for r in responses] == list(range(5))
        for i, response in enumerate(responses):
            assert response["ok"] is True
            assert response["result"]["rows"] == [[float(i), None]]
            assert response["result"]["imputed_cells"] == 1
            assert response["trace"] == "t-fake"
        snapshot = scheduler.snapshot()
        assert snapshot["microbatch"]["batches"] == 1
        assert snapshot["microbatch"]["rows_coalesced"] == 5
        assert snapshot["microbatch"]["avg_fill"] == 5.0

    def test_different_missing_patterns_split_batches(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=1)
        requests = (
            [impute("s", [float(i), None], i) for i in range(3)]
            + [impute("s", [None, float(i)], 10 + i) for i in range(2)]
        )
        try:
            head, collector = self._queue_behind_gate(
                scheduler, server, requests
            )
            collector.wait_for(5)
        finally:
            scheduler.stop()
        batches = [r for r in server.handled if r.get("cmd") == "impute"]
        assert [len(b["rows"]) for b in batches] == [3, 2]

    def test_batch_respects_microbatch_max_rows(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=1, microbatch_max_rows=3)
        requests = [impute("s", [float(i), None], i) for i in range(7)]
        try:
            head, collector = self._queue_behind_gate(
                scheduler, server, requests
            )
            collector.wait_for(7)
        finally:
            scheduler.stop()
        batches = [r for r in server.handled if r.get("cmd") == "impute"]
        assert [len(b["rows"]) for b in batches] == [3, 3, 1]

    def test_batch_respects_server_row_quota(self):
        """A merged batch must not trip the per-request row quota."""
        server = FakeServer(max_rows_per_request=2)
        scheduler = make_scheduler(server, workers=1, microbatch_max_rows=8)
        requests = [impute("s", [float(i), None], i) for i in range(4)]
        try:
            head, collector = self._queue_behind_gate(
                scheduler, server, requests
            )
            collector.wait_for(4)
        finally:
            scheduler.stop()
        batches = [r for r in server.handled if r.get("cmd") == "impute"]
        assert max(len(b["rows"]) for b in batches) <= 2

    def test_positive_window_waits_for_stragglers(self):
        server = FakeServer()
        scheduler = make_scheduler(
            server, workers=1, microbatch_window_ms=500.0,
            microbatch_max_rows=2,
        )
        collector = Collector()
        try:
            scheduler.submit(impute("s", [1.0, None], "first"), collector)
            scheduler.submit(impute("s", [2.0, None], "second"), collector)
            collector.wait_for(2)
        finally:
            scheduler.stop()
        batches = [r for r in server.handled if r.get("cmd") == "impute"]
        assert [len(b["rows"]) for b in batches] == [2]

    def test_batch_error_scatters_to_every_member(self):
        class FailingServer(FakeServer):
            def handle_request(self, request):
                gate = self.gates.get(request.get("id"))
                if gate is not None:
                    assert gate.wait(timeout=10)
                with self._lock:
                    self.handled.append(request)
                return {"v": 1, "id": None, "ok": False,
                        "error": {"code": "internal", "message": "boom"},
                        "trace": "t-err"}

        server = FailingServer()
        scheduler = make_scheduler(server, workers=1)
        requests = [impute("s", [float(i), None], i) for i in range(3)]
        try:
            head, collector = self._queue_behind_gate(
                scheduler, server, requests
            )
            responses = collector.wait_for(3)
        finally:
            scheduler.stop()
        assert [r["id"] for r in responses] == [0, 1, 2]
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["code"] == "internal"
            assert response["trace"] == "t-err"


class TestBackpressureAndLifecycle:
    def test_full_queue_raises_overloaded_without_enqueueing(self):
        server = FakeServer()
        gate = threading.Event()
        server.gates[0] = gate
        scheduler = make_scheduler(server, workers=1, max_queued_requests=2)
        collector = Collector()
        try:
            # First submit is taken by the worker (blocked on the gate);
            # wait for it so the queue length is deterministic.
            scheduler.submit({"v": 1, "id": 0, "cmd": "stats",
                              "session": "s"}, collector)
            deadline = time.monotonic() + 5.0
            while "s" not in scheduler.snapshot()["active_sessions"]:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            scheduler.submit(impute("s", [1.0, None], 1), collector)
            scheduler.submit(impute("s", [2.0, None], 2), collector)
            with pytest.raises(ServerOverloadedError):
                scheduler.submit(impute("s", [3.0, None], 3), collector)
            assert scheduler.snapshot()["rejected_overloaded"] == 1
            gate.set()
            responses = collector.wait_for(3)
            assert [r["id"] for r in responses] == [0, 1, 2]
        finally:
            gate.set()
            scheduler.stop()

    def test_stop_answers_queued_requests_with_shutdown_error(self):
        server = FakeServer()
        gate = threading.Event()
        server.gates["head"] = gate
        scheduler = make_scheduler(server, workers=1)
        head, queued = Collector(), Collector()
        scheduler.submit({"v": 1, "id": "head", "cmd": "stats",
                          "session": "s"}, head)
        deadline = time.monotonic() + 5.0
        while "s" not in scheduler.snapshot()["active_sessions"]:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        scheduler.submit(impute("s", [1.0, None], "q1"), queued)
        scheduler.submit(impute("s", [2.0, None], "q2"), queued)
        gate.set()
        scheduler.stop()
        responses = queued.wait_for(2, timeout=1.0)
        for response in responses:
            # Either answered normally before stop won the race, or failed
            # with the typed shutdown error — never dropped.
            assert response["ok"] or response["error"]["code"] == "protocol"
        with pytest.raises(ProtocolError):
            scheduler.submit(impute("s", [1.0, None]), queued)

    def test_drain_waits_for_all_queued_work(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=2)
        collector = Collector()
        try:
            for i in range(20):
                scheduler.submit(impute(f"s{i % 3}", [float(i), None], i),
                                 collector)
            assert scheduler.drain(timeout=10.0) is True
            assert len(collector.responses) == 20
        finally:
            scheduler.stop()

    def test_dead_respond_callback_does_not_kill_the_worker(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=1)
        collector = Collector()

        def broken(response):
            raise RuntimeError("client went away")

        try:
            scheduler.submit(impute("s", [1.0, None], "dead"), broken)
            scheduler.submit(impute("s", [2.0, None], "alive"), collector)
            responses = collector.wait_for(1)
            assert responses[0]["id"] == "alive"
        finally:
            scheduler.stop()

    def test_snapshot_shape(self):
        server = FakeServer()
        scheduler = make_scheduler(server, workers=3)
        snapshot = scheduler.snapshot()
        assert snapshot["workers"] == 3
        assert snapshot["started"] is False
        assert snapshot["queued"] == {}
        assert snapshot["queue_depth"] == 0
        assert snapshot["dispatched"] == 0
        assert snapshot["microbatch"]["batches"] == 0
        assert snapshot["microbatch"]["avg_fill"] is None
        collector = Collector()
        try:
            scheduler.submit(impute("s", [1.0, None], 0), collector)
            collector.wait_for(1)
            snapshot = scheduler.snapshot()
            assert snapshot["started"] is True
            assert snapshot["dispatched"] == 1
        finally:
            scheduler.stop()
