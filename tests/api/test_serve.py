"""Tests for the JSONL serve loop: envelope, commands, transports."""

import io
import json
import socket
import threading

import numpy as np
import pytest

from repro.api import SessionServer, encode_rows, serve_stdio, serve_tcp
from repro.data import load_dataset


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=100).raw


@pytest.fixture
def server():
    return SessionServer()


def ask(server, **request):
    request.setdefault("v", 1)
    response = server.handle_line(json.dumps(request))
    return response


def ok(server, **request):
    response = ask(server, **request)
    assert response["ok"], response
    return response["result"]


def fail(server, **request):
    response = ask(server, **request)
    assert not response["ok"], response
    return response["error"]


IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


def create_online(server, values, name="s", n_rows=60):
    ok(server, cmd="create", session=name, config=IIM_CONFIG)
    ok(server, cmd="append", session=name, rows=encode_rows(values[:n_rows]))


class TestEnvelope:
    def test_malformed_json_answers_protocol_error(self, server):
        response = server.handle_line("this is not json")
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol"

    def test_blank_lines_are_skipped(self, server):
        assert server.handle_line("   \n") is None

    def test_id_is_echoed(self, server):
        response = ask(server, id="client-7", cmd="ping")
        assert response["id"] == "client-7"
        assert response["result"]["pong"] is True

    def test_version_mismatch_rejected(self, server):
        error = fail(server, v=99, cmd="ping")
        assert error["code"] == "protocol"
        assert "version" in error["message"]

    def test_unknown_command_lists_available(self, server):
        error = fail(server, cmd="frobnicate")
        assert error["code"] == "protocol"
        assert "impute" in error["message"]

    def test_non_object_request_rejected(self, server):
        assert server.handle_line("[1, 2, 3]")["error"]["code"] == "protocol"


class TestSessionCommands:
    def test_create_append_impute_stats_save_restore(self, server, values, tmp_path):
        result = ok(server, cmd="create", session="s", config=IIM_CONFIG)
        assert result["kind"] == "online"
        assert result["capabilities"]["supports_mutation"] is True

        ok(server, cmd="append", session="s", rows=encode_rows(values[:60]))
        query = [float(cell) for cell in values[70]]
        query[1] = None
        result = ok(server, cmd="impute", session="s", rows=[query])
        assert result["imputed_cells"] == 1
        imputed = result["rows"][0]
        assert all(cell is not None for cell in imputed)

        stats = ok(server, cmd="stats", session="s")
        assert stats["n_tuples"] == 60
        assert stats["counters"]["impute_batches"] == 1
        assert stats["memory"]["n_shards"] >= 1

        path = str(tmp_path / "artifact")
        assert ok(server, cmd="save", session="s", path=path)["path"] == path
        ok(server, cmd="close", session="s")
        restored = ok(server, cmd="restore", session="s2", path=path)
        assert restored["kind"] == "online"
        again = ok(server, cmd="impute", session="s2", rows=[query])
        assert again["rows"][0] == imputed

    def test_full_lifecycle_matches_direct_session(self, server, values):
        """The wire path reproduces what in-process sessions compute."""
        from repro.api import ImputeRequest, MutationOp, OnlineSession

        create_online(server, values)
        ok(server, cmd="update", session="s",
           index=3, row=[float(cell) for cell in values[80]])
        ok(server, cmd="delete", session="s", indices=[0, 5])
        ok(server, cmd="mutate", session="s", ops=[
            {"op": "append", "rows": encode_rows(values[60:70])},
        ])
        query = [float(cell) for cell in values[90]]
        query[0] = None
        wire_result = ok(server, cmd="impute", session="s", rows=[query])

        direct = OnlineSession(k=4, learning="fixed", learning_neighbors=3)
        direct.fit(values[:60])
        direct.mutate([
            MutationOp.update(3, values[80]),
            MutationOp.delete([0, 5]),
            MutationOp.append(values[60:70]),
        ])
        query_values = values[90].copy()
        query_values[0] = np.nan
        expected = direct.impute(ImputeRequest(query_values))
        np.testing.assert_allclose(
            np.asarray(wire_result["rows"], dtype=float), expected, rtol=1e-9
        )

    def test_batch_sessions_serve_table2_methods(self, server, values):
        result = ok(server, cmd="create", session="b",
                    config={"method": "Mean"})
        assert result["kind"] == "batch"
        ok(server, cmd="fit", session="b", rows=encode_rows(values[:50]))
        result = ok(server, cmd="impute", session="b",
                    rows=[[None, float(values[0, 1])]])
        assert result["rows"][0][0] == pytest.approx(values[:50, 0].mean())

    def test_methods_command_lists_capabilities(self, server):
        result = ok(server, cmd="methods")
        by_name = {entry["method"]: entry["capabilities"] for entry in result["methods"]}
        assert len(by_name) == 14
        assert by_name["IIM"]["supports_mutation"] is True
        assert by_name["kNN"]["supports_mutation"] is False

    def test_sessions_command(self, server, values):
        assert ok(server, cmd="sessions")["sessions"] == []
        create_online(server, values, name="alpha")
        listed = ok(server, cmd="sessions")["sessions"]
        assert [entry["session"] for entry in listed] == ["alpha"]


class TestServeErrors:
    def test_unknown_session_is_protocol_error(self, server):
        error = fail(server, cmd="impute", session="ghost", rows=[[None, 1.0]])
        assert error["code"] == "protocol"
        assert "ghost" in error["message"]

    def test_duplicate_create_rejected(self, server, values):
        create_online(server, values)
        error = fail(server, cmd="create", session="s", config=IIM_CONFIG)
        assert error["code"] == "protocol"

    def test_mutation_on_batch_session_maps_to_unsupported(self, server, values):
        ok(server, cmd="create", session="b", config={"method": "Mean"})
        error = fail(server, cmd="append", session="b",
                     rows=encode_rows(values[:5]))
        assert error["code"] == "unsupported"

    def test_impute_on_empty_store_maps_to_not_fitted(self, server):
        ok(server, cmd="create", session="s", config=IIM_CONFIG)
        error = fail(server, cmd="impute", session="s", rows=[[None, 1.0]])
        assert error["code"] == "not_fitted"

    def test_bad_config_maps_to_configuration(self, server):
        error = fail(server, cmd="create", session="s",
                     config={"method": "IIM", "params": {"kk": 3}})
        assert error["code"] == "configuration"
        assert "kk" in error["message"]

    def test_error_does_not_kill_the_loop(self, server, values):
        fail(server, cmd="frobnicate")
        create_online(server, values)
        assert server.running

    def test_artifact_paths_confined_to_the_root(self, values, tmp_path):
        from repro.api import SessionServer

        confined = SessionServer(artifact_root=tmp_path)
        create_online(confined, values)
        ok(confined, cmd="save", session="s", path="inside/artifact")
        assert (tmp_path / "inside" / "artifact" / "manifest.json").exists()
        restored = ok(
            confined, cmd="restore", session="s2", path="inside/artifact"
        )
        assert restored["kind"] == "online"

        for escape in ("../outside", "/etc/elsewhere", "a/../../outside"):
            error = fail(confined, cmd="save", session="s", path=escape)
            assert error["code"] == "protocol", escape
            assert "artifact root" in error["message"]
            error = fail(confined, cmd="restore", session="s3", path=escape)
            assert error["code"] == "protocol", escape

    def test_fit_reports_submitted_and_complete_counts(self, server, values):
        ok(server, cmd="create", session="s", config=IIM_CONFIG)
        rows = encode_rows(values[:4])
        rows[1][0] = None  # one incomplete row is dropped by fit
        result = ok(server, cmd="fit", session="s", rows=rows)
        assert result["n_rows"] == 4
        assert result["n_complete"] == 3
        assert ok(server, cmd="stats", session="s")["n_tuples"] == 3


class TestStdioTransport:
    def test_scripted_session(self, values):
        lines = [
            json.dumps({"v": 1, "id": 1, "cmd": "create", "session": "s",
                        "config": IIM_CONFIG}),
            json.dumps({"v": 1, "id": 2, "cmd": "append", "session": "s",
                        "rows": encode_rows(values[:40])}),
            "",  # blank lines are ignored
            json.dumps({"v": 1, "id": 3, "cmd": "stats", "session": "s"}),
            json.dumps({"v": 1, "id": 4, "cmd": "shutdown"}),
            json.dumps({"v": 1, "id": 5, "cmd": "ping"}),  # after shutdown
        ]
        stdout = io.StringIO()
        code = serve_stdio(io.StringIO("\n".join(lines) + "\n"), stdout)
        assert code == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        # The ping after shutdown is never served.
        assert [response["id"] for response in responses] == [1, 2, 3, 4]
        assert all(response["ok"] for response in responses)
        assert responses[2]["result"]["n_tuples"] == 40


class TestTcpTransport:
    def test_round_trip_over_a_socket(self, values):
        server = SessionServer()
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_tcp, args=("127.0.0.1", 0, server, ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=10)

        with socket.create_connection(("127.0.0.1", server.tcp_port), timeout=10) as conn:
            stream = conn.makefile("rw", encoding="utf-8")
            def ask_tcp(**request):
                request.setdefault("v", 1)
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                return json.loads(stream.readline())

            response = ask_tcp(cmd="create", session="s", config=IIM_CONFIG)
            assert response["ok"], response
            response = ask_tcp(cmd="append", session="s",
                               rows=encode_rows(values[:30]))
            assert response["ok"], response
            query = [float(cell) for cell in values[40]]
            query[0] = None
            response = ask_tcp(cmd="impute", session="s", rows=[query])
            assert response["ok"], response
            assert response["result"]["rows"][0][0] is not None
            response = ask_tcp(cmd="shutdown")
            assert response["ok"], response
        thread.join(timeout=10)
        assert not thread.is_alive()
