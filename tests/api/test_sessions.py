"""API-vs-direct equivalence: the facade must add nothing and change nothing."""

import numpy as np
import pytest

from repro.api import (
    BatchSession,
    ImputeRequest,
    MutationOp,
    OnlineSession,
    SessionConfig,
    create_session,
    restore_session,
)
from repro.baselines import available_methods, make_imputer
from repro.data import Relation, load_dataset
from repro.data.missing import inject_missing
from repro.exceptions import (
    ConfigurationError,
    DataError,
    NotFittedError,
    UnsupportedOperationError,
)
from repro.online import OnlineImputationEngine

#: Seeds for the stochastic methods so direct and session runs coincide.
METHOD_OVERRIDES = {
    "BLR": {"random_state": 0},
    "PMM": {"random_state": 0},
    "IIM": {"k": 5, "stepping": 5, "max_learning_neighbors": 20},
}

ENGINE_PARAMS = dict(k=4, learning="adaptive", stepping=3, max_learning_neighbors=12)


@pytest.fixture(scope="module")
def injection():
    relation = load_dataset("asf", size=150)
    return inject_missing(relation, fraction=0.06, random_state=0)


@pytest.fixture(scope="module")
def stream_values():
    return load_dataset("sn", size=140).raw


class TestBatchSessionEquivalence:
    @pytest.mark.parametrize("method", available_methods())
    def test_bit_identical_to_direct_calls(self, method, injection):
        """Every registry method through a session == calling it directly."""
        overrides = METHOD_OVERRIDES.get(method, {})
        direct = make_imputer(method, **overrides)
        direct_values = direct.fit(injection.dirty).impute(injection.dirty).raw

        session = BatchSession(method, **overrides)
        session_values = session.fit(injection.dirty).impute(injection.dirty)

        np.testing.assert_array_equal(session_values, direct_values)

    def test_impute_accepts_request_array_and_relation(self, injection):
        session = BatchSession("Mean").fit(injection.dirty)
        from_relation = session.impute(injection.dirty)
        from_array = session.impute(injection.dirty.raw.copy())
        from_request = session.impute(ImputeRequest(injection.dirty.raw.copy()))
        np.testing.assert_array_equal(from_relation, from_array)
        np.testing.assert_array_equal(from_relation, from_request)

    def test_save_restore_round_trip(self, injection, tmp_path):
        session = BatchSession("kNN", k=4).fit(injection.dirty)
        expected = session.impute(injection.dirty)
        session.save(tmp_path / "knn")

        restored = BatchSession.restore(tmp_path / "knn")
        np.testing.assert_array_equal(restored.impute(injection.dirty), expected)
        sniffed = restore_session(tmp_path / "knn")
        assert isinstance(sniffed, BatchSession)
        np.testing.assert_array_equal(sniffed.impute(injection.dirty), expected)

    def test_mutation_unsupported(self, injection):
        session = BatchSession("Mean").fit(injection.dirty)
        assert not session.capabilities.supports_mutation
        with pytest.raises(UnsupportedOperationError):
            session.mutate([MutationOp.append(injection.dirty.raw[:1])])

    def test_counters_track_usage(self, injection):
        session = BatchSession("Mean")
        session.fit(injection.dirty)
        session.impute(injection.dirty)
        stats = session.stats()
        assert stats["kind"] == "batch"
        assert stats["counters"]["fits"] == 1
        assert stats["counters"]["impute_requests"] == 1
        assert stats["counters"]["imputed_cells"] == injection.dirty.n_missing_cells

    def test_rejects_unknown_method_and_override(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            BatchSession("knnn")
        with pytest.raises(ConfigurationError, match="unknown override"):
            BatchSession("kNN", neighbors=5)


class TestOnlineSessionEquivalence:
    def test_lifecycle_trace_matches_raw_engine(self, stream_values):
        """append/delete/update/impute/save/restore == the raw engine."""
        values = stream_values
        engine = OnlineImputationEngine(**ENGINE_PARAMS)
        session = OnlineSession(**ENGINE_PARAMS)

        engine.append(values[:80])
        session.fit(values[:80])

        engine.append(values[80:110])
        engine.update(5, values[110])
        engine.delete([0, 17, 44])
        session.mutate([
            MutationOp.append(values[80:110]),
            MutationOp.update(5, values[110]),
            MutationOp.delete([0, 17, 44]),
        ])

        queries = values[110:120].copy()
        queries[:, 0] = np.nan
        queries[::3, 1] = np.nan
        direct_values = engine.impute_batch(queries)
        session_values = session.impute(ImputeRequest(queries))
        np.testing.assert_allclose(
            session_values, direct_values, rtol=1e-9, atol=0
        )
        # Same engine under the facade ⇒ actually bit-identical.
        np.testing.assert_array_equal(session_values, direct_values)

    def test_save_restore_round_trip(self, stream_values, tmp_path):
        session = OnlineSession(**ENGINE_PARAMS)
        session.fit(stream_values[:60])
        queries = stream_values[60:66].copy()
        queries[:, 1] = np.nan
        expected = session.impute(queries)
        session.save(tmp_path / "engine")

        restored = OnlineSession.restore(tmp_path / "engine")
        np.testing.assert_array_equal(restored.impute(queries), expected)
        sniffed = restore_session(tmp_path / "engine")
        assert isinstance(sniffed, OnlineSession)
        np.testing.assert_array_equal(sniffed.impute(queries), expected)

        # The restored session keeps mutating like the original would.
        continued = OnlineSession(**ENGINE_PARAMS)
        continued.fit(stream_values[:60])
        continued.mutate([MutationOp.append(stream_values[66:90])])
        restored.mutate([MutationOp.append(stream_values[66:90])])
        np.testing.assert_allclose(
            restored.impute(queries), continued.impute(queries), rtol=1e-9
        )

    def test_fit_twice_rejected(self, stream_values):
        session = OnlineSession(**ENGINE_PARAMS).fit(stream_values[:40])
        with pytest.raises(ConfigurationError, match="already fitted"):
            session.fit(stream_values[40:60])

    def test_fit_uses_complete_part_only(self, stream_values):
        dirty = stream_values[:40].copy()
        dirty[3, 0] = np.nan
        session = OnlineSession(**ENGINE_PARAMS).fit(dirty)
        assert session.engine.n_tuples == 39

    def test_fit_without_complete_tuples_rejected(self):
        session = OnlineSession(**ENGINE_PARAMS)
        with pytest.raises(DataError):
            session.fit(np.full((3, 2), np.nan))

    def test_impute_before_fit_raises_not_fitted(self, stream_values):
        session = OnlineSession(**ENGINE_PARAMS)
        queries = stream_values[:2].copy()
        queries[:, 0] = np.nan
        with pytest.raises(NotFittedError):
            session.impute(queries)

    def test_stats_surface_engine_counters_and_memory(self, stream_values):
        session = OnlineSession(**ENGINE_PARAMS).fit(stream_values[:50])
        queries = stream_values[50:54].copy()
        queries[:, 1] = np.nan
        session.impute(queries)
        stats = session.stats()
        assert stats["kind"] == "online"
        assert stats["capabilities"]["supports_mutation"]
        assert stats["counters"] == session.engine.stats
        assert stats["memory"] == session.engine.memory_stats()
        assert stats["n_tuples"] == 50

    def test_wrapping_engine_and_kwargs_mutually_exclusive(self):
        engine = OnlineImputationEngine(**ENGINE_PARAMS)
        with pytest.raises(ConfigurationError):
            OnlineSession(engine, k=3)


class TestSessionStatsUniformity:
    def test_same_shape_for_both_kinds(self, injection, stream_values):
        batch = BatchSession("Mean").fit(injection.dirty)
        online = OnlineSession(**ENGINE_PARAMS).fit(stream_values[:40])
        batch_stats, online_stats = batch.stats(), online.stats()
        shared = {
            "protocol", "kind", "method", "capabilities", "fitted",
            "n_tuples", "n_attributes", "counters", "memory",
        }
        assert shared <= set(batch_stats)
        assert shared <= set(online_stats)
        assert batch_stats["protocol"] == online_stats["protocol"] == 1


class TestCreateSession:
    def test_auto_dispatch(self):
        assert isinstance(create_session(method="kNN"), BatchSession)
        assert isinstance(
            create_session(method="IIM", params={"k": 4}), OnlineSession
        )
        assert isinstance(
            create_session(method="IIM", mode="batch", params={"k": 4}),
            BatchSession,
        )

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            create_session(SessionConfig(method="kNN"), method="Mean")

    def test_engine_knobs_forwarded(self):
        session = create_session(
            method="IIM", params={"k": 4},
            engine={"refresh_policy": "eager", "journal_capacity": 32},
        )
        assert session.engine.refresh_policy == "eager"
        assert session.engine.journal_capacity == 32

    def test_restore_session_rejects_unknown_artifacts(self, tmp_path):
        with pytest.raises(ConfigurationError):
            restore_session(tmp_path / "nothing-here")
