"""Malformed-wire-frame fuzzing: every bad frame answers a *typed* error.

A table of hostile request lines — invalid UTF-8, truncated JSON,
wrong-typed commands and operands, ``NaN`` leaking into non-value fields,
ragged and non-list batches — is thrown at one long-lived server.  Each
frame must produce a typed error response (never a traceback, never
``internal`` unless the table says so) and the server must answer a clean
``ping`` immediately afterwards: a serving process outlives every bad
client.
"""

import json
import socket
import threading

import pytest

from repro.api import SessionServer, encode_rows, serve_tcp
from repro.data import load_dataset

#: (case id, raw request line, expected error code, message fragment).
#: ``json.dumps`` is deliberately avoided for the raw lines — the point is
#: what arrives on the wire, including frames ``json.dumps`` cannot make.
MALFORMED_FRAMES = [
    ("truncated-json", '{"v": 1, "cmd": "ping"', "protocol", "malformed JSON"),
    ("bare-word", "ping", "protocol", "malformed JSON"),
    ("invalid-utf8-replaced", '��{"cmd": "ping"}', "protocol",
     "malformed JSON"),
    ("array-request", "[1, 2, 3]", "protocol", "JSON object"),
    ("string-request", '"ping"', "protocol", "JSON object"),
    ("number-request", "42", "protocol", "JSON object"),
    ("null-request", "null", "protocol", "JSON object"),
    ("missing-command", '{"v": 1}', "protocol", "unknown command"),
    ("numeric-command", '{"v": 1, "cmd": 5}', "protocol", "unknown command"),
    ("array-command", '{"v": 1, "cmd": ["impute"]}', "protocol",
     "unknown command"),
    ("unknown-command", '{"v": 1, "cmd": "frobnicate"}', "protocol",
     "unknown command"),
    ("nan-version", '{"v": NaN, "cmd": "ping"}', "protocol", "version"),
    ("string-version", '{"v": "1", "cmd": "ping"}', "protocol", "version"),
    ("nan-session-name", '{"v": 1, "cmd": "stats", "session": NaN}',
     "protocol", "'session' name"),
    ("numeric-session-name", '{"v": 1, "cmd": "stats", "session": 7}',
     "protocol", "'session' name"),
    ("nan-method", '{"v": 1, "cmd": "create", "session": "f", '
     '"config": {"method": NaN}}', "configuration", "unknown imputation"),
    ("unknown-config-field", '{"v": 1, "cmd": "create", "session": "f", '
     '"config": {"method": "IIM", "mode": "online", "wat": 1}}',
     "protocol", "unknown session config"),
    ("config-not-object", '{"v": 1, "cmd": "create", "session": "f", '
     '"config": "IIM"}', "protocol", "must be an object"),
]

#: Frames addressed to a live fitted session ``s`` (so validation reaches
#: the operand decoding, not just the session lookup).
MALFORMED_SESSION_FRAMES = [
    ("rows-not-list", '{"v": 1, "cmd": "impute", "session": "s", '
     '"rows": "oops"}', "protocol", "non-empty list"),
    ("rows-empty", '{"v": 1, "cmd": "impute", "session": "s", "rows": []}',
     "protocol", "non-empty list"),
    ("ragged-rows", '{"v": 1, "cmd": "append", "session": "s", '
     '"rows": [[1.0, 2.0], [3.0]]}', "protocol", "equal length"),
    ("string-cell", '{"v": 1, "cmd": "append", "session": "s", '
     '"rows": [[1.0, "2.0"]]}', "protocol", "number or null"),
    ("bool-cell", '{"v": 1, "cmd": "append", "session": "s", '
     '"rows": [[1.0, true]]}', "protocol", "number or null"),
    ("nan-update-index", '{"v": 1, "cmd": "update", "session": "s", '
     '"index": NaN, "row": [1.0, 2.0]}', "protocol", "integer 'index'"),
    ("bool-update-index", '{"v": 1, "cmd": "update", "session": "s", '
     '"index": true, "row": [1.0, 2.0]}', "protocol", "integer 'index'"),
    ("nan-delete-index", '{"v": 1, "cmd": "delete", "session": "s", '
     '"indices": [NaN]}', "protocol", "integer indices"),
    ("float-delete-index", '{"v": 1, "cmd": "delete", "session": "s", '
     '"indices": [1.5]}', "protocol", "integer indices"),
    ("ops-not-list", '{"v": 1, "cmd": "mutate", "session": "s", '
     '"ops": {"op": "append"}}', "protocol", "non-empty 'ops' list"),
    ("ops-empty", '{"v": 1, "cmd": "mutate", "session": "s", "ops": []}',
     "protocol", "non-empty 'ops' list"),
    ("op-not-object", '{"v": 1, "cmd": "mutate", "session": "s", '
     '"ops": ["append"]}', "protocol", "must be an object"),
    ("op-unknown-kind", '{"v": 1, "cmd": "mutate", "session": "s", '
     '"ops": [{"op": "truncate"}]}', "protocol", "unknown mutation op"),
    ("oversized-append-width", '{"v": 1, "cmd": "append", "session": "s", '
     '"rows": [[1.0, 2.0, 3.0, 4.0, 5.0]]}', "data", "attributes"),
    ("update-many-rows", '{"v": 1, "cmd": "update", "session": "s", '
     '"index": 0, "row": [[1.0, 2.0], [3.0, 4.0]]}', "protocol",
     "exactly one row"),
    ("query-missing-q", '{"v": 1, "cmd": "query", "session": "s"}',
     "protocol", "carrying one statement"),
    ("query-numeric-q", '{"v": 1, "cmd": "query", "session": "s", "q": 5}',
     "protocol", "carrying one statement"),
    ("query-nan-q", '{"v": 1, "cmd": "query", "session": "s", "q": NaN}',
     "protocol", "carrying one statement"),
    ("query-truncated-select", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT"}', "query", "end of statement"),
    ("query-truncated-where", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT A1 WHERE"}', "query", "end of statement"),
    ("query-nan-literal", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT A1 WHERE A1 > NaN"}', "query", "not comparable"),
    ("query-unknown-attribute", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT A9"}', "query", "unknown attribute"),
    ("query-lone-surrogate", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT \\ud800A1"}', "query", "unexpected character"),
    ("query-replacement-char", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT \\ufffdA1"}', "query", "unexpected character"),
    ("query-oversized", '{"v": 1, "cmd": "query", "session": "s", "q": "'
     + "SELECT A1 WHERE A1 > 0 " * 1000 + '"}', "query", "character limit"),
    ("query-foreign-statement", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "DROP TABLE s"}', "query", "must start with"),
    ("query-multi-statement", '{"v": 1, "cmd": "query", "session": "s", '
     '"q": "SELECT A1; SELECT A2;"}', "query", "one at a time"),
]


@pytest.fixture(scope="module")
def fitted_server():
    server = SessionServer()
    values = load_dataset("sn", size=40).raw
    response = server.handle_line(json.dumps({
        "v": 1, "cmd": "create", "session": "s",
        "config": {"method": "IIM", "mode": "online",
                   "params": {"k": 3, "learning": "fixed",
                              "learning_neighbors": 3}},
    }))
    assert response["ok"], response
    response = server.handle_line(json.dumps({
        "v": 1, "cmd": "append", "session": "s",
        "rows": encode_rows(values[:30]),
    }))
    assert response["ok"], response
    return server


def _assert_rejected_then_serving(server, raw, code, fragment):
    response = server.handle_line(raw)
    assert response is not None, f"server swallowed {raw!r}"
    assert response["ok"] is False
    assert response["error"]["code"] == code, response
    assert fragment in response["error"]["message"], response
    ping = server.handle_line('{"v": 1, "cmd": "ping"}')
    assert ping["ok"] and ping["result"]["pong"] is True


@pytest.mark.parametrize(
    "raw, code, fragment",
    [frame[1:] for frame in MALFORMED_FRAMES],
    ids=[frame[0] for frame in MALFORMED_FRAMES],
)
def test_malformed_frames_answer_typed_errors(fitted_server, raw, code, fragment):
    _assert_rejected_then_serving(fitted_server, raw, code, fragment)


@pytest.mark.parametrize(
    "raw, code, fragment",
    [frame[1:] for frame in MALFORMED_SESSION_FRAMES],
    ids=[frame[0] for frame in MALFORMED_SESSION_FRAMES],
)
def test_malformed_operands_answer_typed_errors(
    fitted_server, raw, code, fragment
):
    _assert_rejected_then_serving(fitted_server, raw, code, fragment)


def test_whole_table_leaves_no_session_quarantined(fitted_server):
    """Pure validation failures never degrade the session they target."""
    for _, raw, _, _ in MALFORMED_FRAMES + MALFORMED_SESSION_FRAMES:
        fitted_server.handle_line(raw)
    health = fitted_server.handle_line('{"v": 1, "cmd": "health"}')
    assert health["result"]["degraded"] == []
    assert health["result"]["sessions"]["s"]["state"] == "ok"
    stats = fitted_server.handle_line(
        '{"v": 1, "cmd": "stats", "session": "s"}'
    )
    assert stats["ok"] and stats["result"]["n_tuples"] == 30


def test_raw_invalid_utf8_over_tcp_answers_protocol_error():
    """Undecodable bytes arrive via the real transport's replace decoding."""
    server = SessionServer()
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_tcp, args=("127.0.0.1", 0, server, ready), daemon=True
    )
    thread.start()
    assert ready.wait(10)
    try:
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=10
        ) as conn:
            reader = conn.makefile()
            conn.sendall(b'\xff\xfe\x80{"cmd": "ping"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            conn.sendall(b'{"v": 1, "cmd": "ping"}\n')
            assert json.loads(reader.readline())["result"]["pong"] is True
    finally:
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=10
        ) as conn:
            conn.sendall(b'{"v": 1, "cmd": "shutdown"}\n')
            conn.makefile().readline()
        thread.join(timeout=10)
