"""Tests for the typed message layer and the error taxonomy."""

import numpy as np
import pytest

from repro.api import (
    PROTOCOL_VERSION,
    ImputeRequest,
    MutationOp,
    SessionConfig,
    decode_rows,
    encode_rows,
    error_code,
)
from repro.exceptions import (
    ConfigurationError,
    DataError,
    MissingValueError,
    NotFittedError,
    ProtocolError,
    ReproError,
    SchemaError,
    UnsupportedOperationError,
)


class TestRowCodec:
    def test_nan_round_trips_as_null(self):
        values = np.array([[1.0, np.nan], [np.nan, 4.0]])
        wire = encode_rows(values)
        assert wire == [[1.0, None], [None, 4.0]]
        np.testing.assert_array_equal(decode_rows(wire), values)

    def test_single_row_is_promoted(self):
        decoded = decode_rows([1.0, None, 3.0])
        assert decoded.shape == (1, 3)
        assert np.isnan(decoded[0, 1])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ProtocolError):
            decode_rows([[1.0, 2.0], [3.0]])

    def test_non_numeric_cells_rejected(self):
        with pytest.raises(ProtocolError):
            decode_rows([[1.0, "two"]])
        with pytest.raises(ProtocolError):
            decode_rows([[True, 1.0]])

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_rows([])
        with pytest.raises(ProtocolError):
            decode_rows(None)


class TestImputeRequest:
    def test_counts(self):
        request = ImputeRequest(np.array([[1.0, np.nan], [np.nan, np.nan]]))
        assert request.n_queries == 2
        assert request.n_missing == 3

    def test_wire_round_trip(self):
        request = ImputeRequest(np.array([[1.0, np.nan]]))
        clone = ImputeRequest.from_wire(request.to_wire())
        np.testing.assert_array_equal(clone.values, request.values)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            ImputeRequest(np.empty((0, 3)))

    def test_missing_rows_field_rejected(self):
        with pytest.raises(ProtocolError):
            ImputeRequest.from_wire({"values": [[1.0]]})


class TestMutationOp:
    def test_append_wire_round_trip(self):
        op = MutationOp.append([[1.0, 2.0], [3.0, 4.0]])
        clone = MutationOp.from_wire(op.to_wire())
        assert clone.kind == "append"
        np.testing.assert_array_equal(clone.rows, op.rows)

    def test_delete_wire_round_trip(self):
        op = MutationOp.delete([3, 1, 4])
        clone = MutationOp.from_wire(op.to_wire())
        np.testing.assert_array_equal(clone.indices, [3, 1, 4])

    def test_update_wire_round_trip(self):
        op = MutationOp.update(7, [1.5, 2.5])
        clone = MutationOp.from_wire(op.to_wire())
        assert clone.index == 7
        np.testing.assert_array_equal(clone.row, [1.5, 2.5])

    def test_invalid_ops_rejected(self):
        with pytest.raises(ConfigurationError):
            MutationOp("upsert")
        with pytest.raises(DataError):
            MutationOp.delete([])
        with pytest.raises(ProtocolError):
            MutationOp.from_wire({"op": "delete", "indices": [1.5]})
        with pytest.raises(ProtocolError):
            MutationOp.from_wire({"op": "upsert"})
        with pytest.raises(ProtocolError):
            MutationOp.from_wire({"op": "update", "row": [1.0]})
        # A boolean index and a multi-row payload are client bugs, not data.
        with pytest.raises(ProtocolError):
            MutationOp.from_wire({"op": "update", "index": True, "row": [1.0]})
        with pytest.raises(ProtocolError):
            MutationOp.from_wire(
                {"op": "update", "index": 2, "row": [[1.0, 2.0], [9.0, 9.0]]}
            )


class TestSessionConfig:
    def test_auto_mode_follows_capabilities(self):
        assert SessionConfig(method="IIM").resolved_mode() == "online"
        assert SessionConfig(method="kNN").resolved_mode() == "batch"

    def test_method_name_canonicalised(self):
        assert SessionConfig(method="knn").method == "kNN"

    def test_unknown_method_gets_suggestions(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            SessionConfig(method="knnn")

    def test_online_mode_requires_mutation_capability(self):
        with pytest.raises(ConfigurationError, match="online mode"):
            SessionConfig(method="Mean", mode="online")

    def test_engine_knobs_rejected_for_batch_methods(self):
        with pytest.raises(ConfigurationError, match="engine knobs"):
            SessionConfig(method="kNN", engine={"refresh_policy": "eager"})

    def test_unknown_engine_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine knobs"):
            SessionConfig(method="IIM", engine={"sharding": 4})

    def test_wire_round_trip(self):
        config = SessionConfig(
            method="IIM", mode="online", params={"k": 5},
            engine={"refresh_policy": "eager"},
        )
        clone = SessionConfig.from_wire(config.to_wire())
        assert clone == config

    def test_unknown_wire_fields_rejected(self):
        with pytest.raises(ProtocolError):
            SessionConfig.from_wire({"method": "IIM", "knobs": {}})


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (ProtocolError("x"), "protocol"),
            (UnsupportedOperationError("x"), "unsupported"),
            (ConfigurationError("x"), "configuration"),
            (NotFittedError("x"), "not_fitted"),
            (SchemaError("x"), "schema"),
            (MissingValueError("x"), "missing_value"),
            (DataError("x"), "data"),
            (ReproError("x"), "error"),
            (ValueError("x"), "internal"),
        ],
    )
    def test_stable_codes(self, exc, code):
        assert error_code(exc) == code

    def test_protocol_version_is_one(self):
        assert PROTOCOL_VERSION == 1
