"""Serve-loop containment tests: quarantine, deadlines, bounds, recovery.

The serve loop must contain every failure to the session (or request) that
caused it: a half-applied mutation quarantines *one* session while the rest
keep serving, a slow request answers a typed ``deadline`` error, an
over-long line answers ``protocol`` without buffering unbounded bytes, a
client vanishing mid-line cannot take the handler down, and a server that
died with a WAL recovers over the wire via ``restore``.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import SessionServer, encode_rows, serve_tcp
from repro.api.serve import serve_stdio
from repro.data import load_dataset
from repro.reliability import Fault, FaultPlan

def ask(server, **request):
    request.setdefault("v", 1)
    return server.handle_line(json.dumps(request))


def ok(server, **request):
    response = ask(server, **request)
    assert response["ok"], response
    return response["result"]


def fail(server, **request):
    response = ask(server, **request)
    assert not response["ok"], response
    return response["error"]


IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


def create_online(server, values, name="s", n_rows=60):
    ok(server, cmd="create", session=name, config=IIM_CONFIG)
    ok(server, cmd="append", session=name, rows=encode_rows(values[:n_rows]))


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=120).raw


def _query(values, row=70):
    query = [float(cell) for cell in values[row]]
    query[1] = None
    return query


class TestQuarantine:
    def test_half_applied_mutate_quarantines_only_that_session(
        self, values
    ):
        server = SessionServer()
        create_online(server, values, name="bad")
        create_online(server, values, name="good")

        # Op 1 applies, op 2 is rejected by the engine: the batch is torn.
        error = fail(server, cmd="mutate", session="bad", ops=[
            {"op": "append", "rows": encode_rows(values[60:64])},
            {"op": "delete", "indices": [10_000]},
        ])
        assert error["code"] == "quarantined"
        assert "mid-mutation" in error["message"]

        # Every further command on the torn session answers `quarantined`...
        for request in (
            {"cmd": "impute", "session": "bad", "rows": [_query(values)]},
            {"cmd": "append", "session": "bad", "rows": encode_rows(values[:2])},
            {"cmd": "stats", "session": "bad"},
        ):
            assert fail(server, **request)["code"] == "quarantined"

        # ...while the untouched session keeps serving.
        result = ok(server, cmd="impute", session="good", rows=[_query(values)])
        assert all(cell is not None for cell in result["rows"][0])

        health = ok(server, cmd="health")
        assert health["degraded"] == ["bad"]
        assert health["sessions"]["bad"]["state"] == "degraded"
        assert health["sessions"]["good"]["state"] == "ok"

        # Closing the quarantined session clears the mark for its name.
        ok(server, cmd="close", session="bad")
        assert ok(server, cmd="health")["degraded"] == []
        create_online(server, values, name="bad", n_rows=20)
        ok(server, cmd="impute", session="bad", rows=[_query(values)])

    def test_clean_rejection_before_any_op_does_not_quarantine(self, values):
        server = SessionServer()
        create_online(server, values)
        error = fail(server, cmd="delete", session="s", indices=[10_000])
        assert error["code"] == "configuration"
        assert ok(server, cmd="health")["degraded"] == []
        ok(server, cmd="impute", session="s", rows=[_query(values)])

    def test_wal_write_failure_quarantines_durable_session(
        self, values, tmp_path
    ):
        # The 4th WAL frame dies with an I/O error: the engine applied the
        # op but its durability record did not land, so the in-memory and
        # on-disk views disagree — quarantine.
        plan = FaultPlan([Fault("wal.frame", "io_error", hit=4)])
        server = SessionServer(wal_root=tmp_path, fault_injector=plan)
        create_online(server, values, name="durable")  # frames 1 (fit) ...
        ok(server, cmd="append", session="durable",
           rows=encode_rows(values[60:62]))  # frame 2
        create_online(server, values, name="other")  # frame 3 (its fit)
        error = fail(server, cmd="append", session="durable",
                     rows=encode_rows(values[62:64]))  # frame 4 dies
        assert error["code"] == "quarantined"
        assert "OSError" in error["message"]
        # Containment: the sibling durable session still accepts mutations.
        ok(server, cmd="append", session="other", rows=encode_rows(values[64:66]))


class TestDeadline:
    def test_slow_request_answers_deadline_error(self):
        plan = FaultPlan([Fault("serve.dispatch", "slow", delay=0.4, hit=1)])
        server = SessionServer(deadline_seconds=0.05, fault_injector=plan)
        error = fail(server, cmd="ping")
        assert error["code"] == "deadline"
        assert "0.05" in error["message"]
        # The overrunning worker finishes in the background holding the
        # lock; once it drains, the loop serves again.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            response = ask(server, cmd="ping")
            if response["ok"]:
                break
            time.sleep(0.05)
        assert response["ok"], response

    def test_fast_requests_unaffected_by_deadline(self, values):
        server = SessionServer(deadline_seconds=5.0)
        create_online(server, values, n_rows=30)
        result = ok(server, cmd="impute", session="s", rows=[_query(values)])
        assert all(cell is not None for cell in result["rows"][0])


class TestRequestBounds:
    def test_oversized_line_answers_protocol_error(self, values):
        server = SessionServer(max_request_bytes=200)
        big = json.dumps({
            "v": 1, "cmd": "append", "session": "s",
            "rows": encode_rows(values[:40]),
        })
        assert len(big.encode()) > 200
        response = server.handle_line(big)
        assert response["error"]["code"] == "protocol"
        assert "max_request_bytes" in response["error"]["message"]
        assert ask(server, cmd="ping")["ok"]

    def test_stdio_drains_oversized_line_and_keeps_serving(self):
        import io

        server = SessionServer(max_request_bytes=64)
        oversized = '{"v": 1, "cmd": "ping", "pad": "' + "x" * 500 + '"}'
        stdin = io.StringIO(oversized + "\n" + '{"v": 1, "cmd": "ping"}\n')
        stdout = io.StringIO()
        serve_stdio(stdin, stdout, server=server)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert len(responses) == 2
        assert responses[0]["error"]["code"] == "protocol"
        assert responses[1]["result"]["pong"] is True


def _tcp_server(**kwargs):
    server = SessionServer(**kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_tcp, args=("127.0.0.1", 0, server, ready), daemon=True
    )
    thread.start()
    assert ready.wait(10)
    return server, thread


def _tcp_ask(port, request):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
        conn.sendall((json.dumps(request) + "\n").encode())
        return json.loads(conn.makefile().readline())


class TestTcpHardening:
    def test_midline_disconnect_leaves_server_serving(self):
        server, thread = _tcp_server()
        try:
            # A client dies mid-line: the torn frame is discarded quietly.
            with socket.create_connection(
                ("127.0.0.1", server.tcp_port), timeout=10
            ) as conn:
                conn.sendall(b'{"v": 1, "cmd": "pi')
            response = _tcp_ask(server.tcp_port, {"v": 1, "cmd": "ping"})
            assert response["result"]["pong"] is True
        finally:
            _tcp_ask(server.tcp_port, {"v": 1, "cmd": "shutdown"})
            thread.join(timeout=10)

    def test_oversized_tcp_line_answers_error_and_connection_survives(self):
        server, thread = _tcp_server(max_request_bytes=64)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.tcp_port), timeout=10
            ) as conn:
                reader = conn.makefile()
                conn.sendall(b'{"v": 1, "pad": "' + b"x" * 400 + b'"}\n')
                response = json.loads(reader.readline())
                assert response["error"]["code"] == "protocol"
                assert "max_request_bytes" in response["error"]["message"]
                conn.sendall(b'{"v": 1, "cmd": "ping"}\n')
                assert json.loads(reader.readline())["result"]["pong"] is True
        finally:
            _tcp_ask(server.tcp_port, {"v": 1, "cmd": "shutdown"})
            thread.join(timeout=10)

    def test_join_timeout_reports_wedged_accept_loop(self, monkeypatch):
        from repro.api import serve as serve_mod

        release = threading.Event()
        original = serve_mod._ThreadingTCPServer.serve_forever

        def wedged(self, poll_interval=0.5):
            original(self, poll_interval)
            release.wait(10)  # pretend the loop cannot exit

        monkeypatch.setattr(serve_mod._ThreadingTCPServer, "serve_forever", wedged)
        server = SessionServer()
        ready = threading.Event()
        outcome = {}

        def run():
            try:
                serve_tcp("127.0.0.1", 0, server, ready, join_timeout=0.1)
            except RuntimeError as exc:
                outcome["error"] = str(exc)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:
            _tcp_ask(server.tcp_port, {"v": 1, "cmd": "shutdown"})
            thread.join(timeout=10)
            assert "still alive" in outcome.get("error", "")
        finally:
            release.set()


class TestHealth:
    def test_health_reports_wal_lag_and_checkpoint_age(self, values, tmp_path):
        server = SessionServer(
            artifact_root=tmp_path / "artifacts", wal_root=tmp_path / "wal"
        )
        result = ok(server, cmd="create", session="s", config=IIM_CONFIG)
        assert result["durable"] is True
        ok(server, cmd="append", session="s", rows=encode_rows(values[:40]))

        entry = ok(server, cmd="health")["sessions"]["s"]
        assert entry["state"] == "ok"
        assert entry["wal"]["sync"] == "batch"
        assert entry["wal"]["lag_records"] == 1  # the fit append
        assert entry["last_checkpoint_age_seconds"] is None

        ok(server, cmd="save", session="s", path="ckpt")
        entry = ok(server, cmd="health")["sessions"]["s"]
        assert entry["wal"]["lag_records"] == 0  # checkpoint truncated it
        assert entry["last_checkpoint_age_seconds"] >= 0.0

        health = ok(server, cmd="health")
        assert health["status"] == "serving"
        assert health["uptime_seconds"] >= 0.0
        ok(server, cmd="shutdown")

    def test_sessions_without_wal_report_no_wal_entry(self, values):
        server = SessionServer()
        create_online(server, values, n_rows=20)
        entry = ok(server, cmd="health")["sessions"]["s"]
        assert "wal" not in entry
        assert ok(server, cmd="sessions")["sessions"][0]["durable"] is False


class TestWireRecovery:
    def test_crashed_server_recovers_over_the_wire(self, values, tmp_path):
        """Kill a durable server mid-stream; a fresh one replays the WAL."""
        wal_root = tmp_path / "wal"
        crashed = SessionServer(
            artifact_root=tmp_path / "artifacts", wal_root=wal_root
        )
        ok(crashed, cmd="create", session="s", config=IIM_CONFIG)
        ok(crashed, cmd="append", session="s", rows=encode_rows(values[:60]))
        ok(crashed, cmd="save", session="s", path="ckpt")
        ok(crashed, cmd="append", session="s", rows=encode_rows(values[60:66]))
        ok(crashed, cmd="update", session="s", index=3,
           row=[float(cell) for cell in values[80]])
        query = _query(values)
        want = ok(crashed, cmd="impute", session="s", rows=[query])["rows"][0]
        # The server "dies" here: no close, no shutdown — the WAL's batch
        # sync already flushed every accepted mutation.

        server = SessionServer(
            artifact_root=tmp_path / "artifacts", wal_root=wal_root
        )
        result = ok(server, cmd="restore", session="s", path="ckpt")
        assert result["durable"] is True
        assert result["recovered"]["replayed_ops"] == 2
        assert result["recovered"]["torn_tail"] is None
        got = ok(server, cmd="impute", session="s", rows=[query])["rows"][0]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

        # The recovered session is durable again: mutations keep logging.
        ok(server, cmd="append", session="s", rows=encode_rows(values[66:68]))
        assert ok(server, cmd="health")["sessions"]["s"]["wal"]["lag_records"] > 0
        ok(server, cmd="shutdown")

    def test_create_refuses_to_shadow_an_existing_wal(self, values, tmp_path):
        wal_root = tmp_path / "wal"
        crashed = SessionServer(wal_root=wal_root)
        create_online(crashed, values, n_rows=30)

        server = SessionServer(wal_root=wal_root)
        error = fail(server, cmd="create", session="s", config=IIM_CONFIG)
        assert error["code"] == "protocol"
        assert "restore" in error["message"]
        # `restore` without a checkpoint is impossible here (the WAL holds
        # everything), so wire clients recover via WAL-only restore too:
        # remove the table entry path and go through recover_session.
        from repro.api import recover_session

        recovered, report = recover_session(wal_root / "s", reattach=False)
        assert report["replayed_ops"] == 1
        assert recovered.engine.store_relation().raw.shape[0] == 30
