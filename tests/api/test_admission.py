"""Admission-control tests: quotas, backpressure and token auth.

Every rejection is a *typed* wire error (``quota`` / ``overloaded`` /
``auth``) raised before any session state changes, so a client that trips
a limit can correct itself and resubmit without wondering what happened
server-side.
"""

import json
import threading
import time

import pytest

from repro.api import SessionServer, encode_rows
from repro.data import load_dataset

IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=120).raw


def ask(server, **request):
    request.setdefault("v", 1)
    return server.handle_line(json.dumps(request))


def ok(server, **request):
    response = ask(server, **request)
    assert response["ok"], response
    return response["result"]


def fail(server, **request):
    response = ask(server, **request)
    assert not response["ok"], response
    return response["error"]


def query_row(values, index):
    row = [float(cell) for cell in values[index]]
    row[1] = None
    return row


class TestRowQuota:
    def test_oversized_impute_and_mutations_answer_quota(self, values):
        server = SessionServer(max_rows_per_request=4)
        ok(server, cmd="create", session="s", config=IIM_CONFIG)
        ok(server, cmd="append", session="s", rows=encode_rows(values[:4]))

        five = encode_rows(values[10:15])
        for request in (
            dict(cmd="append", session="s", rows=five),
            dict(cmd="fit", session="s", rows=five),
            dict(cmd="impute", session="s",
                 rows=[query_row(values, 20 + i) for i in range(5)]),
            dict(cmd="mutate", session="s",
                 ops=[{"op": "append", "rows": five}]),
        ):
            error = fail(server, **request)
            assert error["code"] == "quota", request["cmd"]
            assert "per-request quota" in error["message"]

        # The rejections changed nothing: the store still has 4 tuples
        # and requests at the quota still succeed.
        assert ok(server, cmd="stats", session="s")["n_tuples"] == 4
        ok(server, cmd="append", session="s", rows=encode_rows(values[4:8]))
        result = ok(server, cmd="impute", session="s",
                    rows=[query_row(values, 20 + i) for i in range(4)])
        assert len(result["rows"]) == 4
        server.close_sessions()

    def test_config_reports_the_quota(self):
        server = SessionServer(max_rows_per_request=4, max_sessions=2)
        config = ok(server, cmd="health")["config"]
        assert config["max_rows_per_request"] == 4
        assert config["max_sessions"] == 2
        assert config["auth"] is False
        server.close_sessions()


class TestSessionQuota:
    def test_max_sessions_bounds_create_and_frees_on_close(self, values):
        server = SessionServer(max_sessions=2)
        ok(server, cmd="create", session="a", config=IIM_CONFIG)
        ok(server, cmd="create", session="b", config=IIM_CONFIG)
        error = fail(server, cmd="create", session="c", config=IIM_CONFIG)
        assert error["code"] == "quota"
        assert "max_sessions" in error["message"]
        # The rejected session never joined the table.
        names = [
            entry["session"]
            for entry in ok(server, cmd="sessions")["sessions"]
        ]
        assert sorted(names) == ["a", "b"]

        ok(server, cmd="close", session="a")
        ok(server, cmd="create", session="c", config=IIM_CONFIG)
        server.close_sessions()

    def test_restore_counts_against_the_quota(self, values, tmp_path):
        server = SessionServer(max_sessions=1)
        ok(server, cmd="create", session="a", config=IIM_CONFIG)
        ok(server, cmd="append", session="a", rows=encode_rows(values[:20]))
        path = str(tmp_path / "artifact")
        ok(server, cmd="save", session="a", path=path)
        error = fail(server, cmd="restore", session="b", path=path)
        assert error["code"] == "quota"
        server.close_sessions()


class TestBackpressure:
    def test_full_queue_answers_overloaded_inline(self, values):
        server = SessionServer(workers=1, max_queued_requests=1)
        ok(server, cmd="create", session="s", config=IIM_CONFIG)
        ok(server, cmd="append", session="s", rows=encode_rows(values[:30]))

        from repro.reliability import Fault, FaultPlan
        plan = FaultPlan([Fault("serve.dispatch", "slow", delay=0.8, hit=1)])
        server.fault_injector = plan

        responses = []
        done = threading.Event()

        def respond(response):
            responses.append(response)
            if len(responses) == 2:
                done.set()

        line = json.dumps({"v": 1, "cmd": "impute", "session": "s",
                           "rows": [query_row(values, 40)]})
        assert server.submit_line(line, respond)
        # Wait until the first request occupies the worker, so the queue
        # length below is deterministic.
        deadline = time.monotonic() + 5.0
        while plan.hits("serve.dispatch") < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert server.submit_line(line, respond)  # fills the queue
        rejected = []
        assert server.submit_line(line, rejected.append)
        assert rejected[0]["ok"] is False
        assert rejected[0]["error"]["code"] == "overloaded"
        assert "back off" in rejected[0]["error"]["message"]

        assert done.wait(timeout=10)
        assert all(r["ok"] for r in responses)
        assert server.scheduler.snapshot()["rejected_overloaded"] == 1
        server.close_sessions()


class TestTokenAuth:
    def test_requests_without_the_token_answer_auth(self, values):
        server = SessionServer(auth_token="sesame")
        for request in (
            dict(cmd="ping"),
            dict(cmd="create", session="s", config=IIM_CONFIG),
        ):
            error = fail(server, **request)
            assert error["code"] == "auth", request
            error = fail(server, token="wrong", **request)
            assert error["code"] == "auth", request

        result = ok(server, cmd="ping", token="sesame")
        assert result["pong"] is True
        ok(server, cmd="create", session="s", config=IIM_CONFIG,
           token="sesame")
        # The config block advertises that auth is on — never the secret.
        health = ok(server, cmd="health", token="sesame")
        assert health["config"]["auth"] is True
        assert "sesame" not in json.dumps(health)
        server.close_sessions()

    def test_coalesced_imputes_carry_the_members_token(self, values):
        """The synthetic micro-batch must pass the handler's auth re-check."""
        server = SessionServer(auth_token="sesame", workers=1,
                               microbatch_max_rows=8)
        ok(server, cmd="create", session="s", config=IIM_CONFIG,
           token="sesame")
        ok(server, cmd="append", session="s", rows=encode_rows(values[:30]),
           token="sesame")
        responses = []
        arrived = threading.Event()

        def respond(response):
            responses.append(response)
            if len(responses) == 6:
                arrived.set()

        for i in range(6):
            line = json.dumps({"v": 1, "id": i, "cmd": "impute",
                               "session": "s", "token": "sesame",
                               "rows": [query_row(values, 40 + i)]})
            assert server.submit_line(line, respond)
        assert arrived.wait(timeout=10)
        assert all(r["ok"] for r in responses), responses
        server.close_sessions()

    def test_submit_line_rejects_before_enqueueing(self):
        server = SessionServer(auth_token="sesame")
        responses = []
        line = json.dumps({"v": 1, "cmd": "stats", "session": "s"})
        assert server.submit_line(line, responses.append)
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "auth"
        # Nothing reached the scheduler: the rejection answered inline.
        assert server.scheduler.snapshot()["started"] is False
        server.close_sessions()


class TestStatsAndHealthSurfaces:
    def test_scheduler_sections_and_microbatch_counters(self, values):
        server = SessionServer(workers=2, microbatch_max_rows=8)
        ok(server, cmd="create", session="s", config=IIM_CONFIG)
        ok(server, cmd="append", session="s", rows=encode_rows(values[:30]))

        collector = []
        arrived = threading.Event()

        def respond(response):
            collector.append(response)
            if len(collector) == 6:
                arrived.set()

        for i in range(6):
            line = json.dumps({"v": 1, "id": i, "cmd": "impute",
                               "session": "s",
                               "rows": [query_row(values, 40 + i)]})
            assert server.submit_line(line, respond)
        assert arrived.wait(timeout=10)
        assert all(r["ok"] for r in collector)

        stats = ok(server, cmd="stats", session="s")
        scheduler = stats["server"]["scheduler"]
        assert scheduler["workers"] == 2
        assert scheduler["started"] is True
        assert scheduler["dispatched"] >= 6
        microbatch = scheduler["microbatch"]
        assert microbatch["max_rows"] == 8
        if microbatch["batches"]:
            assert microbatch["rows_coalesced"] >= microbatch["batches"]
            assert microbatch["avg_fill"] >= 1.0

        health = ok(server, cmd="health")
        assert health["scheduler"]["queue_depth"] == 0
        assert health["degraded"] == []
        assert health["abandoned"] == {}
        config = health["config"]
        for knob in ("serve_workers", "microbatch_window_ms",
                     "microbatch_max_rows", "max_rows_per_request",
                     "max_sessions", "max_queued_requests", "auth"):
            assert knob in config, knob
        server.close_sessions()
