"""End-to-end concurrency tests for the serve stack.

The contracts of the multi-tenant refactor:

* one session's requests answer in submission order, across transports;
* distinct sessions make progress concurrently — a slow request on one
  session must not stall another session's p95 latency;
* micro-batch coalescing is a transparent optimisation: coalesced
  responses match sequential dispatch within rtol 1e-9;
* a deadline-abandoned worker degrades only its own session (reported by
  ``health``) while every other session keeps serving.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import SessionServer, encode_rows, serve_tcp
from repro.data import load_dataset
from repro.reliability import Fault, FaultPlan

IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=160).raw


def setup_session(server, values, name, n_rows=60):
    for request in (
        {"v": 1, "cmd": "create", "session": name, "config": IIM_CONFIG},
        {"v": 1, "cmd": "append", "session": name,
         "rows": encode_rows(values[:n_rows])},
    ):
        response = server.handle_line(json.dumps(request))
        assert response["ok"], response


def query_row(values, index, blank=1):
    row = [float(cell) for cell in values[index]]
    row[blank] = None
    return row


class Collector:
    def __init__(self):
        self.responses = []
        self._cond = threading.Condition()

    def __call__(self, response):
        with self._cond:
            self.responses.append(response)
            self._cond.notify_all()

    def wait_for(self, count, timeout=30.0):
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.responses) < count:
                remaining = deadline - time.monotonic()
                assert remaining > 0, (
                    f"timed out with {len(self.responses)}/{count} responses"
                )
                self._cond.wait(remaining)
            return list(self.responses)


class TestTcpConcurrentClients:
    def test_n_clients_m_sessions_ordered_and_correct(self, values):
        """4 threaded TCP clients, one session each, pipelined imputes."""
        server = SessionServer(workers=4)
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_tcp, args=("127.0.0.1", 0, server, ready),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        n_clients, n_requests = 4, 25
        errors = []
        rows_by_client = {}

        def client(index):
            try:
                with socket.create_connection(
                    ("127.0.0.1", server.tcp_port), timeout=30
                ) as conn:
                    stream = conn.makefile("rw", encoding="utf-8")
                    name = f"tcp-{index}"

                    def send(**request):
                        request.setdefault("v", 1)
                        stream.write(json.dumps(request) + "\n")
                    send(cmd="create", session=name, config=IIM_CONFIG)
                    send(cmd="append", session=name,
                         rows=encode_rows(values[:50]))
                    width = values.shape[1]
                    for i in range(n_requests):
                        send(id=i, cmd="impute", session=name,
                             rows=[query_row(values, 60 + i, index % width)])
                    stream.flush()
                    responses = [
                        json.loads(stream.readline())
                        for _ in range(2 + n_requests)
                    ]
                for response in responses:
                    assert response["ok"], response
                # Pipelined responses come back in submission order.
                assert [r["id"] for r in responses[2:]] == list(
                    range(n_requests)
                )
                rows_by_client[index] = [
                    r["result"]["rows"][0] for r in responses[2:]
                ]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((index, exc))

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(n_clients)
        ]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=60)
        try:
            assert not errors, errors
            assert sorted(rows_by_client) == list(range(n_clients))
            for rows in rows_by_client.values():
                assert all(
                    cell is not None for row in rows for cell in row
                )
        finally:
            with socket.create_connection(
                ("127.0.0.1", server.tcp_port), timeout=10
            ) as conn:
                stream = conn.makefile("rw", encoding="utf-8")
                stream.write(json.dumps({"v": 1, "cmd": "shutdown"}) + "\n")
                stream.flush()
                assert json.loads(stream.readline())["ok"]
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_coalesced_responses_match_sequential_dispatch(self, values):
        """The micro-batcher is a transparent optimisation (rtol 1e-9)."""
        queries = [query_row(values, 70 + i) for i in range(24)]

        sequential = SessionServer()
        setup_session(sequential, values, "s")
        expected = []
        for i, row in enumerate(queries):
            response = sequential.handle_line(json.dumps(
                {"v": 1, "id": i, "cmd": "impute", "session": "s",
                 "rows": [row]}
            ))
            assert response["ok"], response
            expected.append(response["result"]["rows"][0])
        sequential.close_sessions()

        coalesced = SessionServer(workers=2, microbatch_max_rows=16)
        setup_session(coalesced, values, "s")
        collector = Collector()
        for i, row in enumerate(queries):
            accepted = coalesced.submit_line(json.dumps(
                {"v": 1, "id": i, "cmd": "impute", "session": "s",
                 "rows": [row]}
            ), collector)
            assert accepted
        responses = collector.wait_for(len(queries))
        snapshot = coalesced.scheduler.snapshot()
        coalesced.close_sessions()

        assert [r["id"] for r in responses] == list(range(len(queries)))
        got = [r["result"]["rows"][0] for r in responses]
        np.testing.assert_allclose(
            np.asarray(got, dtype=float),
            np.asarray(expected, dtype=float),
            rtol=1e-9, atol=1e-12,
        )
        # The pipelined submits really did coalesce into batched calls.
        assert snapshot["microbatch"]["batches"] >= 1
        assert snapshot["microbatch"]["rows_coalesced"] >= 2


class TestCrossSessionIsolation:
    def _latencies(self, server, session, queries, start_id=0):
        latencies = []
        for i, row in enumerate(queries):
            done = threading.Event()
            out = []

            def respond(response, out=out, done=done):
                out.append(response)
                done.set()

            line = json.dumps({"v": 1, "id": start_id + i, "cmd": "impute",
                               "session": session, "rows": [row]})
            started = time.perf_counter()
            assert server.submit_line(line, respond)
            assert done.wait(timeout=30)
            latencies.append(time.perf_counter() - started)
            assert out[0]["ok"], out[0]
        return latencies

    def test_slow_request_does_not_stall_other_sessions(self, values):
        """p95 of a fast session stays bounded while another is wedged."""
        server = SessionServer(workers=4)
        setup_session(server, values, "fast")
        setup_session(server, values, "slow")
        queries = [query_row(values, 70 + i) for i in range(30)]
        # Warm, then measure solo latencies with no contention.
        self._latencies(server, "fast", queries[:5])
        solo = self._latencies(server, "fast", queries, start_id=100)

        plan = FaultPlan([
            Fault("serve.dispatch", "slow", delay=2.0, hit=1),
        ])
        server.fault_injector = plan
        slow_done = Collector()
        assert server.submit_line(json.dumps(
            {"v": 1, "id": "wedge", "cmd": "impute", "session": "slow",
             "rows": [query_row(values, 65)]}
        ), slow_done)
        # Wait until the slow request is actually executing (the fault
        # site fires, and sleeps, inside the dispatch).
        deadline = time.monotonic() + 5.0
        while plan.hits("serve.dispatch") < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)

        contended = self._latencies(server, "fast", queries, start_id=200)
        assert not slow_done.responses, (
            "the slow request finished before the contended run — "
            "lengthen the injected delay"
        )
        slow_done.wait_for(1)
        server.close_sessions()

        p95_solo = float(np.percentile(solo, 95))
        p95_contended = float(np.percentile(contended, 95))
        # The acceptance bar: 2x solo p95, with an absolute floor so
        # micro-latency noise on tiny stores cannot flake the test.
        assert p95_contended <= max(2.0 * p95_solo, 0.05), (
            f"fast session p95 {p95_contended * 1000:.1f}ms vs solo "
            f"{p95_solo * 1000:.1f}ms while another session was wedged"
        )

    def test_deadline_abandoned_worker_degrades_only_its_session(self, values):
        """The leaked worker is reported, and other sessions keep serving."""
        server = SessionServer(workers=2, deadline_seconds=0.1)
        setup_session(server, values, "ok")
        setup_session(server, values, "wedged")
        plan = FaultPlan([
            Fault("serve.dispatch", "slow", delay=1.0, hit=1),
        ])
        server.fault_injector = plan

        response = server.handle_line(json.dumps(
            {"v": 1, "cmd": "impute", "session": "wedged",
             "rows": [query_row(values, 65)]}
        ))
        assert response["ok"] is False
        assert response["error"]["code"] == "deadline"

        health = server.handle_line(json.dumps(
            {"v": 1, "cmd": "health"}
        ))["result"]
        assert health["degraded"] == ["wedged"]
        assert health["sessions"]["wedged"]["state"] == "degraded"
        assert "abandoned" in health["sessions"]["wedged"]["reason"]
        assert health["abandoned"]["wedged"][0]["cmd"] == "impute"
        assert health["sessions"]["ok"]["state"] == "ok"

        # The other session keeps serving while the worker is leaked.
        response = server.handle_line(json.dumps(
            {"v": 1, "cmd": "impute", "session": "ok",
             "rows": [query_row(values, 66)]}
        ))
        assert response["ok"], response

        # Once the abandoned worker finishes, health recovers.
        deadline = time.monotonic() + 10.0
        while True:
            health = server.handle_line(json.dumps(
                {"v": 1, "cmd": "health"}
            ))["result"]
            if not health["degraded"]:
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert health["abandoned"] == {}
        assert health["sessions"]["wedged"]["state"] == "ok"

        # The wedged session serves again: its lock was released by the
        # abandoned worker when it finally finished, never leaked.
        response = server.handle_line(json.dumps(
            {"v": 1, "cmd": "impute", "session": "wedged",
             "rows": [query_row(values, 67)]}
        ))
        assert response["ok"], response
        server.close_sessions()
