"""The serve loop's ``query`` command: wire payloads, quotas, quarantine."""

import json

import numpy as np
import pytest

from repro.api import SessionServer, encode_rows
from repro.data import load_dataset

IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


def ok(server, **request):
    request.setdefault("v", 1)
    response = server.handle_line(json.dumps(request))
    assert response["ok"], response
    return response["result"]


def fail(server, **request):
    request.setdefault("v", 1)
    response = server.handle_line(json.dumps(request))
    assert not response["ok"], response
    return response["error"]


def create_online(server, values, name="s", n_rows=60):
    ok(server, cmd="create", session=name, config=IIM_CONFIG)
    ok(server, cmd="append", session=name, rows=encode_rows(values[:n_rows]))


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=100).raw


@pytest.fixture
def server():
    return SessionServer()


def _append_incomplete(server, values, name="s", n=2):
    rows = values[60 : 60 + n].copy()
    rows[np.arange(n), np.arange(n) % rows.shape[1]] = np.nan
    ok(server, cmd="append", session=name, rows=encode_rows(rows))
    return rows


class TestQueryCommand:
    def test_select_answers_rows_counts_and_provenance(self, server, values):
        create_online(server, values)
        _append_incomplete(server, values)
        result = ok(
            server, cmd="query", session="s",
            q="SELECT A1, A2 WHERE A1 > 0 ORDER BY A2 DESC LIMIT 5;",
        )
        assert result["kind"] == "select"
        assert result["columns"] == ["A1", "A2"]
        assert len(result["rows"]) == len(result["row_indices"]) == 5
        assert result["rows_scanned"] == 62
        assert result["rows_imputed"] == 2
        cells = result["provenance"]
        assert {c["row"] for c in cells} == {60, 61}
        for cell in cells:
            assert cell["method"] == "IIM"
            assert "trace_id" in cell
            assert np.isclose(sum(cell["weights"]), 1.0)

    def test_selects_are_read_only_on_the_wire(self, server, values):
        create_online(server, values)
        _append_incomplete(server, values)
        before = ok(server, cmd="stats", session="s")
        ok(server, cmd="query", session="s", q="SELECT *;")
        after = ok(server, cmd="stats", session="s")
        assert after["n_tuples"] == before["n_tuples"] == 60
        assert after["n_pending"] == before["n_pending"] == 2

    def test_explain_carries_the_plan(self, server, values):
        create_online(server, values)
        result = ok(
            server, cmd="query", session="s",
            q="EXPLAIN SELECT count(*), avg(A2);",
        )
        assert result["kind"] == "explain"
        assert result["plan"]["kind"] == "aggregate"
        assert result["plan"]["referenced_attributes"] == ["A2"]

    def test_data_statements_mutate_through_the_wal_path(self, server, values):
        create_online(server, values)
        _append_incomplete(server, values)
        result = ok(server, cmd="query", session="s", q="IMPUTE;")
        assert result["kind"] == "impute"
        assert result["rows_promoted"] == 2
        stats = ok(server, cmd="stats", session="s")
        assert stats["n_tuples"] == 62 and stats["n_pending"] == 0

    def test_touched_rows_charge_the_request_quota(self, values):
        server = SessionServer()
        create_online(server, values)
        _append_incomplete(server, values, n=5)
        server.max_rows_per_request = 3  # tighten after the setup appends
        error = fail(server, cmd="query", session="s", q="SELECT *;")
        assert error["code"] == "quota"
        assert "narrow the query" in error["message"]
        # a narrower query stays under the quota and succeeds
        result = ok(
            server, cmd="query", session="s", q="SELECT count(*);"
        )
        assert result["rows"][0][0] == 65.0

    def test_query_errors_never_quarantine(self, server, values):
        create_online(server, values)
        for bad in ("SELECT A9;", "SELECT A1 WHERE;", "DROP x;"):
            error = fail(server, cmd="query", session="s", q=bad)
            assert error["code"] == "query"
        health = ok(server, cmd="health")
        assert health["degraded"] == []
        assert health["sessions"]["s"]["state"] == "ok"

    def test_query_needs_an_online_session(self, server, values):
        config = dict(IIM_CONFIG, mode="batch")
        ok(server, cmd="create", session="b", config=config)
        error = fail(server, cmd="query", session="b", q="SELECT count(*);")
        assert error["code"] == "unsupported"
