"""Observability through the serve loop: trace IDs, metrics, spans, faults."""

import json
import re

import pytest

from repro import config, obs
from repro.__main__ import main as repro_main
from repro.api import SessionServer, encode_rows
from repro.data import load_dataset
from repro.obs.tracing import TRACE_SEGMENT_SUFFIX
from repro.reliability import Fault, FaultPlan


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=100).raw


@pytest.fixture(autouse=True)
def clean_observability():
    """Full span capture against a clean slate; knobs restored afterwards."""
    tracer = obs.get_tracer()
    previous_enabled = config.get_obs_enabled()
    previous_sample = config.get_obs_trace_sample()
    previous_pinned = tracer._sample
    previous_sink = tracer.sink
    config.set_obs_enabled(True)
    config.set_obs_trace_sample(1.0)
    tracer._sample = None  # defer to the knob set above
    obs.reset_observability()
    yield
    tracer._sample = previous_pinned
    tracer.sink = previous_sink
    config.set_obs_enabled(previous_enabled)
    config.set_obs_trace_sample(previous_sample)
    obs.reset_observability()


def ask(server, **request):
    request.setdefault("v", 1)
    return server.handle_line(json.dumps(request))


def ok(server, **request):
    response = ask(server, **request)
    assert response["ok"], response
    return response["result"]


IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


def create_online(server, values, name="s", n_rows=60):
    ok(server, cmd="create", session=name, config=IIM_CONFIG)
    ok(server, cmd="append", session=name, rows=encode_rows(values[:n_rows]))


def impute_one(server, values, name="s", row=70, column=1):
    query = [float(cell) for cell in values[row]]
    query[column] = None
    return ok(server, cmd="impute", session=name, rows=[query])


class TestTraceEcho:
    def test_every_response_carries_a_unique_trace_id(self):
        server = SessionServer()
        first = ask(server, cmd="ping")
        second = ask(server, cmd="ping")
        assert first["trace"] and second["trace"]
        assert first["trace"] != second["trace"]

    def test_error_responses_echo_the_trace_in_the_payload_too(self):
        server = SessionServer()
        response = ask(server, cmd="impute", session="ghost", rows=[[1.0]])
        assert response["ok"] is False
        assert response["trace"] == response["error"]["trace"]

    def test_malformed_lines_still_get_a_trace_id(self):
        server = SessionServer()
        response = server.handle_line("this is not json")
        assert response["error"]["code"] == "protocol"
        assert response["trace"]

    def test_trace_ids_issue_even_when_obs_is_disabled(self):
        config.set_obs_enabled(False)
        server = SessionServer()
        assert ask(server, cmd="ping")["trace"]


class TestRequestMetrics:
    def test_per_command_latency_and_status_counts(self, values):
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        ok(server, cmd="ping")
        ask(server, cmd="impute", session="ghost", rows=[[1.0]])  # error

        assert obs.REQUESTS_TOTAL.value(cmd="ping", status="ok") == 1
        assert obs.REQUESTS_TOTAL.value(cmd="create", status="ok") == 1
        assert obs.REQUESTS_TOTAL.value(cmd="impute", status="ok") == 1
        assert obs.REQUESTS_TOTAL.value(cmd="impute", status="protocol") == 1
        # Latency histograms: one sample per request, errors included.
        assert obs.REQUEST_SECONDS.summary(cmd="impute")["count"] == 2
        assert obs.REQUEST_SECONDS.summary(cmd="ping")["count"] == 1
        assert obs.REQUEST_SECONDS.summary(cmd="ping")["sum"] > 0.0

    def test_unknown_commands_do_not_become_labels(self):
        server = SessionServer()
        ask(server, cmd="frobnicate")
        ask(server, cmd=["not", "hashable"])
        server.handle_line("garbage")
        assert obs.REQUESTS_TOTAL.value(cmd="unknown", status="protocol") == 3
        families = obs.get_registry().snapshot()
        labels = [
            series["labels"]["cmd"]
            for series in families["counters"]["repro_requests_total"]["series"]
        ]
        assert set(labels) == {"unknown"}

    def test_disabled_obs_records_nothing(self):
        config.set_obs_enabled(False)
        server = SessionServer()
        ok(server, cmd="ping")
        assert obs.REQUESTS_TOTAL.value(cmd="ping", status="ok") == 0

    def test_imputed_cells_counted_by_kind(self, values):
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        assert obs.IMPUTED_CELLS_TOTAL.value(kind="online") == 1

    def test_sessions_open_gauge_tracks_the_table(self, values):
        server = SessionServer()
        ok(server, cmd="create", session="a", config={"method": "Mean"})
        ok(server, cmd="create", session="b", config={"method": "Mean"})
        assert obs.SESSIONS_OPEN.value() == 2
        ok(server, cmd="close", session="a")
        assert obs.SESSIONS_OPEN.value() == 1


class TestEngineSpans:
    def test_impute_trace_nests_engine_phases_under_the_request(self, values):
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        traces = {t["root"]: t for t in server.tracer.recent()}

        append_trace = traces["serve.append"]
        names = [s["name"] for s in append_trace["spans"]]
        assert "engine.append" in names

        impute_trace = traces["serve.impute"]
        spans = {s["name"]: s for s in impute_trace["spans"]}
        root = spans["serve.impute"]
        assert root["parent_id"] is None
        assert root["attrs"] == {"session": "s"}
        kernel = spans["engine.impute_kernel"]
        assert kernel["parent_id"] == root["span_id"]
        # Summed child durations cannot exceed the request span they nest in.
        children = [
            s for s in impute_trace["spans"]
            if s["parent_id"] == root["span_id"]
        ]
        assert children
        assert sum(s["duration_seconds"] for s in children) <= (
            root["duration_seconds"] + 1e-6
        )

    def test_engine_phase_histograms_fill(self, values):
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        assert obs.ENGINE_PHASE_SECONDS.summary(phase="append")["count"] >= 1
        assert (
            obs.ENGINE_PHASE_SECONDS.summary(phase="impute_kernel")["count"]
            == 1
        )

    def test_unsampled_requests_still_record_metrics(self, values):
        config.set_obs_trace_sample(0.0)
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        assert server.tracer.recent() == []
        assert obs.REQUEST_SECONDS.summary(cmd="impute")["count"] == 1
        assert obs.ENGINE_PHASE_SECONDS.summary(phase="impute_kernel")["count"] == 1


class TestReliabilityMetrics:
    def test_wal_sync_and_bytes(self, values, tmp_path):
        server = SessionServer(wal_root=tmp_path, wal_sync="always")
        create_online(server, values)
        assert obs.WAL_BYTES_TOTAL.value() > 0
        assert obs.WAL_SYNC_SECONDS.summary(policy="always")["count"] >= 1
        server.close_sessions()

    def test_artifact_io_durations_and_bytes(self, values, tmp_path):
        server = SessionServer()
        create_online(server, values)
        ok(server, cmd="save", session="s", path=str(tmp_path / "artifact"))
        assert obs.ARTIFACT_IO_SECONDS.summary(op="write")["count"] == 1
        assert obs.ARTIFACT_BYTES_TOTAL.value(op="write") > 0
        ok(server, cmd="close", session="s")
        ok(server, cmd="restore", session="s2",
           path=str(tmp_path / "artifact"))
        assert obs.ARTIFACT_IO_SECONDS.summary(op="read")["count"] >= 1
        assert obs.ARTIFACT_BYTES_TOTAL.value(op="read") > 0

    def test_store_mutations_counted_by_op(self, values):
        server = SessionServer()
        create_online(server, values)
        ok(server, cmd="delete", session="s", indices=[0, 1])
        ok(server, cmd="update", session="s",
           index=0, row=[float(cell) for cell in values[80]])
        assert obs.STORE_ROWS_TOTAL.value(op="append") == 60
        assert obs.STORE_ROWS_TOTAL.value(op="delete") == 2
        assert obs.STORE_ROWS_TOTAL.value(op="update") == 1

    def test_fault_activations_are_typed_counters(self, values):
        plan = FaultPlan([Fault("serve.dispatch", "io_error", hit=2)])
        server = SessionServer(fault_injector=plan)
        ok(server, cmd="ping")
        response = ask(server, cmd="ping")
        assert response["ok"] is False
        assert (
            obs.FAULT_ACTIVATIONS_TOTAL.value(
                site="serve.dispatch", kind="io_error"
            )
            == 1
        )


_PROMETHEUS_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?[0-9.e+-]+(inf)?$"
)


class TestMetricsCommand:
    def test_json_snapshot(self, values):
        server = SessionServer()
        ok(server, cmd="ping")
        result = ok(server, cmd="metrics")
        assert result["format"] == "json"
        counters = result["metrics"]["counters"]
        (series,) = [
            s for s in counters["repro_requests_total"]["series"]
            if s["labels"]["cmd"] == "ping"
        ]
        assert series["value"] == 1.0

    def test_prometheus_text_passes_the_grammar(self, values):
        server = SessionServer()
        create_online(server, values)
        impute_one(server, values)
        result = ok(server, cmd="metrics", format="prometheus")
        assert result["content_type"].startswith("text/plain")
        text = result["text"]
        assert "# TYPE repro_request_seconds histogram" in text
        assert 'repro_request_seconds_bucket{cmd="impute",le="+Inf"} 1' in text
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _PROMETHEUS_LINE.match(line), line

    def test_unknown_format_rejected(self):
        server = SessionServer()
        response = ask(server, cmd="metrics", format="xml")
        assert response["error"]["code"] == "protocol"


class TestTracesCommand:
    def test_returns_recent_traces_newest_last(self):
        server = SessionServer()
        ok(server, cmd="ping")
        ok(server, cmd="sessions")
        result = ok(server, cmd="traces", limit=2)
        roots = [t["root"] for t in result["traces"]]
        # The `traces` request itself has not finished, so it is absent.
        assert roots == ["serve.ping", "serve.sessions"]

    def test_limit_validated(self):
        server = SessionServer()
        for bad in (-1, True, "many"):
            response = ask(server, cmd="traces", limit=bad)
            assert response["error"]["code"] == "protocol"


class TestServerSelfDescription:
    def test_stats_reports_uptime_and_resolved_config(self, values):
        server = SessionServer()
        create_online(server, values)
        stats = ok(server, cmd="stats", session="s")
        assert stats["server"]["uptime_seconds"] >= 0.0
        server_config = stats["server"]["config"]
        assert server_config["obs_enabled"] is True
        assert server_config["trace_sample"] == 1.0
        assert server_config["wal_sync"] == config.get_wal_sync()
        assert server_config["trace_log"] is None

    def test_health_reports_the_same_config(self):
        server = SessionServer()
        health = ok(server, cmd="health")
        assert health["uptime_seconds"] >= 0.0
        assert health["config"]["obs_enabled"] is True


class TestTraceSink:
    def test_serve_flags_persist_traces_to_rotated_jsonl(self, tmp_path):
        server = SessionServer(
            trace_log=tmp_path / "traces", trace_sample=1.0
        )
        ok(server, cmd="ping")
        ok(server, cmd="ping")
        server.close_sessions()
        (segment,) = sorted(
            (tmp_path / "traces").glob("*" + TRACE_SEGMENT_SUFFIX)
        )
        records = [
            json.loads(line) for line in segment.read_text().splitlines()
        ]
        assert [r["root"] for r in records] == ["serve.ping", "serve.ping"]
        assert all(r["spans"][0]["status"] == "ok" for r in records)


class TestMetricsDumpCli:
    def test_json_dump(self, capsys):
        server = SessionServer()
        ok(server, cmd="ping")
        assert repro_main(["metrics-dump"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "repro_requests_total" in snapshot["counters"]

    def test_prometheus_dump(self, capsys):
        assert repro_main(["metrics-dump", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out
