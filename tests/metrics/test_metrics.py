"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.data import Relation, load_dataset
from repro.exceptions import DataError
from repro.metrics import (
    accuracy_score,
    confusion_matrix,
    contingency_matrix,
    f1_score,
    heterogeneity_r2,
    mean_absolute_error,
    normalized_mutual_information,
    normalized_rms_error,
    precision_recall_f1,
    purity_score,
    r_squared,
    rms_error,
    sparsity_r2,
)


class TestErrorMetrics:
    def test_rms_error_zero_for_perfect_imputation(self):
        assert rms_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rms_error_known_value(self):
        assert rms_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae_known_value(self):
        assert mean_absolute_error([0.0, 0.0], [3.0, -4.0]) == pytest.approx(3.5)

    def test_rms_at_least_mae(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=50)
        imputed = truth + rng.normal(size=50)
        assert rms_error(truth, imputed) >= mean_absolute_error(truth, imputed)

    def test_normalized_rms(self):
        truth = np.array([0.0, 10.0])
        assert normalized_rms_error(truth, truth + 1.0) == pytest.approx(1.0 / 5.0)

    def test_nan_imputation_rejected(self):
        with pytest.raises(DataError):
            rms_error([1.0], [np.nan])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            rms_error([1.0, 2.0], [1.0])


class TestDetermination:
    def test_r_squared_perfect(self):
        assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r_squared_of_mean_predictor_is_zero(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        assert r_squared(truth, np.full(4, truth.mean())) == pytest.approx(0.0)

    def test_r_squared_can_be_negative(self):
        assert r_squared([1.0, 2.0, 3.0], [3.0, 2.0, -1.0]) < 0

    def test_sparsity_r2_high_for_dense_clustered_data(self):
        rel = load_dataset("asf", size=200)
        assert sparsity_r2(rel, rel.n_attributes - 1) > 0.7

    def test_sparsity_r2_low_for_sparse_data(self):
        rel = load_dataset("ca", size=300)
        assert sparsity_r2(rel, rel.n_attributes - 1) < 0.5

    def test_heterogeneity_r2_high_for_linear_data(self):
        rel = load_dataset("phase", size=300)
        assert heterogeneity_r2(rel, rel.n_attributes - 1) > 0.85

    def test_heterogeneity_r2_lower_for_heterogeneous_data(self):
        asf = load_dataset("asf", size=400)
        phase = load_dataset("phase", size=400)
        assert heterogeneity_r2(asf, asf.n_attributes - 1) < heterogeneity_r2(
            phase, phase.n_attributes - 1
        )

    def test_profiling_requires_complete_relation(self):
        rel = Relation([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(DataError):
            sparsity_r2(rel, 1)


class TestClusteringMetrics:
    def test_purity_perfect_match(self):
        assert purity_score([0, 0, 1, 1], [5, 5, 7, 7]) == 1.0

    def test_purity_random_half(self):
        assert purity_score([0, 1, 0, 1], [0, 0, 0, 0]) == pytest.approx(0.5)

    def test_purity_invariant_to_label_names(self):
        a = purity_score([0, 0, 1, 1], [1, 1, 0, 0])
        b = purity_score(["x", "x", "y", "y"], ["b", "b", "a", "a"])
        assert a == b == 1.0

    def test_contingency_matrix_counts(self):
        matrix = contingency_matrix([0, 0, 1], [0, 1, 1])
        assert matrix.sum() == 3
        assert matrix.shape == (2, 2)

    def test_nmi_perfect_and_independent(self):
        assert normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)
        low = normalized_mutual_information([0, 1, 0, 1, 0, 1, 0, 1], [0, 0, 1, 1, 0, 0, 1, 1])
        assert low < 0.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            purity_score([0, 1], [0])


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.75)

    def test_confusion_matrix_diagonal_for_perfect(self):
        matrix = confusion_matrix([0, 1, 2], [0, 1, 2])
        np.testing.assert_array_equal(matrix, np.eye(3, dtype=int))

    def test_precision_recall_f1_binary(self):
        truth = [1, 1, 1, 0, 0, 0]
        predicted = [1, 1, 0, 1, 0, 0]
        stats = precision_recall_f1(truth, predicted)[1]
        assert stats["precision"] == pytest.approx(2 / 3)
        assert stats["recall"] == pytest.approx(2 / 3)
        assert stats["f1"] == pytest.approx(2 / 3)

    def test_f1_perfect(self):
        assert f1_score([0, 1, 0], [0, 1, 0]) == 1.0

    def test_f1_weighted_vs_macro(self):
        truth = [0] * 90 + [1] * 10
        predicted = [0] * 100
        weighted = f1_score(truth, predicted, average="weighted")
        macro = f1_score(truth, predicted, average="macro")
        assert weighted > macro

    def test_f1_binary_requires_two_classes(self):
        with pytest.raises(DataError):
            f1_score([0, 0], [0, 0], average="binary")

    def test_unknown_average_rejected(self):
        with pytest.raises(DataError):
            f1_score([0, 1], [0, 1], average="median")
