"""Tests for the kNN classifier and the downstream application pipelines."""

import numpy as np
import pytest

from repro.baselines import KNNImputer, MeanImputer
from repro.data import Relation, load_dataset
from repro.exceptions import DataError, NotFittedError
from repro.ml import (
    KNNClassifier,
    classification_application,
    classification_without_imputation,
    clustering_application,
)


@pytest.fixture
def two_blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [6.0, 6.0]])
    labels = rng.integers(0, 2, size=200)
    points = centers[labels] + rng.normal(scale=0.8, size=(200, 2))
    return points, labels


class TestKNNClassifier:
    def test_high_accuracy_on_separable_blobs(self, two_blobs):
        points, labels = two_blobs
        classifier = KNNClassifier(k=5).fit(points[:150], labels[:150])
        assert classifier.score(points[150:], labels[150:]) > 0.95

    def test_predict_proba_sums_to_one(self, two_blobs):
        points, labels = two_blobs
        classifier = KNNClassifier(k=5).fit(points, labels)
        probabilities = classifier.predict_proba(points[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_k_one_memorises_training_points(self, two_blobs):
        points, labels = two_blobs
        classifier = KNNClassifier(k=1).fit(points, labels)
        np.testing.assert_array_equal(classifier.predict(points), labels)

    def test_distance_weighting_supported(self, two_blobs):
        points, labels = two_blobs
        classifier = KNNClassifier(k=7, weighting="distance").fit(points, labels)
        assert classifier.score(points, labels) > 0.95

    def test_classes_property(self, two_blobs):
        points, labels = two_blobs
        classifier = KNNClassifier().fit(points, labels)
        np.testing.assert_array_equal(classifier.classes_, [0, 1])

    def test_string_labels_supported(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["a", "a", "b", "b"])
        classifier = KNNClassifier(k=1).fit(X, y)
        assert classifier.predict(np.array([[5.05]]))[0] == "b"

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            KNNClassifier().predict(np.zeros((1, 2)))

    def test_label_length_mismatch(self):
        with pytest.raises(DataError):
            KNNClassifier().fit(np.zeros((3, 2)), [0, 1])


class TestClusteringApplication:
    def test_imputation_improves_over_discard(self):
        relation = load_dataset("asf", size=250)
        outcome = clustering_application(
            relation, KNNImputer(k=5), n_clusters=4, missing_fraction=0.08, random_state=0
        )
        assert 0.0 <= outcome.purity <= 1.0
        assert 0.0 <= outcome.purity_discard <= 1.0

    def test_none_imputer_reports_discard_only(self):
        relation = load_dataset("asf", size=200)
        outcome = clustering_application(relation, None, n_clusters=3, random_state=0)
        assert outcome.purity == outcome.purity_discard

    def test_requires_complete_relation(self):
        relation = Relation([[1.0, np.nan], [2.0, 3.0], [3.0, 1.0]])
        with pytest.raises(DataError):
            clustering_application(relation, MeanImputer())


class TestClassificationApplication:
    def test_f1_in_unit_interval(self):
        relation = load_dataset("mam", size=200)
        score = classification_application(relation, MeanImputer(), random_state=0)
        assert 0.0 <= score <= 1.0

    def test_discard_baseline_runs(self):
        relation = load_dataset("mam", size=200)
        score = classification_without_imputation(relation, random_state=0)
        assert 0.0 <= score <= 1.0

    def test_imputation_at_least_as_good_as_discard_on_average(self):
        # Not guaranteed per-seed in general, but on this generated data
        # imputation keeps all tuples and should not be dramatically worse.
        relation = load_dataset("mam", size=300)
        imputed = classification_application(relation, KNNImputer(k=5), random_state=0)
        discarded = classification_without_imputation(relation, random_state=0)
        assert imputed > discarded - 0.15

    def test_unlabelled_relation_rejected(self):
        relation = load_dataset("asf", size=100)
        with pytest.raises(DataError):
            classification_application(relation, MeanImputer())
        with pytest.raises(DataError):
            classification_without_imputation(relation)
