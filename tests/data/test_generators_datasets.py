"""Tests for the synthetic generators and the named dataset registry."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    dataset_names,
    dataset_summary,
    load_dataset,
    make_classification_relation,
    make_heterogeneous_regression,
    make_homogeneous_regression,
    make_piecewise_curve,
    make_sparse_highdim,
    make_two_street_example,
)
from repro.exceptions import ConfigurationError, DatasetError
from repro.metrics import heterogeneity_r2, sparsity_r2


class TestGenerators:
    def test_heterogeneous_shape(self):
        rel = make_heterogeneous_regression(100, 5, random_state=0)
        assert rel.shape == (100, 5)
        assert rel.is_complete()

    def test_heterogeneous_deterministic(self):
        a = make_heterogeneous_regression(50, 4, random_state=3)
        b = make_heterogeneous_regression(50, 4, random_state=3)
        np.testing.assert_array_equal(a.raw, b.raw)

    def test_heterogeneous_requires_two_attributes(self):
        with pytest.raises(ConfigurationError):
            make_heterogeneous_regression(50, 1)

    def test_heterogeneity_property_holds(self):
        # With a large regime offset the global regression should explain the
        # data much worse than on homogeneous data of the same size.
        hetero = make_heterogeneous_regression(
            400, 5, n_regimes=4, regime_offset=1.5, noise=0.02, random_state=1
        )
        homo = make_homogeneous_regression(400, 5, noise=0.02, random_state=1)
        r2_hetero = heterogeneity_r2(hetero, 4)
        r2_homo = heterogeneity_r2(homo, 4)
        assert r2_homo > 0.9
        assert r2_hetero < r2_homo

    def test_homogeneous_shape(self):
        rel = make_homogeneous_regression(80, 4, random_state=0)
        assert rel.shape == (80, 4)

    def test_sparse_highdim_sparsity_property(self):
        rel = make_sparse_highdim(400, 9, random_state=0)
        # Neighbour value-sharing on the small-scale target is poor while a
        # global regression explains it well (the paper's CA profile).
        r2_s = sparsity_r2(rel, 8, sample_size=200)
        r2_h = heterogeneity_r2(rel, 8)
        assert r2_h > 0.8
        assert r2_s < 0.5

    def test_sparse_highdim_needs_three_attributes(self):
        with pytest.raises(ConfigurationError):
            make_sparse_highdim(100, 2)

    def test_piecewise_curve_two_attributes(self):
        rel = make_piecewise_curve(200, random_state=0)
        assert rel.n_attributes == 2
        # Monotone: sort by x, the y column must be non-decreasing up to noise.
        values = rel.raw[np.argsort(rel.raw[:, 0])]
        assert np.mean(np.diff(values[:, 1]) >= -0.5) > 0.95

    def test_classification_relation_labels_and_missing(self):
        rel = make_classification_relation(
            120, 5, n_classes=3, missing_fraction=0.05, random_state=0
        )
        assert rel.labels is not None
        assert set(np.unique(rel.labels)).issubset({0, 1, 2})
        assert rel.n_missing_cells > 0
        assert rel.complete_part().n_tuples > 0

    def test_classification_relation_without_missing(self):
        rel = make_classification_relation(50, 4, random_state=0)
        assert rel.is_complete()

    def test_two_street_example_matches_figure1(self):
        rel = make_two_street_example()
        assert rel.shape == (8, 2)
        assert rel.raw[0, 1] == pytest.approx(5.8)
        assert rel.raw[4, 0] == pytest.approx(6.8)


class TestDatasetRegistry:
    def test_all_nine_datasets_registered(self):
        assert set(dataset_names()) == {
            "asf", "ccs", "ccpp", "sn", "phase", "ca", "da", "mam", "hep",
        }

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    @pytest.mark.parametrize("name", ["asf", "ccs", "ccpp", "phase", "ca", "da", "sn"])
    def test_numeric_datasets_are_complete(self, name):
        rel = load_dataset(name, size=120)
        assert rel.is_complete()
        assert rel.n_tuples == 120
        assert rel.n_attributes == DATASETS[name].n_attributes

    @pytest.mark.parametrize("name", ["mam", "hep"])
    def test_labelled_datasets_have_missing_and_labels(self, name):
        rel = load_dataset(name, size=120)
        assert rel.labels is not None
        assert rel.n_missing_cells > 0

    def test_size_override(self):
        rel = load_dataset("asf", size=77)
        assert rel.n_tuples == 77

    def test_default_sizes_match_paper(self):
        assert DATASETS["asf"].n_tuples == 1500
        assert DATASETS["ca"].n_tuples == 20000
        assert DATASETS["sn"].n_tuples == 100000
        assert DATASETS["hep"].n_tuples == 200

    def test_deterministic_given_seed(self):
        a = load_dataset("ccs", size=100, random_state=5)
        b = load_dataset("ccs", size=100, random_state=5)
        np.testing.assert_array_equal(a.raw, b.raw)

    def test_dataset_summary_structure(self):
        summary = dataset_summary()
        assert summary["asf"]["n_attributes"] == 6
        assert summary["hep"]["has_labels"] is True

    def test_relation_name_matches_dataset(self):
        assert load_dataset("phase", size=50).name == "phase"
