"""Tests for CSV I/O and the train/test / k-fold splitters."""

import numpy as np
import pytest

from repro.data import KFold, Relation, StratifiedKFold, read_csv, train_test_split, write_csv
from repro.exceptions import DataError


class TestCsvRoundtrip:
    def test_roundtrip_preserves_values(self, tmp_path):
        rel = Relation([[1.5, 2.0], [3.25, np.nan]], schema=["x", "y"], name="demo")
        path = write_csv(rel, tmp_path / "demo.csv")
        loaded = read_csv(path)
        np.testing.assert_allclose(loaded.raw[0], [1.5, 2.0])
        assert np.isnan(loaded.raw[1, 1])
        assert loaded.schema.attributes == ("x", "y")

    def test_roundtrip_with_labels(self, tmp_path):
        rel = Relation([[1.0], [2.0]], schema=["x"], labels=[0, 1])
        path = write_csv(rel, tmp_path / "labelled.csv")
        loaded = read_csv(path, label_column="label")
        assert loaded.labels.tolist() == [0, 1]
        assert loaded.n_attributes == 1

    def test_missing_tokens_parsed(self, tmp_path):
        path = tmp_path / "tokens.csv"
        path.write_text("a,b\n1.0,?\nNA,2.0\n3.0,nan\n")
        loaded = read_csv(path)
        assert loaded.n_missing_cells == 3

    def test_no_header(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = read_csv(path, has_header=False)
        assert loaded.schema.attributes == ("A1", "A2")
        assert loaded.n_tuples == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            read_csv(tmp_path / "absent.csv")

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1.0,2.0\n3.0\n")
        with pytest.raises(DataError):
            read_csv(path)

    def test_non_numeric_cell_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0,hello\n")
        with pytest.raises(DataError):
            read_csv(path)


class TestTrainTestSplit:
    def test_partition_sizes(self):
        rel = Relation(np.arange(40, dtype=float).reshape(20, 2))
        split = train_test_split(rel, test_fraction=0.25, random_state=0)
        assert split.test.n_tuples == 5
        assert split.train.n_tuples == 15

    def test_partition_is_disjoint_and_covering(self):
        rel = Relation(np.arange(40, dtype=float).reshape(20, 2))
        split = train_test_split(rel, test_fraction=0.3, random_state=1)
        combined = np.sort(np.concatenate([split.train_indices, split.test_indices]))
        np.testing.assert_array_equal(combined, np.arange(20))

    def test_degenerate_fraction_raises(self):
        rel = Relation(np.arange(4, dtype=float).reshape(2, 2))
        with pytest.raises(DataError):
            train_test_split(rel, test_fraction=0.01)


class TestKFold:
    def test_folds_cover_all_rows(self):
        folds = list(KFold(n_splits=4, random_state=0).split(22))
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(22))

    def test_train_and_test_disjoint(self):
        for train, test in KFold(n_splits=3, random_state=0).split(15):
            assert not set(train) & set(test)

    def test_too_few_rows_raises(self):
        with pytest.raises(DataError):
            list(KFold(n_splits=5).split(3))

    def test_two_splits_minimum(self):
        with pytest.raises(DataError):
            KFold(n_splits=1)

    def test_split_relation_yields_relations(self):
        rel = Relation(np.arange(20, dtype=float).reshape(10, 2))
        for train, test in KFold(n_splits=5, random_state=0).split_relation(rel):
            assert train.n_tuples + test.n_tuples == 10


class TestStratifiedKFold:
    def test_every_fold_contains_both_classes(self):
        labels = np.array([0] * 30 + [1] * 10)
        for _, test in StratifiedKFold(n_splits=5, random_state=0).split(labels):
            assert set(labels[test]) == {0, 1}

    def test_folds_cover_all_rows(self):
        labels = np.array([0, 1] * 15)
        folds = list(StratifiedKFold(n_splits=3, random_state=0).split(labels))
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(30))

    def test_split_relation_requires_labels(self):
        rel = Relation(np.arange(20, dtype=float).reshape(10, 2))
        with pytest.raises(DataError):
            list(StratifiedKFold().split_relation(rel))
