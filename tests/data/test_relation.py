"""Tests for the Relation/Schema relational substrate."""

import numpy as np
import pytest

from repro.data import Relation, Schema
from repro.exceptions import DataError, SchemaError


class TestSchema:
    def test_default_schema_names(self):
        schema = Schema.default(3)
        assert schema.attributes == ("A1", "A2", "A3")

    def test_width_and_len(self):
        schema = Schema(["x", "y"])
        assert schema.width == 2
        assert len(schema) == 2

    def test_index_of_by_name_and_index(self):
        schema = Schema(["x", "y", "z"])
        assert schema.index_of("y") == 1
        assert schema.index_of(2) == 2

    def test_index_of_unknown_name_raises(self):
        schema = Schema(["x", "y"])
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_index_of_out_of_range_raises(self):
        schema = Schema(["x", "y"])
        with pytest.raises(SchemaError):
            schema.index_of(5)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_contains(self):
        schema = Schema(["x", "y"])
        assert "x" in schema
        assert "q" not in schema
        assert 1 in schema
        assert 7 not in schema

    def test_complement(self):
        schema = Schema(["a", "b", "c", "d"])
        assert schema.complement(["b"]) == [0, 2, 3]
        assert schema.complement([0, 3]) == [1, 2]

    def test_name_of(self):
        schema = Schema(["a", "b"])
        assert schema.name_of(1) == "b"


class TestRelationBasics:
    def test_shape_and_counts(self):
        rel = Relation([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert rel.shape == (3, 2)
        assert rel.n_tuples == 3
        assert rel.n_attributes == 2
        assert len(rel) == 3

    def test_default_schema_applied(self):
        rel = Relation([[1.0, 2.0]])
        assert rel.schema.attributes == ("A1", "A2")

    def test_schema_width_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Relation([[1.0, 2.0]], schema=["only_one"])

    def test_values_returns_copy(self):
        rel = Relation([[1.0, 2.0]])
        values = rel.values
        values[0, 0] = 99.0
        assert rel.raw[0, 0] == 1.0

    def test_raw_is_read_only(self):
        rel = Relation([[1.0, 2.0]])
        with pytest.raises((ValueError, RuntimeError)):
            rel.raw[0, 0] = 5.0

    def test_labels_roundtrip(self):
        rel = Relation([[1.0], [2.0]], labels=[0, 1])
        assert rel.labels.tolist() == [0, 1]

    def test_labels_wrong_length_raises(self):
        with pytest.raises(DataError):
            Relation([[1.0], [2.0]], labels=[0])

    def test_column_access_by_name(self):
        rel = Relation([[1.0, 2.0], [3.0, 4.0]], schema=["x", "y"])
        np.testing.assert_array_equal(rel.column("y"), [2.0, 4.0])

    def test_columns_access(self):
        rel = Relation([[1.0, 2.0, 3.0]], schema=["x", "y", "z"])
        np.testing.assert_array_equal(rel.columns(["z", "x"]), [[3.0, 1.0]])

    def test_row_access(self):
        rel = Relation([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(rel.row(1), [3.0, 4.0])

    def test_repr_mentions_shape(self):
        rel = Relation([[1.0, 2.0]])
        assert "n=1" in repr(rel)
        assert "m=2" in repr(rel)


class TestRelationMissing:
    def test_missing_mask_and_counts(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0]])
        assert rel.n_missing_cells == 1
        assert rel.missing_mask[0, 1]
        assert not rel.is_complete()

    def test_complete_and_incomplete_rows(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0], [np.nan, 6.0]])
        np.testing.assert_array_equal(rel.complete_rows, [1])
        np.testing.assert_array_equal(rel.incomplete_rows, [0, 2])

    def test_complete_part_drops_incomplete(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0]])
        assert rel.complete_part().n_tuples == 1
        assert rel.complete_part().is_complete()

    def test_incomplete_part(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0]])
        assert rel.incomplete_part().n_tuples == 1

    def test_drop_incomplete_alias(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0]])
        assert rel.drop_incomplete().n_tuples == 1

    def test_infinite_values_rejected(self):
        with pytest.raises(DataError):
            Relation([[np.inf, 1.0]])


class TestRelationManipulation:
    def test_select_rows_preserves_labels(self):
        rel = Relation([[1.0], [2.0], [3.0]], labels=[0, 1, 0])
        selected = rel.select_rows([2, 0])
        np.testing.assert_array_equal(selected.column(0), [3.0, 1.0])
        assert selected.labels.tolist() == [0, 0]

    def test_select_attributes(self):
        rel = Relation([[1.0, 2.0, 3.0]], schema=["x", "y", "z"])
        projected = rel.select_attributes(["z", "x"])
        assert projected.schema.attributes == ("z", "x")
        np.testing.assert_array_equal(projected.raw, [[3.0, 1.0]])

    def test_select_attributes_empty_raises(self):
        rel = Relation([[1.0, 2.0]])
        with pytest.raises(SchemaError):
            rel.select_attributes([])

    def test_set_cell_returns_new_relation(self):
        rel = Relation([[1.0, 2.0]])
        updated = rel.set_cell(0, "A2", 9.0)
        assert updated.raw[0, 1] == 9.0
        assert rel.raw[0, 1] == 2.0

    def test_with_values_keeps_schema(self):
        rel = Relation([[1.0, 2.0]], schema=["x", "y"])
        new = rel.with_values(np.array([[5.0, 6.0]]))
        assert new.schema.attributes == ("x", "y")

    def test_copy_is_independent(self):
        rel = Relation([[1.0, 2.0]])
        clone = rel.copy()
        assert clone.raw is not rel.raw
        np.testing.assert_array_equal(clone.raw, rel.raw)

    def test_concat(self):
        a = Relation([[1.0, 2.0]])
        b = Relation([[3.0, 4.0]])
        merged = a.concat(b)
        assert merged.n_tuples == 2

    def test_concat_schema_mismatch_raises(self):
        a = Relation([[1.0, 2.0]], schema=["x", "y"])
        b = Relation([[3.0, 4.0]], schema=["u", "v"])
        with pytest.raises(SchemaError):
            a.concat(b)

    def test_concat_label_mismatch_raises(self):
        a = Relation([[1.0]], labels=[0])
        b = Relation([[2.0]])
        with pytest.raises(DataError):
            a.concat(b)


class TestRelationStatistics:
    def test_column_means_skip_missing(self):
        rel = Relation([[1.0, np.nan], [3.0, 4.0]])
        means = rel.column_means()
        assert means[0] == pytest.approx(2.0)
        assert means[1] == pytest.approx(4.0)

    def test_column_stds_nonnegative(self):
        rel = Relation([[1.0, 2.0], [3.0, 4.0]])
        assert (rel.column_stds() >= 0).all()

    def test_summary_keys(self):
        rel = Relation([[1.0, np.nan]], name="demo")
        summary = rel.summary()
        assert summary["name"] == "demo"
        assert summary["n_missing_cells"] == 1
        assert summary["n_incomplete_tuples"] == 1
