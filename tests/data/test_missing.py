"""Tests for missing-value injection strategies."""

import numpy as np
import pytest

from repro.data import (
    Relation,
    inject_missing,
    inject_missing_attribute,
    inject_missing_cells,
    inject_missing_clustered,
    load_dataset,
)
from repro.exceptions import MissingValueError


@pytest.fixture
def complete_relation():
    rng = np.random.default_rng(0)
    return Relation(rng.normal(size=(100, 4)))


class TestInjectMissing:
    def test_fraction_of_tuples_made_incomplete(self, complete_relation):
        result = inject_missing(complete_relation, fraction=0.1, random_state=0)
        assert len(result) == 10
        assert len(result.dirty.incomplete_rows) == 10

    def test_truth_matches_original_values(self, complete_relation):
        result = inject_missing(complete_relation, fraction=0.1, random_state=0)
        original = complete_relation.raw
        for cell in result.cells:
            assert original[cell.row, cell.attribute] == pytest.approx(cell.true_value)

    def test_dirty_cells_are_nan(self, complete_relation):
        result = inject_missing(complete_relation, fraction=0.1, random_state=0)
        dirty = result.dirty.raw
        assert np.isnan(dirty[result.rows, result.attributes]).all()

    def test_one_missing_cell_per_tuple(self, complete_relation):
        result = inject_missing(complete_relation, fraction=0.2, random_state=1)
        per_row = np.isnan(result.dirty.raw).sum(axis=1)
        assert per_row.max() == 1

    def test_reproducible_with_seed(self, complete_relation):
        a = inject_missing(complete_relation, fraction=0.1, random_state=42)
        b = inject_missing(complete_relation, fraction=0.1, random_state=42)
        assert [(c.row, c.attribute) for c in a.cells] == [(c.row, c.attribute) for c in b.cells]

    def test_attribute_restriction(self, complete_relation):
        result = inject_missing(
            complete_relation, fraction=0.1, attributes=["A2"], random_state=0
        )
        assert set(result.attributes.tolist()) == {1}

    def test_requires_complete_relation(self, complete_relation):
        dirty = inject_missing(complete_relation, fraction=0.1, random_state=0).dirty
        with pytest.raises(MissingValueError):
            inject_missing(dirty, fraction=0.1)

    def test_fraction_bounds_validated(self, complete_relation):
        with pytest.raises(Exception):
            inject_missing(complete_relation, fraction=1.5)

    def test_original_relation_untouched(self, complete_relation):
        before = complete_relation.raw.copy()
        inject_missing(complete_relation, fraction=0.1, random_state=0)
        np.testing.assert_array_equal(complete_relation.raw, before)


class TestInjectMissingAttribute:
    def test_all_cells_on_requested_attribute(self, complete_relation):
        result = inject_missing_attribute(complete_relation, "A3", 15, random_state=0)
        assert set(result.attributes.tolist()) == {2}
        assert len(result) == 15

    def test_too_many_incomplete_raises(self, complete_relation):
        with pytest.raises(MissingValueError):
            inject_missing_attribute(complete_relation, "A1", 100, random_state=0)


class TestInjectMissingCells:
    def test_exact_cells_removed(self, complete_relation):
        result = inject_missing_cells(complete_relation, [(0, "A1"), (3, 2)])
        assert {(c.row, c.attribute) for c in result.cells} == {(0, 0), (3, 2)}

    def test_duplicate_cells_deduplicated(self, complete_relation):
        result = inject_missing_cells(complete_relation, [(0, 0), (0, 0)])
        assert len(result) == 1

    def test_empty_coordinates_raises(self, complete_relation):
        with pytest.raises(MissingValueError):
            inject_missing_cells(complete_relation, [])

    def test_row_out_of_range_raises(self, complete_relation):
        with pytest.raises(MissingValueError):
            inject_missing_cells(complete_relation, [(1000, 0)])


class TestInjectMissingClustered:
    def test_total_incomplete_count(self, complete_relation):
        result = inject_missing_clustered(
            complete_relation, n_incomplete=12, cluster_size=3, random_state=0
        )
        assert len(result) == 12

    def test_cluster_members_are_close(self):
        relation = load_dataset("asf", size=150)
        result = inject_missing_clustered(
            relation, n_incomplete=10, cluster_size=5, attribute=-1, random_state=0
        )
        # With cluster_size 5 the incomplete tuples form two tight groups: the
        # mean distance to the nearest other incomplete tuple must be well
        # below the dataset's typical pairwise distance.
        values = relation.raw
        rows = result.rows
        incomplete = values[rows]
        pairwise = np.sqrt(((incomplete[:, None] - incomplete[None, :]) ** 2).mean(axis=2))
        np.fill_diagonal(pairwise, np.inf)
        nearest_incomplete = pairwise.min(axis=1).mean()
        global_pairwise = np.sqrt(((values[::5, None] - values[None, ::5]) ** 2).mean(axis=2))
        typical = np.median(global_pairwise[global_pairwise > 0])
        assert nearest_incomplete < typical * 0.5

    def test_cluster_size_one_is_random_injection(self, complete_relation):
        result = inject_missing_clustered(
            complete_relation, n_incomplete=5, cluster_size=1, random_state=0
        )
        assert len(result) == 5

    def test_fixed_attribute(self, complete_relation):
        result = inject_missing_clustered(
            complete_relation, n_incomplete=6, cluster_size=2, attribute="A4", random_state=0
        )
        assert set(result.attributes.tolist()) == {3}

    def test_cluster_size_larger_than_total_raises(self, complete_relation):
        with pytest.raises(MissingValueError):
            inject_missing_clustered(complete_relation, n_incomplete=2, cluster_size=5)


class TestInjectionResult:
    def test_alignment_of_truth_rows_attributes(self, complete_relation):
        result = inject_missing(complete_relation, fraction=0.1, random_state=3)
        assert result.truth.shape == result.rows.shape == result.attributes.shape
        assert result.truth.shape[0] == len(result)
