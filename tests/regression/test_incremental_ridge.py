"""Tests for the incremental U/V ridge computation (Proposition 3)."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.regression import IncrementalRidge, RidgeRegression


@pytest.fixture
def data():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 4))
    y = X @ np.array([1.0, -2.0, 0.5, 2.0]) + 3.0 + rng.normal(scale=0.1, size=50)
    return X, y


class TestIncrementalRidge:
    def test_matches_batch_ridge_after_single_partial_fit(self, data):
        X, y = data
        incremental = IncrementalRidge(n_features=4, alpha=1e-3).partial_fit(X, y)
        batch = RidgeRegression(alpha=1e-3).fit(X, y)
        np.testing.assert_allclose(incremental.solve(), batch.coefficients, rtol=1e-9)

    def test_matches_batch_ridge_when_grown_incrementally(self, data):
        X, y = data
        incremental = IncrementalRidge(n_features=4, alpha=1e-3)
        for start in range(0, 50, 7):
            incremental.partial_fit(X[start : start + 7], y[start : start + 7])
        batch = RidgeRegression(alpha=1e-3).fit(X, y)
        np.testing.assert_allclose(incremental.solve(), batch.coefficients, rtol=1e-8)

    def test_every_prefix_matches_from_scratch(self, data):
        # The core claim of Proposition 3: for every ℓ, the incrementally
        # maintained U/V give the same model as refitting from scratch.
        X, y = data
        incremental = IncrementalRidge(n_features=4, alpha=1e-3)
        for ell in range(1, 21):
            incremental.add_row(X[ell - 1], y[ell - 1])
            batch = RidgeRegression(alpha=1e-3).fit(X[:ell], y[:ell])
            np.testing.assert_allclose(incremental.solve(), batch.coefficients, rtol=1e-7)

    def test_single_row_constant_model(self):
        incremental = IncrementalRidge(n_features=2).add_row([1.0, 2.0], 5.0)
        np.testing.assert_array_equal(incremental.solve(), [5.0, 0.0, 0.0])

    def test_paper_example_6(self):
        # Example 6: incrementally extending t1's neighbours from {t1,t2,t3}
        # to {t1,t2,t3,t4} yields phi ~= (5.56, -0.87).
        incremental = IncrementalRidge(n_features=1, alpha=1e-3)
        incremental.partial_fit([[0.0], [0.8], [1.9]], [5.8, 4.6, 3.8])
        phi3 = incremental.solve()
        assert phi3[0] == pytest.approx(5.66, abs=0.02)
        assert phi3[1] == pytest.approx(-1.03, abs=0.02)
        incremental.partial_fit([[2.9]], [3.2])
        phi4 = incremental.solve()
        assert phi4[0] == pytest.approx(5.56, abs=0.02)
        assert phi4[1] == pytest.approx(-0.87, abs=0.02)

    def test_u_v_accumulate(self, data):
        X, y = data
        incremental = IncrementalRidge(n_features=4)
        incremental.partial_fit(X[:10], y[:10])
        u_before = incremental.U
        incremental.partial_fit(X[10:20], y[10:20])
        assert not np.allclose(u_before, incremental.U)
        assert incremental.n_rows == 20

    def test_predict(self, data):
        X, y = data
        incremental = IncrementalRidge(n_features=4).partial_fit(X, y)
        batch = RidgeRegression().fit(X, y)
        np.testing.assert_allclose(incremental.predict(X[:3]), batch.predict(X[:3]), rtol=1e-8)

    def test_copy_is_independent(self, data):
        X, y = data
        original = IncrementalRidge(n_features=4).partial_fit(X[:10], y[:10])
        clone = original.copy()
        clone.partial_fit(X[10:20], y[10:20])
        assert original.n_rows == 10
        assert clone.n_rows == 20

    def test_solve_without_rows_raises(self):
        with pytest.raises(NotFittedError):
            IncrementalRidge(n_features=2).solve()

    def test_wrong_feature_width_raises(self):
        incremental = IncrementalRidge(n_features=2)
        with pytest.raises(DataError):
            incremental.partial_fit(np.zeros((2, 3)), np.zeros(2))
