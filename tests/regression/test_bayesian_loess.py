"""Tests for Bayesian linear regression and LOESS."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.regression import BayesianLinearRegression, LoessRegression, tricube_weights


@pytest.fixture
def noisy_linear():
    rng = np.random.default_rng(5)
    X = rng.uniform(-3, 3, size=(120, 2))
    y = 1.0 + 2.0 * X[:, 0] - 1.5 * X[:, 1] + rng.normal(scale=0.2, size=120)
    return X, y


class TestBayesianLinearRegression:
    def test_posterior_mean_close_to_truth(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression(sample=False).fit(X, y)
        np.testing.assert_allclose(model.coefficients, [1.0, 2.0, -1.5], atol=0.15)

    def test_deterministic_prediction_without_sampling(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression(sample=False).fit(X, y)
        np.testing.assert_array_equal(model.predict(X[:5]), model.predict(X[:5]))

    def test_sampling_prediction_varies(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression(sample=True, random_state=0).fit(X, y)
        a = model.predict(X[:5])
        b = model.predict(X[:5])
        assert not np.allclose(a, b)

    def test_sampling_reproducible_with_seed(self, noisy_linear):
        X, y = noisy_linear
        a = BayesianLinearRegression(sample=True, random_state=11).fit(X, y).predict(X[:5])
        b = BayesianLinearRegression(sample=True, random_state=11).fit(X, y).predict(X[:5])
        np.testing.assert_array_equal(a, b)

    def test_noise_variance_estimate_positive(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression().fit(X, y)
        assert model.noise_variance > 0
        assert model.noise_variance == pytest.approx(0.04, rel=0.6)

    def test_covariance_is_positive_semidefinite(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression().fit(X, y)
        eigenvalues = np.linalg.eigvalsh(model.coefficient_covariance)
        assert (eigenvalues >= -1e-12).all()

    def test_sampled_coefficients_near_mean(self, noisy_linear):
        X, y = noisy_linear
        model = BayesianLinearRegression(random_state=0).fit(X, y)
        draws = np.array([model.sample_coefficients() for _ in range(200)])
        np.testing.assert_allclose(draws.mean(axis=0), model.coefficients, atol=0.05)


class TestTricubeWeights:
    def test_weights_decrease_with_distance(self):
        weights = tricube_weights(np.array([0.0, 0.5, 1.0]))
        assert weights[0] > weights[1] > weights[2]

    def test_all_equal_distances_give_uniform_weights(self):
        np.testing.assert_array_equal(tricube_weights(np.zeros(4)), np.ones(4))

    def test_weights_positive(self):
        assert (tricube_weights(np.array([0.1, 5.0, 10.0])) > 0).all()


class TestLoess:
    def test_interpolates_smooth_function(self):
        rng = np.random.default_rng(2)
        X = np.sort(rng.uniform(0, 10, size=200)).reshape(-1, 1)
        y = np.sin(X[:, 0]) + rng.normal(scale=0.05, size=200)
        model = LoessRegression(n_neighbors=25).fit(X, y)
        grid = np.linspace(1, 9, 20).reshape(-1, 1)
        predictions = model.predict(grid)
        np.testing.assert_allclose(predictions, np.sin(grid[:, 0]), atol=0.15)

    def test_beats_global_line_on_curved_data(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-3, 3, size=(300, 1))
        y = X[:, 0] ** 2
        model = LoessRegression(n_neighbors=30).fit(X, y)
        grid = np.array([[-2.0], [0.0], [2.0]])
        np.testing.assert_allclose(model.predict(grid), [4.0, 0.0, 4.0], atol=0.5)

    def test_predict_one(self, noisy_linear):
        X, y = noisy_linear
        model = LoessRegression(n_neighbors=20).fit(X, y)
        assert model.predict_one(X[0]) == pytest.approx(model.predict(X[:1])[0])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LoessRegression().predict([[0.0]])

    def test_neighbors_capped_at_data_size(self):
        X = np.arange(5.0).reshape(-1, 1)
        y = 2 * np.arange(5.0)
        model = LoessRegression(n_neighbors=50).fit(X, y)
        assert model.predict_one([2.0]) == pytest.approx(4.0, abs=0.2)
