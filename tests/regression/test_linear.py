"""Tests for ridge regression, OLS and the shared regressor interface."""

import numpy as np
import pytest

from repro.exceptions import DataError, NotFittedError
from repro.regression import (
    OrdinaryLeastSquares,
    RidgeRegression,
    constant_model,
    design_matrix,
)


@pytest.fixture
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    coefficients = np.array([1.5, -2.0, 0.5, 3.0])  # intercept first
    y = design_matrix(X) @ coefficients
    return X, y, coefficients


class TestDesignMatrix:
    def test_prepends_ones(self):
        X = np.array([[2.0, 3.0]])
        np.testing.assert_array_equal(design_matrix(X), [[1.0, 2.0, 3.0]])


class TestRidgeRegression:
    def test_recovers_exact_linear_relation(self, linear_data):
        X, y, coefficients = linear_data
        model = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(model.coefficients, coefficients, atol=1e-8)

    def test_small_alpha_close_to_exact(self, linear_data):
        X, y, coefficients = linear_data
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        np.testing.assert_allclose(model.coefficients, coefficients, atol=1e-3)

    def test_predict_matches_manual_formula(self, linear_data):
        X, y, _ = linear_data
        model = RidgeRegression().fit(X, y)
        expected = design_matrix(X[:5]) @ model.coefficients
        np.testing.assert_allclose(model.predict(X[:5]), expected)

    def test_predict_one(self, linear_data):
        X, y, _ = linear_data
        model = RidgeRegression().fit(X, y)
        assert model.predict_one(X[0]) == pytest.approx(model.predict(X[:1])[0])

    def test_single_row_uses_constant_model(self):
        model = RidgeRegression().fit(np.array([[1.0, 2.0]]), np.array([7.0]))
        np.testing.assert_array_equal(model.coefficients, [7.0, 0.0, 0.0])
        assert model.predict_one([100.0, -50.0]) == pytest.approx(7.0)

    def test_regularization_shrinks_weights(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 2))
        y = X @ np.array([5.0, -5.0]) + rng.normal(scale=0.1, size=30)
        small = RidgeRegression(alpha=1e-6).fit(X, y)
        large = RidgeRegression(alpha=1e3).fit(X, y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)

    def test_collinear_features_do_not_crash(self):
        X = np.column_stack([np.arange(10.0), np.arange(10.0) * 2])
        y = np.arange(10.0)
        model = RidgeRegression(alpha=1e-3).fit(X, y)
        assert np.isfinite(model.coefficients).all()

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            RidgeRegression().predict([[1.0]])

    def test_wrong_width_predict_raises(self, linear_data):
        X, y, _ = linear_data
        model = RidgeRegression().fit(X, y)
        with pytest.raises(DataError):
            model.predict(np.zeros((2, 5)))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataError):
            RidgeRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_paper_example_phi_1(self):
        # Example 2 / 6 of the paper: the model of t1 learned over its 4
        # nearest neighbours {t1..t4} has phi ~= (5.56, -0.87).
        X = np.array([[0.0], [0.8], [1.9], [2.9]])
        y = np.array([5.8, 4.6, 3.8, 3.2])
        model = RidgeRegression(alpha=1e-3).fit(X, y)
        assert model.coefficients[0] == pytest.approx(5.56, abs=0.01)
        assert model.coefficients[1] == pytest.approx(-0.87, abs=0.01)


class TestOrdinaryLeastSquares:
    def test_matches_ridge_without_regularization(self, linear_data):
        X, y, _ = linear_data
        ols = OrdinaryLeastSquares().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ols.coefficients, ridge.coefficients, atol=1e-8)

    def test_single_row_constant(self):
        model = OrdinaryLeastSquares().fit(np.array([[3.0]]), np.array([2.5]))
        np.testing.assert_array_equal(model.coefficients, [2.5, 0.0])

    def test_intercept_and_weights_accessors(self, linear_data):
        X, y, coefficients = linear_data
        model = OrdinaryLeastSquares().fit(X, y)
        assert model.intercept == pytest.approx(coefficients[0])
        np.testing.assert_allclose(model.weights, coefficients[1:], atol=1e-8)


class TestConstantModel:
    def test_shape_and_values(self):
        phi = constant_model(4.2, 3)
        np.testing.assert_array_equal(phi, [4.2, 0.0, 0.0, 0.0])
