"""Tests for the clustering substrate: k-means, fuzzy c-means, GMM."""

import numpy as np
import pytest

from repro.cluster import FuzzyCMeans, GaussianMixture, KMeans
from repro.exceptions import ConfigurationError, NotFittedError
from repro.metrics import purity_score


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    labels = rng.integers(0, 3, size=300)
    points = centers[labels] + rng.normal(scale=0.7, size=(300, 2))
    return points, labels


class TestKMeans:
    def test_recovers_well_separated_blobs(self, blobs):
        points, truth = blobs
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        assert purity_score(truth, model.labels_) > 0.95

    def test_inertia_decreases_with_more_clusters(self, blobs):
        points, _ = blobs
        inertia_2 = KMeans(n_clusters=2, random_state=0).fit(points).inertia_
        inertia_6 = KMeans(n_clusters=6, random_state=0).fit(points).inertia_
        assert inertia_6 < inertia_2

    def test_predict_assigns_to_nearest_center(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        prediction = model.predict(np.array([[8.0, 8.0]]))
        center = model.cluster_centers_[prediction[0]]
        assert np.linalg.norm(center - [8.0, 8.0]) < 1.0

    def test_fit_predict_matches_labels(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=3, random_state=1)
        labels = model.fit_predict(points)
        np.testing.assert_array_equal(labels, model.labels_)

    def test_reproducible_with_seed(self, blobs):
        points, _ = blobs
        a = KMeans(n_clusters=3, random_state=5).fit(points).labels_
        b = KMeans(n_clusters=3, random_state=5).fit(points).labels_
        np.testing.assert_array_equal(a, b)

    def test_more_clusters_than_points_raises(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.zeros((1, 2)))

    def test_single_cluster(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=1, random_state=0).fit(points)
        np.testing.assert_allclose(model.cluster_centers_[0], points.mean(axis=0), atol=1e-6)


class TestFuzzyCMeans:
    def test_memberships_sum_to_one(self, blobs):
        points, _ = blobs
        model = FuzzyCMeans(n_clusters=3, random_state=0).fit(points)
        np.testing.assert_allclose(model.membership_.sum(axis=1), 1.0)

    def test_hard_assignment_recovers_blobs(self, blobs):
        points, truth = blobs
        labels = FuzzyCMeans(n_clusters=3, random_state=0).fit_predict(points)
        assert purity_score(truth, labels) > 0.9

    def test_predict_membership_new_points(self, blobs):
        points, _ = blobs
        model = FuzzyCMeans(n_clusters=3, random_state=0).fit(points)
        membership = model.predict_membership(np.array([[0.0, 0.0], [8.0, 8.0]]))
        np.testing.assert_allclose(membership.sum(axis=1), 1.0)
        # Each query should be dominated by one cluster.
        assert (membership.max(axis=1) > 0.6).all()

    def test_fuzziness_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            FuzzyCMeans(fuzziness=1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            FuzzyCMeans().predict(np.zeros((1, 2)))


class TestGaussianMixture:
    def test_recovers_blob_structure(self, blobs):
        points, truth = blobs
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        assert purity_score(truth, model.predict(points)) > 0.95

    def test_responsibilities_sum_to_one(self, blobs):
        points, _ = blobs
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        np.testing.assert_allclose(model.predict_proba(points[:20]).sum(axis=1), 1.0)

    def test_weights_sum_to_one(self, blobs):
        points, _ = blobs
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        assert model.weights_.sum() == pytest.approx(1.0)

    def test_log_likelihood_improves_over_random_model(self, blobs):
        points, _ = blobs
        fitted = GaussianMixture(n_components=3, random_state=0).fit(points)
        single = GaussianMixture(n_components=1, random_state=0).fit(points)
        assert fitted.score(points) > single.score(points)

    def test_diag_covariance_supported(self, blobs):
        points, truth = blobs
        model = GaussianMixture(n_components=3, covariance_type="diag", random_state=0).fit(points)
        assert purity_score(truth, model.predict(points)) > 0.9

    def test_sample_shape(self, blobs):
        points, _ = blobs
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        assert model.sample(25, random_state=1).shape == (25, 2)

    def test_invalid_covariance_type(self):
        with pytest.raises(ConfigurationError):
            GaussianMixture(covariance_type="spherical")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianMixture().predict(np.zeros((1, 2)))
