"""Tests for the CART regression tree and gradient boosting."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.trees import GradientBoostingRegressor, RegressionTree


@pytest.fixture
def step_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, size=(300, 1))
    y = np.where(X[:, 0] < 5, 1.0, 5.0) + rng.normal(scale=0.05, size=300)
    return X, y


@pytest.fixture
def friedman_like():
    rng = np.random.default_rng(1)
    X = rng.uniform(-2, 2, size=(400, 3))
    y = X[:, 0] ** 2 + 2 * np.sin(X[:, 1]) + X[:, 2] + rng.normal(scale=0.1, size=400)
    return X, y


class TestRegressionTree:
    def test_learns_step_function(self, step_data):
        X, y = step_data
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.predict(np.array([[2.0]]))[0] == pytest.approx(1.0, abs=0.2)
        assert tree.predict(np.array([[8.0]]))[0] == pytest.approx(5.0, abs=0.2)

    def test_depth_zero_predicts_mean(self, step_data):
        X, y = step_data
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.predict(np.array([[3.0]]))[0] == pytest.approx(y.mean())
        assert tree.n_leaves() == 1

    def test_deeper_tree_fits_training_data_better(self, friedman_like):
        X, y = friedman_like
        shallow = RegressionTree(max_depth=2).fit(X, y)
        deep = RegressionTree(max_depth=6).fit(X, y)
        mse_shallow = np.mean((shallow.predict(X) - y) ** 2)
        mse_deep = np.mean((deep.predict(X) - y) ** 2)
        assert mse_deep < mse_shallow

    def test_depth_respects_limit(self, friedman_like):
        X, y = friedman_like
        tree = RegressionTree(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self, step_data):
        X, y = step_data
        tree = RegressionTree(max_depth=8, min_samples_leaf=50).fit(X, y)
        # With 300 points and >=50 per leaf there can be at most 6 leaves.
        assert tree.n_leaves() <= 6

    def test_constant_target_single_leaf(self):
        X = np.arange(20.0).reshape(-1, 1)
        y = np.full(20, 3.0)
        tree = RegressionTree(max_depth=5).fit(X, y)
        assert tree.n_leaves() == 1
        assert tree.predict(np.array([[100.0]]))[0] == pytest.approx(3.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_max_features_subsampling_runs(self, friedman_like):
        X, y = friedman_like
        tree = RegressionTree(max_depth=4, max_features=1, random_state=0).fit(X, y)
        assert np.isfinite(tree.predict(X[:10])).all()


class TestGradientBoosting:
    def test_outperforms_single_tree(self, friedman_like):
        X, y = friedman_like
        tree = RegressionTree(max_depth=3).fit(X, y)
        boost = GradientBoostingRegressor(n_estimators=60, max_depth=3, random_state=0).fit(X, y)
        mse_tree = np.mean((tree.predict(X) - y) ** 2)
        mse_boost = np.mean((boost.predict(X) - y) ** 2)
        assert mse_boost < mse_tree

    def test_training_loss_decreases(self, friedman_like):
        X, y = friedman_like
        boost = GradientBoostingRegressor(n_estimators=40, random_state=0).fit(X, y)
        scores = boost.train_scores_
        assert scores[-1] < scores[0]

    def test_n_trees_matches_estimators(self, step_data):
        X, y = step_data
        boost = GradientBoostingRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert boost.n_trees == 15

    def test_reproducible_with_seed(self, step_data):
        X, y = step_data
        a = GradientBoostingRegressor(n_estimators=10, subsample=0.7, random_state=3).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=10, subsample=0.7, random_state=3).fit(X, y)
        np.testing.assert_allclose(a.predict(X[:5]), b.predict(X[:5]))

    def test_subsample_fraction_used(self, step_data):
        X, y = step_data
        boost = GradientBoostingRegressor(n_estimators=5, subsample=0.5, random_state=0).fit(X, y)
        assert np.isfinite(boost.predict(X[:5])).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))
