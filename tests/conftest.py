"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Relation, Schema, load_dataset, make_two_street_example
from repro.data.missing import inject_missing


@pytest.fixture
def figure1_relation() -> Relation:
    """The paper's running example (Figure 1): 8 complete tuples, 2 attributes."""
    return make_two_street_example()


@pytest.fixture
def small_linear_relation() -> Relation:
    """A tiny, exactly linear relation: A3 = 2*A1 - A2 + 1."""
    rng = np.random.default_rng(7)
    a1 = rng.uniform(-5, 5, size=60)
    a2 = rng.uniform(-5, 5, size=60)
    a3 = 2 * a1 - a2 + 1
    return Relation(np.column_stack([a1, a2, a3]), Schema(["A1", "A2", "A3"]))


@pytest.fixture
def asf_small() -> Relation:
    """A small ASF-like heterogeneous dataset."""
    return load_dataset("asf", size=200)


@pytest.fixture
def ca_small() -> Relation:
    """A small CA-like sparse high-dimensional dataset."""
    return load_dataset("ca", size=220)


@pytest.fixture
def asf_injection(asf_small):
    """ASF-like data with 5% of the tuples made incomplete."""
    return inject_missing(asf_small, fraction=0.05, random_state=0)
