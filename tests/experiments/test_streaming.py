"""Streaming scenario smoke tests (full-scale timing lives in benchmarks/)."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import get_profile, run_streaming


@pytest.fixture(scope="module")
def smoke_result():
    return run_streaming(
        dataset="sn",
        profile=get_profile("smoke"),
        size=240,
        n_rounds=4,
        queries_per_round=10,
        max_learning_neighbors=15,
        random_state=0,
    )


def test_streaming_replays_every_round(smoke_result):
    assert len(smoke_result.rounds) == 4
    assert smoke_result.rounds[-1].n_store == 240
    appended = sum(r.n_appended for r in smoke_result.rounds)
    assert appended == 240 - smoke_result.initial_store
    assert all(r.n_queries == 10 for r in smoke_result.rounds)
    assert smoke_result.engine_stats["appended_rows"] == 240


def test_streaming_online_matches_cold(smoke_result):
    """The engine is an optimisation, not an approximation."""
    for round_result in smoke_result.rounds:
        np.testing.assert_allclose(
            round_result.rms_online, round_result.rms_cold, rtol=1e-9
        )
    assert smoke_result.max_rms_gap <= 1e-9 * max(
        r.rms_cold for r in smoke_result.rounds
    )


def test_streaming_as_dict_is_json_shaped(smoke_result):
    report = smoke_result.as_dict()
    assert report["dataset"] == "sn"
    assert len(report["rounds"]) == 4
    for entry in report["rounds"]:
        assert set(entry) >= {
            "round", "n_store", "n_appended", "n_queries",
            "online_seconds", "cold_seconds", "speedup",
            "rms_online", "rms_cold",
        }
    assert report["speedup"] == smoke_result.speedup


def test_streaming_fixed_learning_runs():
    result = run_streaming(
        dataset="sn",
        profile=get_profile("smoke"),
        size=200,
        n_rounds=3,
        learning="fixed",
        queries_per_round=8,
        random_state=1,
        run_cold=False,
    )
    assert len(result.rounds) == 3
    assert all(np.isnan(r.rms_cold) for r in result.rounds)
    assert all(np.isfinite(r.rms_online) for r in result.rounds)


def test_streaming_rejects_degenerate_configs():
    profile = get_profile("smoke")
    with pytest.raises(ExperimentError):
        run_streaming(dataset="sn", profile=profile, size=100, initial_fraction=0.999)
    with pytest.raises(ExperimentError):
        run_streaming(dataset="sn", profile=profile, size=100, n_rounds=1000)
