"""Tests for the experiment harness, tables, figures, reporting and profiles."""

import numpy as np
import pytest

from repro.data import inject_missing, load_dataset
from repro.experiments import (
    PROFILES,
    compare_methods,
    default_method_overrides,
    figure8,
    figure9,
    figure11,
    figure12,
    figure13,
    format_series,
    format_table,
    get_profile,
    run_method_on_injection,
    table5,
    table6,
    table7,
)
from repro.baselines import make_imputer

SMOKE = PROFILES["smoke"]


@pytest.fixture(scope="module")
def small_injection():
    relation = load_dataset("asf", size=150)
    return inject_missing(relation, fraction=0.08, random_state=0)


class TestHarness:
    def test_run_method_records_timings_and_error(self, small_injection):
        run = run_method_on_injection(make_imputer("kNN", k=5), small_injection)
        assert not run.failed
        assert run.rms > 0
        assert run.fit_seconds >= 0
        assert run.impute_seconds > 0
        assert run.n_imputed == len(small_injection)

    def test_failed_method_is_recorded_not_raised(self, small_injection):
        # SVD is undefined for fewer than 2 complete attributes; force a
        # failure by running it on a two-attribute projection.
        relation = load_dataset("sn", size=120)
        injection = inject_missing(relation, fraction=0.1, random_state=0)
        run = run_method_on_injection(make_imputer("SVD"), injection)
        assert run.failed
        assert np.isnan(run.rms)

    def test_compare_methods_collects_all(self, small_injection):
        comparison = compare_methods(small_injection, ["Mean", "kNN", "GLR"], dataset_name="asf")
        assert set(comparison.runs) == {"Mean", "kNN", "GLR"}
        assert comparison.best_method() in {"Mean", "kNN", "GLR"}
        assert comparison.ranking()[0] == comparison.best_method()

    def test_default_overrides_align_k(self):
        overrides = default_method_overrides(SMOKE)
        assert overrides["kNN"]["k"] == SMOKE.default_k
        assert overrides["IIM"]["k"] == SMOKE.default_k


class TestProfiles:
    def test_three_profiles_registered(self):
        assert set(PROFILES) == {"smoke", "bench", "paper"}

    def test_paper_profile_matches_published_sizes(self):
        paper = PROFILES["paper"]
        assert paper.dataset_sizes["asf"] == 1500
        assert paper.dataset_sizes["sn"] == 100000
        assert paper.asf_incomplete == 100
        assert paper.ca_incomplete == 1000

    def test_get_profile_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert get_profile().name == "smoke"
        monkeypatch.delenv("REPRO_PROFILE")
        monkeypatch.setenv("REPRO_FULL", "1")
        assert get_profile().name == "paper"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("gigantic")


class TestTables:
    def test_table5_structure(self):
        result = table5(methods=["kNN", "GLR", "Mean"], datasets=("asf", "ca"), profile=SMOKE)
        assert set(result.rows) == {"asf", "ca"}
        assert result.rms("asf", "kNN") > 0
        assert "Table V" in result.render()
        # The dataset profile measures are attached for every dataset.
        assert -1.0 <= result.heterogeneity["ca"] <= 1.0

    def test_table5_shape_glr_beats_knn_on_sparse_ca(self):
        result = table5(methods=["kNN", "GLR"], datasets=("ca",), profile=SMOKE)
        assert result.rms("ca", "GLR") < result.rms("ca", "kNN")

    def test_table6_per_attribute_rows(self):
        result = table6(methods=["kNN", "GLR"], attributes=("A1", "A6"), profile=SMOKE)
        assert set(result.rows) == {"A1", "A6"}
        assert "Table VI" in result.render()

    def test_table7_structure(self):
        result = table7(
            methods=["Mean", "kNN"],
            clustering_datasets=("asf",),
            classification_datasets=("mam",),
            profile=SMOKE,
        )
        assert "Missing" in result.clustering["asf"]
        assert 0.0 <= result.clustering["asf"]["kNN"] <= 1.0
        assert 0.0 <= result.classification["mam"]["Mean"] <= 1.0
        assert "Table VII" in result.render()


class TestFigures:
    def test_figure9_series_lengths(self):
        result = figure9(methods=["kNN", "IIM"], profile=SMOKE)
        assert len(result.x_values) == len(result.rms_series("kNN"))
        assert len(result.x_values) == len(result.time_series("IIM"))
        assert "RMS" in result.render()

    def test_figure8_cluster_sweep(self):
        result = figure8(methods=["kNN", "GLR"], profile=SMOKE)
        assert result.x_values == SMOKE.cluster_sizes

    def test_figure11_contains_fixed_and_adaptive(self):
        results = figure11(datasets=("asf",), profile=SMOKE)
        asf = results["asf"]
        assert "Fixed l" in asf.rms
        assert "Adaptive" in asf.rms
        # The adaptive series is a constant reference line.
        assert len(set(np.round(asf.rms["Adaptive"], 12))) == 1

    def test_figure12_reports_both_variants(self):
        results = figure12(datasets=("ca",), profile=SMOKE, stepping=20)
        ca = results["ca"]
        assert set(ca.seconds) == {"Straightforward", "Incremental"}
        assert len(ca.x_values) == len(SMOKE.scalability_tuple_counts)

    def test_figure13_rms_and_times(self):
        result = figure13(profile=SMOKE)
        assert result.x_values == SMOKE.stepping_values
        assert set(result.seconds) == {"Straightforward", "Incremental"}
        assert all(np.isfinite(result.rms["IIM"]))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [["x", 1.23456], ["y", float("nan")]], title="T")
        assert "T" in text
        assert "1.235" in text
        assert "-" in text

    def test_format_series(self):
        text = format_series("k", [1, 2], {"kNN": [0.5, 0.25]})
        assert "kNN" in text
        assert "0.250" in text
