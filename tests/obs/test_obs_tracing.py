"""Tracer unit coverage: nesting, sampling, the ring, the JSONL sink."""

import json

import pytest

from repro import config
from repro.exceptions import ConfigurationError
from repro.obs import JsonlTraceSink, Tracer
from repro.obs.tracing import TRACE_SEGMENT_SUFFIX


@pytest.fixture
def tracer():
    return Tracer(sample=1.0)


class TestTraceIds:
    def test_ids_are_unique_and_ordered(self, tracer):
        first, second = tracer.new_trace_id(), tracer.new_trace_id()
        assert first != second
        prefix, counter = first.split("-")
        assert len(prefix) == 8
        assert int(counter, 16) + 1 == int(second.split("-")[1], 16)

    def test_current_trace_id_tracks_the_open_root(self, tracer):
        assert tracer.current_trace_id is None
        with tracer.trace("serve.ping", trace_id="abc-1"):
            assert tracer.current_trace_id == "abc-1"
        assert tracer.current_trace_id is None


class TestNesting:
    def test_parent_child_links_and_offsets(self, tracer):
        with tracer.trace("serve.impute", session="s"):
            with tracer.trace_span("engine.append"):
                pass
            with tracer.trace_span("engine.impute_kernel", rows=3):
                with tracer.trace_span("engine.cost_rebuild"):
                    pass
        (trace,) = tracer.recent()
        assert trace["root"] == "serve.impute"
        spans = {span["name"]: span for span in trace["spans"]}
        root = spans["serve.impute"]
        assert root["parent_id"] is None
        assert root["attrs"] == {"session": "s"}
        assert spans["engine.append"]["parent_id"] == root["span_id"]
        kernel = spans["engine.impute_kernel"]
        assert kernel["parent_id"] == root["span_id"]
        assert kernel["attrs"] == {"rows": 3}
        assert spans["engine.cost_rebuild"]["parent_id"] == kernel["span_id"]
        # Children close before the root, so the root's end bounds every
        # child's offset + duration (offsets are relative to trace start,
        # which slightly precedes the root span's own start).
        root_end = root["start_offset_seconds"] + root["duration_seconds"]
        for span in trace["spans"]:
            assert span["start_offset_seconds"] >= 0.0
            assert (
                span["start_offset_seconds"] + span["duration_seconds"]
                <= root_end + 1e-6
            )

    def test_span_outside_a_trace_is_a_noop(self, tracer):
        with tracer.trace_span("orphan"):
            pass
        assert tracer.recent() == []

    def test_root_inside_a_root_nests(self, tracer):
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        (trace,) = tracer.recent()
        assert trace["root"] == "outer"
        names = [span["name"] for span in trace["spans"]]
        assert sorted(names) == ["inner", "outer"]

    def test_exception_marks_the_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.trace("serve.impute"):
                raise ValueError("boom")
        (trace,) = tracer.recent()
        (span,) = trace["spans"]
        assert span["status"] == "error:ValueError"

    def test_non_scalar_attrs_are_dropped_from_the_record(self, tracer):
        with tracer.trace("root", ok="yes", bad=[1, 2], none=None):
            pass
        (trace,) = tracer.recent()
        assert trace["spans"][0]["attrs"] == {"ok": "yes", "none": None}


class TestRing:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        tracer = Tracer(ring_capacity=4, sample=1.0)
        for i in range(10):
            with tracer.trace(f"root-{i}"):
                pass
        roots = [trace["root"] for trace in tracer.recent()]
        assert roots == ["root-6", "root-7", "root-8", "root-9"]

    def test_recent_limit(self, tracer):
        for i in range(5):
            with tracer.trace(f"root-{i}"):
                pass
        assert [t["root"] for t in tracer.recent(2)] == ["root-3", "root-4"]
        assert tracer.recent(0) == []

    def test_reset_drops_the_ring(self, tracer):
        with tracer.trace("root"):
            pass
        tracer.reset()
        assert tracer.recent() == []

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            Tracer(ring_capacity=0)


class TestSampling:
    def test_sample_zero_captures_nothing(self):
        tracer = Tracer(sample=0.0)
        for _ in range(20):
            with tracer.trace("root"):
                pass
        assert tracer.recent() == []

    def test_unpinned_tracer_follows_the_config_knob(self):
        tracer = Tracer()
        config.set_obs_trace_sample(0.0)
        with tracer.trace("unsampled"):
            pass
        assert tracer.recent() == []
        config.set_obs_trace_sample(1.0)
        assert tracer.sample == 1.0
        with tracer.trace("sampled"):
            pass
        assert [t["root"] for t in tracer.recent()] == ["sampled"]

    def test_disabled_obs_short_circuits_tracing(self, tracer):
        config.set_obs_enabled(False)
        with tracer.trace("root"):
            pass
        assert tracer.recent() == []

    def test_configure_validates_the_rate(self, tracer):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            tracer.configure(sample=1.5)


class TestJsonlSink:
    def test_traces_append_one_json_line_each(self, tmp_path, tracer):
        sink = JsonlTraceSink(tmp_path / "traces")
        tracer.configure(sink=sink)
        with tracer.trace("serve.ping", trace_id="t-1"):
            pass
        sink.close()
        (segment,) = sink.segments()
        assert segment.name == "00000001" + TRACE_SEGMENT_SUFFIX
        (line,) = segment.read_text().splitlines()
        record = json.loads(line)
        assert record["trace_id"] == "t-1"
        assert record["root"] == "serve.ping"
        assert record["spans"][0]["status"] == "ok"

    def test_segments_rotate_at_the_record_cap(self, tmp_path, tracer):
        sink = JsonlTraceSink(tmp_path / "traces", max_records_per_segment=3)
        tracer.configure(sink=sink)
        for i in range(7):
            with tracer.trace(f"root-{i}"):
                pass
        sink.close()
        segments = sink.segments()
        assert [s.name for s in segments] == [
            "00000001" + TRACE_SEGMENT_SUFFIX,
            "00000002" + TRACE_SEGMENT_SUFFIX,
            "00000003" + TRACE_SEGMENT_SUFFIX,
        ]
        counts = [len(s.read_text().splitlines()) for s in segments]
        assert counts == [3, 3, 1]

    def test_reopening_continues_the_segment_sequence(self, tmp_path):
        directory = tmp_path / "traces"
        JsonlTraceSink(directory).close()
        sink = JsonlTraceSink(directory)
        sink.close()
        assert sink.segments()[-1].name == "00000002" + TRACE_SEGMENT_SUFFIX

    def test_write_after_close_is_a_noop(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "traces")
        sink.close()
        sink.write({"trace_id": "t"})  # must not raise

    def test_segment_cap_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="segment size"):
            JsonlTraceSink(tmp_path / "traces", max_records_per_segment=0)

    def test_context_manager_closes(self, tmp_path):
        with JsonlTraceSink(tmp_path / "traces") as sink:
            pass
        assert sink._handle is None
