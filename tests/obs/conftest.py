"""Shared isolation for observability tests.

The registry and tracer are process-wide singletons; every test here runs
against a clean slate and leaves the config knobs exactly as it found them.
"""

import pytest

from repro import config
from repro.obs import get_tracer, reset_observability


@pytest.fixture(autouse=True)
def clean_observability():
    tracer = get_tracer()
    previous_enabled = config.get_obs_enabled()
    previous_sample = config.get_obs_trace_sample()
    previous_pinned = tracer._sample
    previous_sink = tracer.sink
    config.set_obs_enabled(True)
    reset_observability()
    yield
    tracer._sample = previous_pinned
    tracer.sink = previous_sink
    config.set_obs_enabled(previous_enabled)
    config.set_obs_trace_sample(previous_sample)
    reset_observability()
