"""Metrics registry unit coverage: counters, histograms, snapshots, text."""

import re
import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestRegistration:
    def test_same_family_is_returned_once(self, registry):
        a = registry.counter("repro_events_total", "events", ("kind",))
        b = registry.counter("repro_events_total", "events", ("kind",))
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("repro_thing", "a counter")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("repro_thing", "now a gauge")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("repro_thing_total", "c", ("a",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("repro_thing_total", "c", ("a", "b"))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="invalid metric name"):
            registry.counter("0bad-name")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="invalid label name"):
            registry.counter("repro_ok_total", labelnames=("le gal",))

    def test_duplicate_label_names_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.counter("repro_ok_total", labelnames=("a", "a"))

    def test_bad_buckets_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="strictly"):
            registry.histogram("repro_h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="strictly"):
            registry.histogram("repro_h2", buckets=())


class TestCounterAndGauge:
    def test_counter_accumulates_per_label_set(self, registry):
        counter = registry.counter("repro_events_total", "e", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="never") == 0.0

    def test_counter_cannot_decrease(self, registry):
        counter = registry.counter("repro_events_total")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("repro_events_total", "e", ("kind",))
        with pytest.raises(ConfigurationError, match="takes labels"):
            counter.inc(flavor="a")
        with pytest.raises(ConfigurationError, match="takes labels"):
            counter.inc()

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("repro_open")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0

    def test_counter_is_thread_safe(self, registry):
        counter = registry.counter("repro_events_total")
        n_threads, n_increments = 8, 5000

        def work():
            for _ in range(n_increments):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == n_threads * n_increments


class TestHistogram:
    def test_bucket_bounds_are_le_inclusive(self, registry):
        histogram = registry.histogram("repro_h", buckets=(1.0, 2.0))
        histogram.observe(1.0)   # exactly on a bound: belongs to le="1.0"
        histogram.observe(1.5)
        histogram.observe(99.0)  # above the last bound: +Inf bucket
        series = histogram._series[()]
        assert series.counts == [1, 1, 1]
        assert series.count == 3

    def test_quantiles_match_numpy_within_one_bucket(self, registry):
        rng = np.random.default_rng(11)
        samples = rng.gamma(shape=2.0, scale=0.004, size=4000)
        histogram = registry.histogram("repro_h")
        for value in samples:
            histogram.observe(float(value))
        bounds = (0.0,) + DEFAULT_LATENCY_BUCKETS
        for q in (0.50, 0.95, 0.99):
            estimated = histogram.quantile(q)
            exact = float(np.percentile(samples, q * 100))
            # The estimate interpolates inside the bucket the exact value
            # falls in, so it can be off by at most that bucket's width.
            index = int(np.searchsorted(DEFAULT_LATENCY_BUCKETS, exact))
            width = bounds[index + 1] - bounds[index]
            assert abs(estimated - exact) <= width, (q, estimated, exact)

    def test_quantile_of_empty_series_is_none(self, registry):
        histogram = registry.histogram("repro_h")
        assert histogram.quantile(0.5) is None
        summary = histogram.summary()
        assert summary == {
            "count": 0, "sum": 0.0, "p50": None, "p95": None, "p99": None,
        }

    def test_quantile_range_validated(self, registry):
        histogram = registry.histogram("repro_h")
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            histogram.quantile(1.5)

    def test_overflow_quantile_clamps_to_last_bound(self, registry):
        histogram = registry.histogram("repro_h", buckets=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(50.0)
        assert histogram.quantile(0.99) == 2.0

    def test_summary_counts_and_sum(self, registry):
        histogram = registry.histogram("repro_h", labelnames=("cmd",))
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value, cmd="ping")
        summary = histogram.summary(cmd="ping")
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.006)
        assert 0.0 < summary["p50"] <= 0.0025

    def test_observe_is_thread_safe(self, registry):
        histogram = registry.histogram("repro_h")
        n_threads, n_observations = 8, 5000

        def work():
            for i in range(n_observations):
                histogram.observe(0.0001 * (i % 50))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        series = histogram._series[()]
        assert series.count == n_threads * n_observations
        assert sum(series.counts) == n_threads * n_observations


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_events_total")
        gauge = registry.gauge("repro_open")
        histogram = registry.histogram("repro_h")
        counter.inc()
        gauge.set(3)
        histogram.observe(0.01)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert histogram.summary()["count"] == 0

    def test_deferred_registry_follows_the_config_knob(self):
        from repro import config

        registry = MetricsRegistry()  # enabled=None: defer to the knob
        counter = registry.counter("repro_events_total")
        config.set_obs_enabled(False)
        counter.inc()
        assert counter.value() == 0.0
        config.set_obs_enabled(True)
        counter.inc()
        assert counter.value() == 1.0


class TestReset:
    def test_reset_zeroes_series_but_keeps_families(self, registry):
        counter = registry.counter("repro_events_total", "e", ("kind",))
        counter.inc(kind="a")
        registry.reset()
        assert counter.value(kind="a") == 0.0
        assert registry.counter("repro_events_total", "e", ("kind",)) is counter


class TestSnapshot:
    def test_snapshot_is_json_safe_and_complete(self, registry):
        import json

        registry.counter("repro_events_total", "e", ("kind",)).inc(kind="a")
        registry.gauge("repro_open", "o").set(2)
        registry.histogram("repro_h", "h", ("cmd",)).observe(0.004, cmd="x")
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"]["repro_events_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 1.0}
        ]
        assert snapshot["gauges"]["repro_open"]["series"][0]["value"] == 2.0
        histogram = snapshot["histograms"]["repro_h"]
        assert histogram["buckets"] == list(DEFAULT_LATENCY_BUCKETS)
        (series,) = histogram["series"]
        assert series["labels"] == {"cmd": "x"}
        assert series["count"] == 1


#: One Prometheus text line: comment, or `name{labels} value`.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?[0-9.e+-]+(inf)?$"
)


class TestPrometheusText:
    def test_every_line_is_well_formed(self, registry):
        registry.counter("repro_events_total", "e", ("kind",)).inc(kind="a")
        registry.histogram("repro_h", "h", ("cmd",)).observe(0.004, cmd="x")
        registry.gauge("repro_open", "sessions").set(1)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_LINE.match(line), line

    def test_help_and_type_appear_once_per_family(self, registry):
        histogram = registry.histogram("repro_h", "h", ("cmd",))
        histogram.observe(0.004, cmd="x")
        histogram.observe(0.004, cmd="y")
        text = registry.to_prometheus()
        assert text.count("# HELP repro_h ") == 1
        assert text.count("# TYPE repro_h histogram") == 1

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self, registry):
        histogram = registry.histogram("repro_h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 101" in text
        assert "repro_h_count 3" in text

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("repro_events_total", "e", ("kind",))
        counter.inc(kind='we"ird\\new\nline')
        text = registry.to_prometheus()
        assert 'kind="we\\"ird\\\\new\\nline"' in text

    def test_help_text_is_escaped(self, registry):
        registry.counter("repro_events_total", "multi\nline \\help").inc()
        text = registry.to_prometheus()
        assert "# HELP repro_events_total multi\\nline \\\\help" in text

    def test_integer_values_render_without_decimal_point(self, registry):
        registry.counter("repro_events_total").inc(3)
        assert "repro_events_total 3\n" in registry.to_prometheus()


class TestExports:
    def test_instrument_classes_are_public(self):
        assert issubclass(Counter, object)
        assert issubclass(Gauge, object)
        assert issubclass(Histogram, object)
