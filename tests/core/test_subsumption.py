"""Propositions 1 and 2: IIM subsumes kNN (ℓ=1) and GLR (ℓ=n)."""

import numpy as np
import pytest

from repro.baselines import GLRImputer, KNNImputer
from repro.core import IIMImputer
from repro.data import Relation, inject_missing, load_dataset


@pytest.fixture(params=["asf", "ca", "ccpp"])
def injection(request):
    relation = load_dataset(request.param, size=150)
    return inject_missing(relation, fraction=0.08, random_state=0)


class TestProposition1SubsumeKNN:
    """IIM with ℓ=1 and uniform combination weights equals kNN imputation."""

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_equals_knn_for_various_k(self, injection, k):
        iim = IIMImputer(k=k, learning="fixed", learning_neighbors=1, combination="uniform")
        knn = KNNImputer(k=k, weighting="uniform")
        iim_values = iim.fit(injection.dirty).impute_cells(injection)
        knn_values = knn.fit(injection.dirty).impute_cells(injection)
        np.testing.assert_allclose(iim_values, knn_values, rtol=1e-10)

    def test_voting_weights_generally_differ_from_knn(self, injection):
        # With the paper's voting weights the equality no longer holds in
        # general (the weights are not uniform), confirming the proposition's
        # requirement of uniform weights.
        iim = IIMImputer(k=5, learning="fixed", learning_neighbors=1, combination="voting")
        knn = KNNImputer(k=5)
        iim_values = iim.fit(injection.dirty).impute_cells(injection)
        knn_values = knn.fit(injection.dirty).impute_cells(injection)
        assert not np.allclose(iim_values, knn_values)


class TestProposition2SubsumeGLR:
    """IIM with ℓ = n (all complete tuples) equals GLR imputation."""

    def test_equals_glr(self, injection):
        n_complete = injection.dirty.complete_part().n_tuples
        iim = IIMImputer(k=5, learning="fixed", learning_neighbors=n_complete)
        glr = GLRImputer()
        iim_values = iim.fit(injection.dirty).impute_cells(injection)
        glr_values = glr.fit(injection.dirty).impute_cells(injection)
        np.testing.assert_allclose(iim_values, glr_values, rtol=1e-8)

    def test_equality_holds_regardless_of_k(self, injection):
        n_complete = injection.dirty.complete_part().n_tuples
        glr_values = GLRImputer().fit(injection.dirty).impute_cells(injection)
        for k in (1, 4, 9):
            iim = IIMImputer(k=k, learning="fixed", learning_neighbors=n_complete)
            iim_values = iim.fit(injection.dirty).impute_cells(injection)
            np.testing.assert_allclose(iim_values, glr_values, rtol=1e-8)

    def test_equality_on_figure1_example(self, figure1_relation):
        # Blank tx's A2 in a relation extended with tx = (5, 1.8).
        values = np.vstack([figure1_relation.raw, [5.0, 1.8]])
        relation = Relation(values, figure1_relation.schema)
        from repro.data.missing import inject_missing_cells

        injection = inject_missing_cells(relation, [(8, "A2")])
        iim = IIMImputer(k=3, learning="fixed", learning_neighbors=8)
        glr = GLRImputer()
        iim_value = iim.fit(injection.dirty).impute_cells(injection)[0]
        glr_value = glr.fit(injection.dirty).impute_cells(injection)[0]
        assert iim_value == pytest.approx(glr_value, rel=1e-9)
