"""Tests for the candidate-combination schemes (Formulas 10-12)."""

import numpy as np
import pytest

from repro.core import (
    COMBINERS,
    candidate_vote_weights,
    combine_distance,
    combine_uniform,
    combine_voting,
    get_combiner,
)
from repro.exceptions import ConfigurationError, DataError


class TestVoteWeights:
    def test_weights_sum_to_one(self):
        weights = candidate_vote_weights(np.array([1.0, 1.2, 5.0]))
        assert weights.sum() == pytest.approx(1.0)

    def test_agreeing_candidates_get_higher_weight(self):
        # Formula 11/12: the outlying candidate receives the lowest weight.
        weights = candidate_vote_weights(np.array([1.0, 1.1, 9.0]))
        assert weights[2] == weights.min()
        assert weights[0] > weights[2]
        assert weights[1] > weights[2]

    def test_single_candidate_full_weight(self):
        np.testing.assert_array_equal(candidate_vote_weights(np.array([3.0])), [1.0])

    def test_identical_candidates_uniform_weights(self):
        weights = candidate_vote_weights(np.array([2.0, 2.0, 2.0]))
        np.testing.assert_allclose(weights, 1.0 / 3.0)

    def test_paper_example_3_weights(self):
        # Candidates 1.19, 1.21, 1.19 -> weights 50/125, 25/125, 50/125.
        weights = candidate_vote_weights(np.array([1.19, 1.21, 1.19]))
        np.testing.assert_allclose(weights, [0.4, 0.2, 0.4], atol=1e-9)


class TestCombiners:
    def test_voting_matches_paper_example_3(self):
        value, weights = combine_voting(np.array([1.19, 1.21, 1.19]))
        assert value == pytest.approx(1.194, abs=1e-3)
        np.testing.assert_allclose(weights, [0.4, 0.2, 0.4], atol=1e-9)

    def test_uniform_is_plain_mean(self):
        value, weights = combine_uniform(np.array([1.0, 2.0, 6.0]))
        assert value == pytest.approx(3.0)
        np.testing.assert_allclose(weights, 1.0 / 3.0)

    def test_voting_between_min_and_max(self):
        candidates = np.array([0.5, 2.0, 10.0])
        value, _ = combine_voting(candidates)
        assert candidates.min() <= value <= candidates.max()

    def test_distance_combiner_prefers_close_neighbor(self):
        candidates = np.array([1.0, 5.0])
        value, _ = combine_distance(candidates, np.array([0.1, 10.0]))
        assert value < 2.0

    def test_distance_combiner_zero_distance_takes_all(self):
        value, weights = combine_distance(np.array([1.0, 5.0]), np.array([0.0, 1.0]))
        assert value == pytest.approx(1.0)
        np.testing.assert_allclose(weights, [1.0, 0.0])

    def test_combiner_value_matches_weighted_candidates(self):
        # The returned weights are exactly the ones that produced the value,
        # so callers (e.g. the imputation trace) can reuse them directly.
        candidates = np.array([0.8, 1.4, 1.1, 7.0])
        distances = np.array([0.2, 0.4, 0.9, 1.5])
        for name, combiner in COMBINERS.items():
            value, weights = combiner(candidates, distances)
            assert weights.sum() == pytest.approx(1.0)
            assert value == pytest.approx(float(candidates @ weights))

    def test_distance_combiner_requires_distances(self):
        with pytest.raises(DataError):
            combine_distance(np.array([1.0, 2.0]))

    def test_distance_combiner_alignment_checked(self):
        with pytest.raises(DataError):
            combine_distance(np.array([1.0, 2.0]), np.array([1.0]))

    def test_registry_contains_three_schemes(self):
        assert set(COMBINERS) == {"voting", "uniform", "distance"}

    def test_get_combiner_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_combiner("median")
