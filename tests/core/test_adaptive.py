"""Tests for adaptive learning (Algorithm 3) and its incremental computation."""

import numpy as np
import pytest

from repro.core import adaptive_learning, learn_individual_models
from repro.exceptions import ConfigurationError


@pytest.fixture
def figure1_arrays(figure1_relation):
    values = figure1_relation.raw
    return values[:, :1], values[:, 1]


@pytest.fixture
def heterogeneous_arrays():
    rng = np.random.default_rng(0)
    x = np.sort(rng.uniform(0, 10, size=120)).reshape(-1, 1)
    # Two regimes with different slopes (heterogeneity).
    y = np.where(x[:, 0] < 5, 2.0 * x[:, 0], 20.0 - 1.5 * x[:, 0])
    y += rng.normal(scale=0.05, size=120)
    return x, y


class TestAdaptiveLearning:
    def test_selects_per_tuple_ell_from_candidates(self, figure1_arrays):
        features, target = figure1_arrays
        result = adaptive_learning(features, target, validation_neighbors=3,
                                   include_global=False)
        assert set(result.chosen_ell).issubset(set(result.candidates.tolist()))
        assert result.models.parameters.shape == (8, 2)

    def test_costs_shape_matches_candidates(self, figure1_arrays):
        features, target = figure1_arrays
        result = adaptive_learning(features, target, validation_neighbors=3,
                                   include_global=False)
        assert result.costs.shape == (8, result.candidates.shape[0])

    def test_paper_example_4_cost_selection(self, figure1_arrays):
        # For tuple t2 the minimum validation cost is attained at ℓ = 4.
        features, target = figure1_arrays
        result = adaptive_learning(features, target, validation_neighbors=3,
                                   include_global=False)
        assert result.chosen_ell[1] == 4
        np.testing.assert_allclose(result.models.parameters[1], [5.56, -0.87], atol=0.02)

    def test_chosen_model_matches_fixed_learning_at_that_ell(self, figure1_arrays):
        features, target = figure1_arrays
        result = adaptive_learning(features, target, validation_neighbors=3,
                                   include_global=False)
        for i, ell in enumerate(result.chosen_ell):
            fixed = learn_individual_models(features, target, int(ell))
            np.testing.assert_allclose(result.models.parameters[i], fixed.parameters[i], atol=1e-8)

    def test_incremental_equals_straightforward(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        kwargs = dict(validation_neighbors=5, stepping=7)
        a = adaptive_learning(features, target, incremental=True, **kwargs)
        b = adaptive_learning(features, target, incremental=False, **kwargs)
        np.testing.assert_array_equal(a.chosen_ell, b.chosen_ell)
        np.testing.assert_allclose(a.models.parameters, b.models.parameters, atol=1e-7)
        np.testing.assert_allclose(a.costs, b.costs, rtol=1e-6)

    def test_stepping_reduces_candidate_count(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        fine = adaptive_learning(features, target, stepping=1, max_ell=40, include_global=False)
        coarse = adaptive_learning(features, target, stepping=10, max_ell=40, include_global=False)
        assert coarse.candidates.shape[0] < fine.candidates.shape[0]

    def test_prefers_local_models_on_heterogeneous_data(self, heterogeneous_arrays):
        # With two regimes of ~60 tuples each, the selected ℓ should stay well
        # below n for the vast majority of tuples (picking ℓ=n would mix regimes).
        features, target = heterogeneous_arrays
        result = adaptive_learning(features, target, validation_neighbors=10, stepping=5)
        assert np.median(result.chosen_ell) < 80

    def test_global_candidate_appended(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        result = adaptive_learning(
            features, target, stepping=10, max_ell=30, include_global=True
        )
        assert result.candidates[-1] == features.shape[0]

    def test_global_candidate_not_duplicated(self, figure1_arrays):
        features, target = figure1_arrays
        result = adaptive_learning(features, target, stepping=1, include_global=True)
        assert (result.candidates == 8).sum() == 1

    def test_explicit_candidates(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        result = adaptive_learning(
            features, target, candidates=[2, 10, 30], include_global=False
        )
        np.testing.assert_array_equal(result.candidates, [2, 10, 30])

    def test_empty_candidates_rejected(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        with pytest.raises(ConfigurationError):
            adaptive_learning(features, target, candidates=[])

    def test_validation_counts_recorded(self, heterogeneous_arrays):
        features, target = heterogeneous_arrays
        result = adaptive_learning(features, target, validation_neighbors=5, stepping=10)
        assert result.validation_counts.sum() > 0
        assert result.validation_counts.shape == (120,)
