"""Equivalence of the vectorized batch kernels and the reference loops.

Every hot-path kernel exists twice (see :mod:`repro.config`): the batched
``"vectorized"`` implementation and the original per-tuple ``"loop"``
reference.  These tests assert the two agree to ``rtol = 1e-9`` across the
learning variants (fixed/adaptive, incremental on/off), all three candidate
combiners, and the self-exclusion edge cases, on data salted with duplicate
rows so distance ties are actually exercised.
"""

import numpy as np
import pytest

import repro
from repro.config import resolve_backend, use_backend
from repro.core.adaptive import adaptive_learning
from repro.core.imputation import impute_with_individual_models
from repro.core.learning import learn_individual_models, learn_models_for_candidates
from repro.data.missing import inject_missing
from repro.exceptions import ConfigurationError

RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(scope="module")
def tied_data():
    """Random features/target with duplicated rows (distance ties)."""
    rng = np.random.default_rng(42)
    features = rng.normal(size=(90, 3))
    features[7] = features[2]
    features[41] = features[2]
    features[60] = features[59]
    target = features @ np.array([1.5, -2.0, 0.5]) + rng.normal(scale=0.2, size=90)
    return features, target


@pytest.fixture(scope="module")
def queries(tied_data):
    features, _ = tied_data
    rng = np.random.default_rng(7)
    # A mix of unseen points and exact copies of indexed rows.
    return np.vstack([rng.normal(size=(6, 3)), features[3], features[2]])


class TestConfigKnob:
    def test_default_backend_is_vectorized(self):
        assert repro.get_backend() in repro.BACKENDS

    def test_use_backend_restores_previous(self):
        before = repro.get_backend()
        with use_backend("loop"):
            assert repro.get_backend() == "loop"
        assert repro.get_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.set_backend("gpu")
        with pytest.raises(ConfigurationError):
            resolve_backend("nope")


class TestLearningEquivalence:
    @pytest.mark.parametrize("ell", [1, 2, 13, 90])
    def test_fixed_learning(self, tied_data, ell):
        features, target = tied_data
        loop = learn_individual_models(features, target, ell, backend="loop")
        fast = learn_individual_models(features, target, ell, backend="vectorized")
        np.testing.assert_allclose(
            fast.parameters, loop.parameters, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_array_equal(fast.learning_neighbors, loop.learning_neighbors)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_candidate_learning(self, tied_data, incremental):
        features, target = tied_data
        candidates = [1, 4, 9, 25, 60]
        loop = learn_models_for_candidates(
            features, target, candidates, incremental=incremental, backend="loop"
        )
        fast = learn_models_for_candidates(
            features, target, candidates, incremental=incremental, backend="vectorized"
        )
        np.testing.assert_allclose(fast, loop, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("alpha", [0.0, 1e-3])
    def test_candidate_learning_alpha_paths(self, tied_data, alpha):
        features, target = tied_data
        loop = learn_models_for_candidates(
            features, target, [1, 10, 30], alpha=alpha, backend="loop"
        )
        fast = learn_models_for_candidates(
            features, target, [1, 10, 30], alpha=alpha, backend="vectorized"
        )
        np.testing.assert_allclose(fast, loop, rtol=RTOL, atol=1e-9)

    def test_global_knob_selects_backend(self, tied_data):
        features, target = tied_data
        with use_backend("loop"):
            loop = learn_models_for_candidates(features, target, [1, 8])
        with use_backend("vectorized"):
            fast = learn_models_for_candidates(features, target, [1, 8])
        np.testing.assert_allclose(fast, loop, rtol=RTOL, atol=ATOL)


class TestAdaptiveEquivalence:
    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("stepping", [1, 7])
    def test_adaptive_learning(self, tied_data, incremental, stepping):
        features, target = tied_data
        loop = adaptive_learning(
            features,
            target,
            validation_neighbors=6,
            stepping=stepping,
            max_ell=40,
            incremental=incremental,
            backend="loop",
        )
        fast = adaptive_learning(
            features,
            target,
            validation_neighbors=6,
            stepping=stepping,
            max_ell=40,
            incremental=incremental,
            backend="vectorized",
        )
        np.testing.assert_array_equal(fast.candidates, loop.candidates)
        np.testing.assert_array_equal(fast.validation_counts, loop.validation_counts)
        np.testing.assert_allclose(fast.costs, loop.costs, rtol=RTOL, atol=ATOL)
        np.testing.assert_array_equal(fast.chosen_ell, loop.chosen_ell)
        np.testing.assert_allclose(
            fast.models.parameters, loop.models.parameters, rtol=RTOL, atol=ATOL
        )


class TestImputationEquivalence:
    @pytest.mark.parametrize("combination", ["voting", "uniform", "distance"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_batch_imputation(self, tied_data, queries, combination, k):
        features, target = tied_data
        models = adaptive_learning(
            features, target, validation_neighbors=5, stepping=10, backend="loop"
        ).models
        loop = impute_with_individual_models(
            queries, models, features, target, k, combination=combination, backend="loop"
        )
        fast = impute_with_individual_models(
            queries, models, features, target, k, combination=combination,
            backend="vectorized",
        )
        np.testing.assert_allclose(fast, loop, rtol=RTOL, atol=ATOL)

    def test_empty_query_batch_rejected(self, tied_data):
        from repro.exceptions import DataError

        features, target = tied_data
        models = learn_individual_models(features, target, 3)
        with pytest.raises(DataError):
            impute_with_individual_models(
                np.empty((0, features.shape[1])), models, features, target, 3
            )


class TestImputerEquivalence:
    @pytest.mark.parametrize("learning", ["fixed", "adaptive"])
    def test_end_to_end(self, asf_small, learning):
        injection = inject_missing(asf_small, fraction=0.05, random_state=3)
        kwargs = dict(k=5, learning=learning, stepping=10, max_learning_neighbors=30)
        if learning == "fixed":
            kwargs["learning_neighbors"] = 8
        loop = repro.IIMImputer(backend="loop", **kwargs)
        fast = repro.IIMImputer(backend="vectorized", **kwargs)
        imputed_loop = loop.fit(injection.dirty).impute(injection.dirty)
        imputed_fast = fast.fit(injection.dirty).impute(injection.dirty)
        np.testing.assert_allclose(
            imputed_fast.raw, imputed_loop.raw, rtol=RTOL, atol=ATOL
        )
