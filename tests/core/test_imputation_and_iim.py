"""Tests for the imputation phase (Algorithm 2) and the IIMImputer facade."""

import numpy as np
import pytest

from repro.core import (
    IIMImputer,
    ImputationTrace,
    impute_one,
    impute_with_individual_models,
    learn_individual_models,
)
from repro.data import inject_missing, load_dataset
from repro.exceptions import ConfigurationError
from repro.metrics import rms_error


@pytest.fixture
def figure1_setup(figure1_relation):
    values = figure1_relation.raw
    features, target = values[:, :1], values[:, 1]
    models = learn_individual_models(features, target, ell=4)
    return features, target, models


class TestImputeOne:
    def test_paper_example_3_value(self, figure1_setup):
        features, target, models = figure1_setup
        value = impute_one(np.array([5.0]), models, features, target, k=3)
        assert value == pytest.approx(1.19, abs=0.02)

    def test_much_closer_to_truth_than_knn_in_example(self, figure1_setup):
        # Truth of tx[A2] is 1.8; kNN (mean of t4,t5,t6) gives ~3.43.
        features, target, models = figure1_setup
        iim_value = impute_one(np.array([5.0]), models, features, target, k=3)
        knn_value = target[[3, 4, 5]].mean()
        assert abs(iim_value - 1.8) < abs(knn_value - 1.8)

    def test_trace_contents(self, figure1_setup):
        features, target, models = figure1_setup
        trace = impute_one(np.array([5.0]), models, features, target, k=3, return_trace=True)
        assert isinstance(trace, ImputationTrace)
        assert set(trace.neighbor_indices.tolist()) == {3, 4, 5}
        assert trace.weights.sum() == pytest.approx(1.0)
        assert trace.candidates.shape == (3,)

    def test_k_larger_than_data_rejected(self, figure1_setup):
        features, target, models = figure1_setup
        with pytest.raises(ConfigurationError):
            impute_one(np.array([5.0]), models, features, target, k=100)

    def test_combination_schemes_give_finite_values(self, figure1_setup):
        features, target, models = figure1_setup
        for scheme in ("voting", "uniform", "distance"):
            value = impute_one(
                np.array([5.0]), models, features, target, k=3, combination=scheme
            )
            assert np.isfinite(value)

    def test_batch_helper_matches_single_calls(self, figure1_setup):
        features, target, models = figure1_setup
        queries = np.array([[5.0], [1.0]])
        batch = impute_with_individual_models(queries, models, features, target, k=3)
        singles = [impute_one(q, models, features, target, k=3) for q in queries]
        np.testing.assert_allclose(batch, singles)


class TestIIMImputerConfiguration:
    def test_fixed_learning_requires_ell(self):
        with pytest.raises(ConfigurationError):
            IIMImputer(learning="fixed")

    def test_invalid_learning_mode(self):
        with pytest.raises(ConfigurationError):
            IIMImputer(learning="magic")

    def test_invalid_combination(self):
        with pytest.raises(ConfigurationError):
            IIMImputer(combination="median")

    def test_name_is_iim(self):
        assert IIMImputer().name == "IIM"


class TestIIMImputerBehaviour:
    def test_imputes_all_missing_cells(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=15)
        imputed = imputer.fit(asf_injection.dirty).impute(asf_injection.dirty)
        assert imputed.is_complete()

    def test_adaptive_better_than_worst_fixed(self, asf_injection):
        # Adaptive learning must not be worse than both extreme fixed settings.
        errors = {}
        for label, kwargs in {
            "ell1": dict(learning="fixed", learning_neighbors=1),
            "elln": dict(learning="fixed", learning_neighbors=180),
            "adaptive": dict(learning="adaptive", stepping=10, max_learning_neighbors=60),
        }.items():
            imputer = IIMImputer(k=5, **kwargs)
            values = imputer.fit(asf_injection.dirty).impute_cells(asf_injection)
            errors[label] = rms_error(asf_injection.truth, values)
        assert errors["adaptive"] <= max(errors["ell1"], errors["elln"])

    def test_learning_neighbors_clamped_to_n(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=10**6)
        imputed = imputer.fit(asf_injection.dirty).impute(asf_injection.dirty)
        assert imputed.is_complete()

    def test_learned_models_accessible_after_impute(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=10)
        imputer.fit(asf_injection.dirty).impute(asf_injection.dirty)
        target_index = int(asf_injection.attributes[0])
        models = imputer.learned_models(target_index)
        assert models.n_models == asf_injection.dirty.complete_part().n_tuples

    def test_learned_models_before_impute_raises(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=10)
        imputer.fit(asf_injection.dirty)
        with pytest.raises(ConfigurationError):
            imputer.learned_models(0)

    def test_adaptive_result_diagnostics(self, asf_injection):
        imputer = IIMImputer(k=5, learning="adaptive", stepping=20, max_learning_neighbors=60)
        imputer.fit(asf_injection.dirty).impute(asf_injection.dirty)
        target_index = int(asf_injection.attributes[0])
        result = imputer.adaptive_result(target_index)
        assert result.costs.shape[0] == result.chosen_ell.shape[0]
        assert set(result.chosen_ell).issubset(set(result.candidates.tolist()))

    def test_adaptive_result_unavailable_for_fixed(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=10)
        imputer.fit(asf_injection.dirty).impute(asf_injection.dirty)
        with pytest.raises(ConfigurationError):
            imputer.adaptive_result(int(asf_injection.attributes[0]))

    def test_learn_attribute_explicitly(self, asf_injection):
        imputer = IIMImputer(k=5, learning="fixed", learning_neighbors=10)
        imputer.fit(asf_injection.dirty)
        models = imputer.learn_attribute(-1)
        assert models.n_models == asf_injection.dirty.complete_part().n_tuples

    def test_incremental_and_straightforward_agree(self, asf_injection):
        values = {}
        for label, incremental in (("inc", True), ("scratch", False)):
            imputer = IIMImputer(
                k=5, learning="adaptive", stepping=15, max_learning_neighbors=60,
                incremental=incremental,
            )
            values[label] = imputer.fit(asf_injection.dirty).impute_cells(asf_injection)
        np.testing.assert_allclose(values["inc"], values["scratch"], atol=1e-6)

    def test_beats_knn_and_glr_on_heterogeneous_data(self):
        relation = load_dataset("asf", size=500)
        injection = inject_missing(relation, fraction=0.05, random_state=0)
        from repro.baselines import GLRImputer, KNNImputer

        iim = IIMImputer(k=10, learning="adaptive", stepping=5, max_learning_neighbors=100,
                         validation_neighbors=30)
        errors = {
            "IIM": rms_error(injection.truth, iim.fit(injection.dirty).impute_cells(injection)),
            "kNN": rms_error(
                injection.truth, KNNImputer(k=10).fit(injection.dirty).impute_cells(injection)
            ),
            "GLR": rms_error(
                injection.truth, GLRImputer().fit(injection.dirty).impute_cells(injection)
            ),
        }
        assert errors["IIM"] < errors["kNN"]
        assert errors["IIM"] < errors["GLR"]
