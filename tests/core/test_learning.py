"""Tests for the individual-model learning phase (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import candidate_ell_values, learn_individual_models, learn_models_for_candidates
from repro.core.learning import IndividualModels
from repro.exceptions import ConfigurationError
from repro.neighbors import NeighborOrderCache
from repro.regression import RidgeRegression


@pytest.fixture
def figure1_arrays(figure1_relation):
    values = figure1_relation.raw
    return values[:, :1], values[:, 1]


class TestLearnIndividualModels:
    def test_one_model_per_tuple(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=4)
        assert models.n_models == 8
        assert models.parameters.shape == (8, 2)

    def test_paper_example_2_parameters(self, figure1_arrays):
        # Phi from Example 2: phi_1 = phi_2 = (5.56, -0.87), phi_8 = (-4.36, 1.11).
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=4)
        np.testing.assert_allclose(models[0], [5.56, -0.87], atol=0.02)
        np.testing.assert_allclose(models[1], [5.56, -0.87], atol=0.02)
        np.testing.assert_allclose(models[7], [-4.36, 1.11], atol=0.02)

    def test_ell_one_gives_constant_models(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=1)
        np.testing.assert_allclose(models.parameters[:, 0], target)
        np.testing.assert_allclose(models.parameters[:, 1], 0.0)

    def test_ell_n_gives_global_model_for_all(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=8)
        global_model = RidgeRegression(alpha=1e-3).fit(features, target)
        for i in range(8):
            np.testing.assert_allclose(models[i], global_model.coefficients, atol=1e-9)

    def test_ell_exceeding_n_rejected(self, figure1_arrays):
        features, target = figure1_arrays
        with pytest.raises(ConfigurationError):
            learn_individual_models(features, target, ell=9)

    def test_learning_neighbors_recorded(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=3)
        assert (models.learning_neighbors == 3).all()

    def test_predict_applies_selected_models(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=4)
        candidates = models.predict([4, 3, 5], np.array([5.0]))
        # Example 3: t5 and t6 suggest ~1.19, t4 suggests ~1.21 (the paper
        # rounds the parameters to two decimals, hence the loose tolerance).
        np.testing.assert_allclose(candidates, [1.19, 1.21, 1.19], atol=0.05)


class TestCandidateEllValues:
    def test_stepping_one_covers_all(self):
        np.testing.assert_array_equal(candidate_ell_values(5), [1, 2, 3, 4, 5])

    def test_stepping_three_matches_paper_example_5(self):
        np.testing.assert_array_equal(candidate_ell_values(8, stepping=3), [1, 4, 7])

    def test_max_ell_cap(self):
        np.testing.assert_array_equal(candidate_ell_values(100, stepping=10, max_ell=35),
                                      [1, 11, 21, 31])


class TestLearnModelsForCandidates:
    def test_incremental_matches_from_scratch(self, figure1_arrays):
        features, target = figure1_arrays
        candidates = [1, 3, 5, 8]
        incremental = learn_models_for_candidates(features, target, candidates, incremental=True)
        scratch = learn_models_for_candidates(features, target, candidates, incremental=False)
        np.testing.assert_allclose(incremental, scratch, atol=1e-8)

    def test_incremental_matches_on_random_data(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(40, 3))
        target = rng.normal(size=40)
        candidates = list(range(1, 41, 4))
        incremental = learn_models_for_candidates(features, target, candidates, incremental=True)
        scratch = learn_models_for_candidates(features, target, candidates, incremental=False)
        np.testing.assert_allclose(incremental, scratch, atol=1e-7)

    def test_each_candidate_row_matches_single_ell_learning(self, figure1_arrays):
        features, target = figure1_arrays
        candidates = [2, 4, 6]
        stacked = learn_models_for_candidates(features, target, candidates)
        for c, ell in enumerate(candidates):
            single = learn_individual_models(features, target, ell)
            np.testing.assert_allclose(stacked[c], single.parameters, atol=1e-8)

    def test_candidates_must_increase(self, figure1_arrays):
        features, target = figure1_arrays
        with pytest.raises(ConfigurationError):
            learn_models_for_candidates(features, target, [3, 2])

    def test_candidates_out_of_range_rejected(self, figure1_arrays):
        features, target = figure1_arrays
        with pytest.raises(ConfigurationError):
            learn_models_for_candidates(features, target, [0, 4])

    def test_shared_order_cache_supported(self, figure1_arrays):
        features, target = figure1_arrays
        cache = NeighborOrderCache(features, include_self=True)
        result = learn_models_for_candidates(features, target, [2, 4], order_cache=cache)
        assert result.shape == (2, 8, 2)


class TestIndividualModelsContainer:
    def test_alignment_validation(self):
        with pytest.raises(ConfigurationError):
            IndividualModels(np.zeros((3, 2)), np.zeros(2))

    def test_getitem_returns_copy(self, figure1_arrays):
        features, target = figure1_arrays
        models = learn_individual_models(features, target, ell=2)
        row = models[0]
        row[:] = 0
        assert not np.allclose(models[0], 0)
