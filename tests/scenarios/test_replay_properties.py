"""Property-based replay coverage: random specs must verify cold.

Each case samples a random point of the generator parameter space —
arrival process, missingness regime, drift, query mode, churn rates,
model settings — builds a :class:`~repro.scenarios.ScenarioSpec` from it
and replays it with the cold-refit oracle enabled.  The invariants:

* the spec validates and survives a JSON round-trip;
* two generations of the trace are byte-identical;
* every online answer matches the cold refit at ``rtol = 1e-9``;
* online and cold RMS errors agree.

Cases are seeded, so a failure reproduces from its case index alone.
``REPRO_SCENARIO_CASES`` scales the sweep for CI (see
``.github/workflows/ci.yml``).
"""

import os

import pytest

from repro.scenarios import ScenarioSpec, generate_trace, replay

#: Random-case count knob (each case replays online + cold every round).
N_CASES = int(os.environ.get("REPRO_SCENARIO_CASES", "6"))

DATASETS = ("sn", "asf", "ca")
ARRIVALS = ("steady", "bursty", "diurnal")
MISSINGNESS = ("mcar", "mar", "mnar")
QUERY_MODES = ("store", "ood")


def sample_spec(case: int) -> ScenarioSpec:
    """One deterministic random point of the spec parameter space."""
    import numpy as np

    rng = np.random.default_rng(1000 + case)
    generator = "churn" if case % 2 else "streaming"
    params = {
        "dataset": DATASETS[case % len(DATASETS)],
        "size": int(rng.integers(90, 150)),
        "n_rounds": int(rng.integers(2, 4)),
        "initial_fraction": float(rng.uniform(0.3, 0.6)),
        "queries_per_round": int(rng.integers(3, 7)),
        "query_mode": QUERY_MODES[int(rng.integers(len(QUERY_MODES)))],
        "ood_shift": float(rng.uniform(0.5, 3.0)),
        "arrival": ARRIVALS[int(rng.integers(len(ARRIVALS)))],
        "burst_every": int(rng.integers(2, 4)),
        "burst_factor": float(rng.uniform(1.5, 4.0)),
        "period": int(rng.integers(2, 5)),
        "amplitude": float(rng.uniform(0.1, 0.9)),
        "missingness": MISSINGNESS[int(rng.integers(len(MISSINGNESS)))],
        "drift": float(rng.uniform(0.0, 1.5)),
    }
    if generator == "churn":
        params.update(
            updates_per_round=int(rng.integers(0, 4)),
            deletes_per_round=int(rng.integers(0, 5)),
            update_noise=float(rng.uniform(0.0, 0.2)),
        )
        if rng.random() < 0.3:
            params["arrival"] = "adversarial"
            params["storm_every"] = int(rng.integers(2, 4))
            params["storm_factor"] = float(rng.uniform(1.5, 4.0))
    model = {"k": int(rng.integers(3, 6)), "stepping": 10,
             "max_learning_neighbors": 12}
    if rng.random() < 0.5:
        model["learning"] = "fixed"
        model["learning_neighbors"] = model["k"]
    engine = {}
    if rng.random() < 0.5:
        engine["refresh_policy"] = ["lazy", "eager"][int(rng.integers(2))]
    if generator == "churn" and rng.random() < 0.5:
        engine["delete_cost_mode"] = ["rebuild", "decrement"][
            int(rng.integers(2))
        ]
    return ScenarioSpec(
        name=f"property_case_{case}",
        generator=generator,
        params=params,
        model=model,
        engine=engine,
        seed=case,
    )


@pytest.mark.parametrize("case", range(N_CASES))
def test_random_spec_replays_and_matches_the_cold_oracle(case):
    spec = sample_spec(case)

    # The spec round-trips and its trace is deterministic.
    clone = ScenarioSpec.from_json(spec.to_json())
    assert clone.canonical_json() == spec.canonical_json()
    trace = generate_trace(spec)
    assert generate_trace(clone).to_bytes() == trace.to_bytes()

    # The replay verifies against the cold oracle (raises on divergence).
    report = replay(spec, transport="engine", verify=True)
    assert report.verified is True
    assert report.trace_digest == trace.digest()
    assert report.n_rounds == trace.n_rounds
    for step in report.steps:
        assert step.rms_online == pytest.approx(step.rms_cold, rel=1e-9)


@pytest.mark.parametrize("case", range(0, max(2, N_CASES), 2))
def test_random_spec_replays_identically_over_the_serve_loop(case):
    """The wire path answers exactly like the direct engine path."""
    import numpy as np

    spec = sample_spec(case)
    engine_report = replay(spec, transport="engine", run_cold=False)
    serve_report = replay(spec, transport="serve", run_cold=False)
    np.testing.assert_allclose(
        [s.rms_online for s in engine_report.steps],
        [s.rms_online for s in serve_report.steps],
        rtol=1e-9, atol=1e-12,
    )
