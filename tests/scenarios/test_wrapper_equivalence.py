"""The legacy experiment entry points are thin wrappers over scenarios.

``run_streaming`` / ``run_churn`` now build a :class:`ScenarioSpec` and
replay it — but their numbers are historical (recorded in
``BENCH_online.json`` across PRs), so the port must not change a single
one.  These tests re-derive the legacy harness inline — the exact rng
consumption order of the pre-port implementation — and assert the
wrappers still produce the same rounds and the same RMS errors at fixed
seeds.
"""

import numpy as np
import pytest

from repro.api import MutationOp, OnlineSession
from repro.core.iim import IIMImputer
from repro.data import load_dataset
from repro.data.relation import Relation
from repro.exceptions import ExperimentError
from repro.experiments.streaming import run_churn, run_streaming
from repro.metrics import rms_error

SIZE = 160
N_ROUNDS = 3
QUERIES = 6
IIM = {"k": 4, "learning": "fixed", "learning_neighbors": 4,
       "stepping": 5, "max_learning_neighbors": 12}
ENGINE = {"refresh_policy": "lazy", "model_cache_size": None,
          "shard_capacity": "default", "journal_capacity": "default"}


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=SIZE).raw


def _cold_rms(store, queries, blanked, truth):
    cold = IIMImputer(**IIM).fit(Relation(store.copy())).impute(
        Relation(queries.copy())
    ).raw
    arange = np.arange(queries.shape[0])
    return rms_error(truth, cold[arange, blanked])


def legacy_streaming(values, seed):
    """The pre-port streaming harness, rng call for rng call."""
    initial = int(values.shape[0] * 0.4)
    remaining = values.shape[0] - initial
    batch = remaining // N_ROUNDS
    session = OnlineSession(**ENGINE, **IIM)
    session.fit(values[:initial])
    rng = np.random.default_rng(seed)
    offset = initial
    rounds = []
    for t in range(N_ROUNDS):
        size = batch if t < N_ROUNDS - 1 else remaining - batch * (N_ROUNDS - 1)
        store = values[:offset]
        rows = rng.choice(store.shape[0], size=QUERIES, replace=False)
        queries = store[rows].copy()
        blanked = rng.integers(0, values.shape[1], size=QUERIES)
        arange = np.arange(QUERIES)
        truth = queries[arange, blanked].copy()
        queries[arange, blanked] = np.nan
        session.mutate([MutationOp.append(values[offset:offset + size])])
        online = np.asarray(session.impute(queries), dtype=float)
        rounds.append({
            "n_store": offset + size,
            "n_appended": size,
            "rms_online": rms_error(truth, online[arange, blanked]),
            "rms_cold": _cold_rms(values[:offset + size], queries, blanked,
                                  truth),
        })
        offset += size
    return rounds


def legacy_churn(values, seed, updates=2, deletes=3, noise=0.05):
    """The pre-port churn harness, rng call for rng call."""
    initial = int(values.shape[0] * 0.4)
    remaining = values.shape[0] - initial
    batch = remaining // N_ROUNDS
    column_stds = values.std(axis=0)
    column_stds[column_stds == 0] = 1.0
    session = OnlineSession(
        **ENGINE, incremental_fallback_fraction="default",
        delete_cost_mode="default", **IIM,
    )
    store = values[:initial].copy()
    session.fit(store)
    rng = np.random.default_rng(seed)
    offset = initial
    rounds = []
    for t in range(N_ROUNDS):
        size = batch if t < N_ROUNDS - 1 else remaining - batch * (N_ROUNDS - 1)
        block = values[offset:offset + size]

        n_updates = min(updates, store.shape[0])
        update_targets = rng.choice(
            store.shape[0], size=n_updates, replace=False
        )
        update_rows = store[update_targets] + noise * column_stds[
            None, :
        ] * rng.standard_normal((n_updates, store.shape[1]))
        store = np.vstack([store, block])
        store[update_targets] = update_rows

        n_deletes = min(deletes, store.shape[0] - 2)
        delete_targets = np.sort(
            rng.choice(store.shape[0], size=n_deletes, replace=False)
        )
        keep = np.ones(store.shape[0], dtype=bool)
        keep[delete_targets] = False
        store = store[keep]

        rows = rng.choice(store.shape[0], size=QUERIES, replace=False)
        queries = store[rows].copy()
        blanked = rng.integers(0, values.shape[1], size=QUERIES)
        arange = np.arange(QUERIES)
        truth = queries[arange, blanked].copy()
        queries[arange, blanked] = np.nan

        ops = [MutationOp.append(block)]
        ops.extend(
            MutationOp.update(int(target), row)
            for target, row in zip(update_targets, update_rows)
        )
        ops.append(MutationOp.delete(delete_targets))
        session.mutate(ops)
        online = np.asarray(session.impute(queries), dtype=float)
        rounds.append({
            "n_store": store.shape[0],
            "n_appended": size,
            "n_updated": n_updates,
            "n_deleted": n_deletes,
            "rms_online": rms_error(truth, online[arange, blanked]),
            "rms_cold": _cold_rms(store, queries, blanked, truth),
        })
        offset += size
    return rounds


@pytest.mark.parametrize("seed", [0, 3])
def test_run_streaming_matches_the_legacy_harness(values, seed):
    expected = legacy_streaming(values, seed)
    result = run_streaming(
        dataset="sn", size=SIZE, n_rounds=N_ROUNDS,
        queries_per_round=QUERIES, random_state=seed, **IIM,
    )
    assert result.initial_store == int(SIZE * 0.4)
    assert len(result.rounds) == N_ROUNDS
    for got, want in zip(result.rounds, expected):
        assert got.n_store == want["n_store"]
        assert got.n_appended == want["n_appended"]
        # Bit-for-bit: the port must not change a single historical number.
        assert got.rms_online == want["rms_online"]
        assert got.rms_cold == want["rms_cold"]


@pytest.mark.parametrize("seed", [0, 3])
def test_run_churn_matches_the_legacy_harness(values, seed):
    expected = legacy_churn(values, seed)
    result = run_churn(
        dataset="sn", size=SIZE, n_rounds=N_ROUNDS,
        queries_per_round=QUERIES, updates_per_round=2, deletes_per_round=3,
        random_state=seed, **IIM,
    )
    assert len(result.rounds) == N_ROUNDS
    for got, want in zip(result.rounds, expected):
        assert got.n_store == want["n_store"]
        assert got.n_appended == want["n_appended"]
        assert got.n_updated == want["n_updated"]
        assert got.n_deleted == want["n_deleted"]
        assert got.rms_online == want["rms_online"]
        assert got.rms_cold == want["rms_cold"]


def test_wrappers_reject_degenerate_configs_with_the_legacy_error():
    """The scenario port keeps the legacy error contract: degenerate shapes
    raise ExperimentError (ScenarioError subclasses it)."""
    with pytest.raises(ExperimentError):
        run_streaming(dataset="sn", size=100, initial_fraction=0.999)
    with pytest.raises(ExperimentError):
        run_streaming(dataset="sn", size=100, n_rounds=1000)


def test_wrapper_engine_stats_flow_through(values):
    result = run_streaming(
        dataset="sn", size=SIZE, n_rounds=N_ROUNDS,
        queries_per_round=QUERIES, random_state=0, run_cold=False, **IIM,
    )
    assert result.engine_stats["appended_rows"] == SIZE
    assert result.engine_stats["impute_batches"] == N_ROUNDS
    assert "resident_bytes" in result.engine_memory or result.engine_memory
