"""Unit coverage for scenario specs and the registry.

Specs are the subsystem's contract surface: eager schema validation,
lossless JSON round-trips and a canonical serialization the golden
digests hang off.  The registry is the coverage surface CI enumerates,
so its lookup/registration semantics are pinned here too.
"""

import importlib
import json

import pytest

from repro.exceptions import ReproError, ScenarioError
from repro.scenarios import (
    GENERATOR_SCHEMAS,
    GENERATORS,
    ScenarioSpec,
    builtin_names,
    describe_schema,
    get,
    golden_digests,
    register,
    registry,
)
# The package re-exports the facade object under the submodule's name, so
# reach the module itself through importlib for registry cleanup.
registry_module = importlib.import_module("repro.scenarios.registry")


def make_spec(**overrides):
    payload = dict(
        name="unit", generator="streaming",
        params={"dataset": "sn", "size": 80, "n_rounds": 2,
                "queries_per_round": 4},
    )
    payload.update(overrides)
    return ScenarioSpec(**payload)


class TestSpecValidation:
    def test_defaults_fill_to_the_complete_canonical_form(self):
        spec = make_spec()
        # Every schema key is present after validation, in schema order.
        assert list(spec.params) == list(GENERATOR_SCHEMAS["streaming"])
        assert spec.params["arrival"] == "steady"
        assert spec.params["missingness"] == "mcar"
        assert spec.params["drift"] == 0.0

    def test_scenario_error_is_a_repro_error(self):
        assert issubclass(ScenarioError, ReproError)

    @pytest.mark.parametrize("overrides,fragment", [
        (dict(name=""), "non-empty string name"),
        (dict(generator="nope"), "unknown generator"),
        (dict(seed="0"), "seed must be an integer"),
        (dict(seed=True), "seed must be an integer"),
        (dict(version=0), "positive integer"),
        (dict(description=3), "description must be a string"),
    ])
    def test_top_level_field_validation(self, overrides, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            make_spec(**overrides)

    @pytest.mark.parametrize("params,fragment", [
        ({"bogus": 1}, "unknown parameter"),
        ({"n_rounds": "4"}, "must be int"),
        ({"n_rounds": True}, "must be int"),
        ({"n_rounds": 0}, ">= 1"),
        ({"initial_fraction": 1.5}, "<= 0.99"),
        ({"arrival": "random"}, "one of"),
        ({"missingness": "mar_ish"}, "one of"),
        ({"dataset": None}, "must not be null"),
        ({"size": 2}, ">= 4"),
    ])
    def test_parameter_schema_validation(self, params, fragment):
        base = {"dataset": "sn", "size": 80}
        base.update(params)
        with pytest.raises(ScenarioError, match=fragment):
            ScenarioSpec(name="bad", generator="streaming", params=base)

    def test_churn_extras_rejected_on_streaming(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            make_spec(params={"dataset": "sn", "updates_per_round": 3})

    def test_model_params_checked_against_the_imputer_signature(self):
        with pytest.raises(ScenarioError, match="unknown model parameter"):
            make_spec(model={"kk": 10})
        spec = make_spec(model={"k": 5, "learning": "fixed",
                                "learning_neighbors": 5})
        assert spec.model["k"] == 5

    def test_engine_knobs_checked_against_the_serve_contract(self):
        with pytest.raises(ScenarioError, match="unknown engine knob"):
            make_spec(engine={"threads": 4})
        spec = make_spec(engine={"refresh_policy": "lazy"})
        assert spec.engine == {"refresh_policy": "lazy"}

    @pytest.mark.parametrize("tenants,fragment", [
        ([], "non-empty 'tenants' list"),
        ("steady_stream", "non-empty 'tenants' list"),
        ([{"scenario": "steady_stream"}], "session-safe 'name'"),
        ([{"name": "bad name!", "scenario": "steady_stream"}],
         "session-safe 'name'"),
        ([{"name": "a", "scenario": "steady_stream"},
          {"name": "a", "scenario": "ood_probe"}], "duplicate tenant name"),
        ([{"name": "a"}], "'scenario' name"),
        ([{"name": "a", "scenario": "steady_stream", "extra": 1}],
         "unknown fields"),
        ([{"name": "a", "scenario": "steady_stream", "seed": True}],
         "seed must be an integer"),
        ([{"name": "a", "scenario": "steady_stream",
           "overrides": {"n_rounds": [1]}}], "JSON scalar"),
    ])
    def test_tenant_validation(self, tenants, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            ScenarioSpec(name="mt", generator="multi_tenant",
                         params={"tenants": tenants})

    def test_tenants_are_required(self):
        with pytest.raises(ScenarioError, match="requires parameter 'tenants'"):
            ScenarioSpec(name="mt", generator="multi_tenant", params={})


class TestSpecSerialization:
    def test_json_round_trip_is_lossless(self):
        spec = make_spec(
            model={"k": 4}, engine={"refresh_policy": "eager"}, seed=17,
            version=2, description="round-trip fixture",
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.canonical_json() == spec.canonical_json()

    def test_every_builtin_round_trips(self):
        for name in registry.list():
            spec = get(name)
            clone = ScenarioSpec.from_json(spec.to_json(indent=2))
            assert clone.canonical_json() == spec.canonical_json(), name

    def test_canonical_json_is_key_order_independent(self):
        a = make_spec(params={"dataset": "sn", "size": 80, "n_rounds": 2})
        b = make_spec(params={"n_rounds": 2, "size": 80, "dataset": "sn"})
        assert a.canonical_json() == b.canonical_json()

    def test_from_dict_rejects_unknown_fields_and_missing_generator(self):
        with pytest.raises(ScenarioError, match="unknown scenario spec"):
            ScenarioSpec.from_dict({"generator": "streaming", "extra": 1})
        with pytest.raises(ScenarioError, match="'generator' field"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_from_json_rejects_malformed_text(self):
        with pytest.raises(ScenarioError, match="malformed scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_with_overrides_revalidates(self):
        spec = make_spec()
        bumped = spec.with_overrides(seed=42)
        assert bumped.seed == 42
        assert spec.seed == 0  # the original is untouched
        with pytest.raises(ScenarioError):
            spec.with_overrides(generator="nope")


class TestRegistry:
    def test_at_least_eight_builtins_cover_the_generator_space(self):
        names = builtin_names()
        assert len(names) >= 8
        generators = {get(name).generator for name in names}
        assert generators == set(GENERATORS)
        arrivals = {
            get(name).params.get("arrival")
            for name in names if get(name).generator != "multi_tenant"
        }
        assert {"steady", "bursty", "diurnal", "adversarial"} <= arrivals
        regimes = {
            get(name).params.get("missingness")
            for name in names if get(name).generator != "multi_tenant"
        }
        assert {"mcar", "mar", "mnar"} <= regimes

    def test_list_is_sorted_and_get_names_the_alternatives(self):
        assert registry.list() == sorted(registry.list())
        with pytest.raises(ScenarioError, match="steady_stream"):
            get("no_such_scenario")

    def test_register_rejects_duplicates_unless_replaced(self):
        spec = make_spec(name="unit_register_probe")
        try:
            register(spec)
            assert "unit_register_probe" in registry.list()
            with pytest.raises(ScenarioError, match="already registered"):
                register(make_spec(name="unit_register_probe", seed=1))
            replaced = register(
                make_spec(name="unit_register_probe", seed=1), replace=True
            )
            assert get("unit_register_probe").seed == replaced.seed == 1
        finally:
            registry_module._REGISTRY.pop("unit_register_probe", None)

    def test_register_rejects_non_specs(self):
        with pytest.raises(ScenarioError, match="ScenarioSpec"):
            register({"name": "dict"})

    def test_golden_digests_cover_exactly_the_builtins(self):
        digests = golden_digests()
        assert sorted(digests) == sorted(builtin_names())
        assert all(
            isinstance(d, str) and len(d) == 64 for d in digests.values()
        )


class TestDescribeSchema:
    def test_rows_carry_types_defaults_and_constraints(self):
        rows = {row["param"]: row for row in describe_schema("churn")}
        assert rows["n_rounds"]["default"] == 4
        assert rows["arrival"]["choices"] == list(
            ("steady", "bursty", "diurnal", "adversarial")
        )
        assert rows["initial_fraction"]["min"] == 0.01
        assert rows["storm_factor"]["min"] == 1.0

    def test_multi_tenant_schema_marks_tenants_required(self):
        rows = {row["param"]: row for row in describe_schema("multi_tenant")}
        assert rows["tenants"]["required"] is True

    def test_unknown_generator_raises(self):
        with pytest.raises(ScenarioError, match="unknown generator"):
            describe_schema("nope")

    def test_rows_are_json_serializable(self):
        for generator in GENERATORS:
            json.dumps(describe_schema(generator))
