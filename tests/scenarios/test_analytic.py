"""The analytic generator: query steps riding a streaming base trace.

Three contracts keep ``analytic_probe`` safe inside the existing scenario
machinery:

* the base streaming rounds are **byte-identical** to a plain streaming
  spec with the same core parameters (statement generation draws from a
  separate rng stream), so the cold-oracle verification and the digest of
  the imputation workload stay meaningful;
* query-step ``APPEND`` statements carry **only incomplete rows** (every
  row has a missing marker) and never ``IMPUTE`` — they park tuples in
  the pending side-store without ever perturbing the complete store the
  replayer's shadow oracle tracks;
* the replayer executes query steps through the session under test and
  accumulates ``query_totals`` without polluting the per-round RMS report.
"""

import numpy as np
import pytest

from repro.query import (
    AppendStatement,
    ImputeStatement,
    SelectStatement,
    parse_script,
)
from repro.scenarios import ScenarioSpec, generate_trace, get, replay

CORE = {"dataset": "sn", "size": 140, "n_rounds": 3, "queries_per_round": 5}
MODEL = {"k": 4, "learning": "fixed", "learning_neighbors": 4}

ANALYTIC = ScenarioSpec(
    name="analytic_unit",
    generator="analytic",
    params={**CORE, "selects_per_round": 2, "incomplete_per_round": 2,
            "select_limit": 4},
    model=dict(MODEL),
    seed=21,
)

STREAMING_TWIN = ScenarioSpec(
    name="analytic_unit_twin",
    generator="streaming",
    params=dict(CORE),
    model=dict(MODEL),
    seed=21,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(ANALYTIC)


class TestTraceShape:
    def test_every_round_is_followed_by_one_query_step(self, trace):
        kinds = [step.kind for step in trace.steps]
        for position, kind in enumerate(kinds):
            if kind == "round":
                assert kinds[position + 1] == "query"
        assert kinds.count("query") == kinds.count("round") == 3

    def test_statements_ride_query_steps_only(self, trace):
        for step in trace.steps:
            if step.kind == "query":
                assert step.statements
            else:
                assert step.statements is None

    def test_statements_parse_and_respect_the_safety_invariants(self, trace):
        for step in trace.steps:
            if step.kind != "query":
                continue
            statements = parse_script("\n".join(step.statements))
            assert statements, step.statements
            for statement in statements:
                assert not isinstance(statement, ImputeStatement), (
                    "IMPUTE would promote tuples the shadow store never sees"
                )
                if isinstance(statement, AppendStatement):
                    rows = np.array(statement.rows, dtype=float)
                    assert np.isnan(rows).any(axis=1).all(), (
                        "complete rows would enter the store and desync "
                        "the cold oracle"
                    )
            # every query step ends in queries over the live relation
            selects = [s for s in statements
                       if isinstance(s, SelectStatement)]
            assert len(selects) >= 3  # 2 selects + the aggregate probe

    def test_base_rounds_are_byte_identical_to_plain_streaming(self, trace):
        twin = generate_trace(STREAMING_TWIN)
        base_steps = [s for s in trace.steps if s.kind != "query"]
        assert len(base_steps) == len(twin.steps)
        for ours, theirs in zip(base_steps, twin.steps):
            assert ours.kind == theirs.kind
            for attribute in ("queries", "truth", "batch", "updates"):
                mine = getattr(ours, attribute, None)
                other = getattr(theirs, attribute, None)
                if mine is None or other is None:
                    assert mine is other or (mine is None) == (other is None)
                else:
                    np.testing.assert_array_equal(mine, other)

    def test_digest_is_deterministic(self):
        assert (
            generate_trace(ANALYTIC).digest()
            == generate_trace(ANALYTIC).digest()
        )


class TestReplay:
    def test_engine_replay_verifies_and_accumulates_query_totals(self):
        report = replay(ANALYTIC, transport="engine", isolate_obs=True)
        assert report.verified is True
        totals = report.query_totals
        assert totals["statements"] == sum(
            len(step.statements)
            for step in generate_trace(ANALYTIC).steps
            if step.kind == "query"
        )
        assert totals["rows_imputed"] > 0
        assert totals["rows_scanned"] >= totals["result_rows"]
        assert report.phase_summaries["scenario.query"]["count"] >= 1
        # query steps never contribute RMS rounds
        assert report.n_rounds == 3
        assert np.isfinite(report.max_abs_diff)
        payload = report.as_dict()
        assert payload["query_totals"] == totals

    def test_multi_tenant_composition_carries_the_query_steps(self):
        spec = ScenarioSpec(
            name="analytic_mix_unit",
            generator="multi_tenant",
            params={"tenants": [
                {"name": "t-steady", "scenario": "steady_stream",
                 "overrides": {"size": 140, "n_rounds": 2,
                               "queries_per_round": 4}},
                {"name": "t-analytic", "scenario": "analytic_probe",
                 "overrides": {"size": 140, "n_rounds": 2,
                               "queries_per_round": 4}},
            ]},
            seed=33,
        )
        trace = generate_trace(spec)
        query_steps = [s for s in trace.steps if s.kind == "query"]
        assert len(query_steps) == 2  # one per analytic round, none dropped
        assert all(s.session == "t-analytic" for s in query_steps)
        report = replay(spec, transport="serve", isolate_obs=True)
        assert report.verified is True
        assert report.query_totals["statements"] == sum(
            len(s.statements) for s in query_steps
        )

    def test_builtin_analytic_probe_is_registered_and_pinned(self):
        spec = get("analytic_probe")
        assert spec.generator == "analytic"
        from repro.scenarios import golden_digest

        assert golden_digest("analytic_probe") is not None


class TestSpecValidation:
    def test_analytic_extras_are_schema_checked(self):
        with pytest.raises(Exception, match="selects_per_round"):
            ScenarioSpec(
                name="bad",
                generator="analytic",
                params={**CORE, "selects_per_round": 0},
                model=dict(MODEL),
            )

    def test_streaming_rejects_analytic_extras(self):
        with pytest.raises(Exception, match="selects_per_round"):
            ScenarioSpec(
                name="bad",
                generator="streaming",
                params={**CORE, "selects_per_round": 2},
                model=dict(MODEL),
            )
