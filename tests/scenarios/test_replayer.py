"""Replayer coverage: transports, oracle verification, digest enforcement.

The replayer's contract: any registered spec replays through the direct
engine, the in-process serve loop, or a real TCP socket, and every online
answer matches a cold :class:`~repro.core.iim.IIMImputer` refit over the
surviving store at ``rtol = 1e-9``.  These tests drive small specs through
every transport and pin the failure modes (divergence, digest drift).
"""

import numpy as np
import pytest

from repro.config import set_scenario_transport
from repro.exceptions import ScenarioError
from repro.scenarios import ScenarioSpec, generate_trace, get, replay
from repro.scenarios import replayer as replayer_module

SMALL = ScenarioSpec(
    name="replayer_unit",
    generator="streaming",
    params={"dataset": "sn", "size": 120, "n_rounds": 2,
            "queries_per_round": 5},
    model={"k": 4, "learning": "fixed", "learning_neighbors": 4},
)

SMALL_CHURN = ScenarioSpec(
    name="replayer_unit_churn",
    generator="churn",
    params={"dataset": "sn", "size": 120, "n_rounds": 2,
            "queries_per_round": 5, "updates_per_round": 2,
            "deletes_per_round": 3},
    model={"k": 4, "learning": "fixed", "learning_neighbors": 4},
    engine={"refresh_policy": "lazy"},
)


class TestTransports:
    def test_engine_transport_verifies_against_the_cold_oracle(self):
        report = replay(SMALL, transport="engine", isolate_obs=True)
        assert report.verified is True
        assert report.transport == "engine"
        assert report.n_rounds == 2
        assert report.max_abs_diff == 0.0 or report.max_abs_diff < 1e-9
        assert report.trace_digest == generate_trace(SMALL).digest()
        # The replay phases were recorded with percentiles.
        for phase in ("scenario.fit", "scenario.mutate", "scenario.impute",
                      "scenario.cold_refit"):
            summary = report.phase_summaries[phase]
            assert summary["count"] >= 1
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_serve_transport_runs_the_full_protocol_path(self):
        report = replay(SMALL_CHURN, transport="serve", isolate_obs=True)
        assert report.verified is True
        assert report.transport == "serve"
        counters = report.session_stats["replayer_unit_churn"]["counters"]
        assert counters["deleted_rows"] == sum(
            step.n_deleted for step in report.steps
        )
        assert counters["updates"] == sum(
            step.n_updated for step in report.steps
        )

    def test_tcp_transport_round_trips_over_a_real_socket(self):
        report = replay(SMALL, transport="tcp", isolate_obs=True)
        assert report.verified is True
        assert report.transport == "tcp"

    def test_auto_transport_picks_serve_for_multi_tenant(self):
        assert (
            replay(SMALL, transport="auto", run_cold=False).transport
            == "engine"
        )
        report = replay("multi_tenant_mix", transport="auto")
        assert report.transport == "serve"
        assert report.verified is True
        sessions = {step.session for step in report.steps}
        assert sessions == {"tenant-steady", "tenant-ood", "tenant-churn"}
        assert set(report.session_stats) == sessions

    def test_transport_knob_sets_the_default(self):
        previous = set_scenario_transport("tcp")
        try:
            assert replay(SMALL, run_cold=False).transport == "tcp"
        finally:
            set_scenario_transport(previous)

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(Exception, match="transport"):
            replay(SMALL, transport="carrier-pigeon")


class TestVerification:
    def test_run_cold_false_skips_the_oracle(self):
        report = replay(SMALL, transport="engine", run_cold=False)
        assert report.verified is None
        assert all(np.isnan(step.cold_seconds) for step in report.steps)
        assert all(np.isnan(step.max_abs_diff) for step in report.steps)
        assert np.isfinite(report.steps[0].rms_online)

    def test_divergence_raises_a_typed_error(self, monkeypatch):
        original = replayer_module._EngineDriver.impute

        def skewed(self, session, queries):
            return original(self, session, queries) + 1e-3

        monkeypatch.setattr(replayer_module._EngineDriver, "impute", skewed)
        with pytest.raises(ScenarioError, match="diverged from the cold-refit"):
            replay(SMALL, transport="engine")

    def test_divergence_is_recorded_when_verify_is_off(self, monkeypatch):
        original = replayer_module._EngineDriver.impute

        def skewed(self, session, queries):
            return original(self, session, queries) + 1e-3

        monkeypatch.setattr(replayer_module._EngineDriver, "impute", skewed)
        report = replay(SMALL, transport="engine", verify=False)
        assert report.verified is False
        assert report.max_abs_diff == pytest.approx(1e-3)

    def test_rms_numbers_match_between_online_and_cold(self):
        report = replay(SMALL_CHURN, transport="engine")
        for step in report.steps:
            assert step.rms_online == pytest.approx(step.rms_cold, rel=1e-9)


class TestDigestEnforcement:
    def test_registered_spec_is_checked_against_its_golden_pin(self):
        report = replay(
            get("steady_stream"), transport="engine", run_cold=False,
            check_digest=True,
        )
        assert report.digest_checked is True

    def test_check_digest_false_skips(self):
        report = replay(
            "steady_stream", transport="engine", run_cold=False,
            check_digest=False,
        )
        assert report.digest_checked is False

    def test_drifted_golden_digest_fails_loudly(self, monkeypatch):
        import importlib

        registry_module = importlib.import_module("repro.scenarios.registry")
        monkeypatch.setattr(
            registry_module, "golden_digests",
            lambda: {"steady_stream": "0" * 64},
        )
        with pytest.raises(ScenarioError, match="drifted from its golden"):
            replay("steady_stream", transport="engine", run_cold=False,
                   check_digest=True)

    def test_custom_spec_reusing_a_builtin_name_is_not_held_to_the_pin(self):
        custom = get("steady_stream").with_overrides(seed=555)
        report = replay(custom, transport="engine", run_cold=False,
                        check_digest=True)
        assert report.digest_checked is False

    def test_unregistered_spec_is_never_digest_checked(self):
        report = replay(SMALL, transport="engine", run_cold=False,
                        check_digest=True)
        assert report.digest_checked is False


class TestReportShape:
    def test_as_dict_is_json_serializable_and_complete(self):
        import json

        report = replay(SMALL, transport="engine", isolate_obs=True)
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["scenario"] == "replayer_unit"
        assert payload["verified"] is True
        assert payload["n_rounds"] == len(payload["steps"]) == 2
        assert payload["speedup"] == pytest.approx(
            payload["cold_seconds"] / payload["online_seconds"]
        )
        assert "scenario.impute" in payload["phases"]
        assert payload["steps"][0]["n_queries"] == 5
