"""Golden-trace determinism: ``(generator, params, seed)`` pins every byte.

Two independent instantiations of the same spec must serialize to the
same bytes, and every built-in's digest must match the checked-in pin in
``src/repro/scenarios/golden_digests.json``.  A digest mismatch means the
generator's arithmetic or rng consumption changed — which invalidates
every historical scenario number, so it has to be a loud, deliberate
regeneration rather than silent drift.
"""

import numpy as np
import pytest

from repro.scenarios import (
    ScenarioSpec,
    builtin_names,
    generate_trace,
    get,
    golden_digest,
)

ALL_BUILTINS = builtin_names()


@pytest.mark.parametrize("name", ALL_BUILTINS)
def test_trace_bytes_are_identical_across_instantiations(name):
    spec = get(name)
    first = generate_trace(spec).to_bytes()
    second = generate_trace(spec).to_bytes()
    assert first == second


@pytest.mark.parametrize("name", ALL_BUILTINS)
def test_builtin_digest_matches_the_checked_in_pin(name):
    golden = golden_digest(name)
    assert golden is not None, (
        f"{name} has no golden digest; regenerate golden_digests.json"
    )
    actual = generate_trace(get(name)).digest()
    assert actual == golden, (
        f"scenario {name!r} drifted from its golden trace "
        f"({actual} != {golden}); if the generator change is intentional, "
        f"regenerate golden_digests.json"
    )


def test_json_round_trip_preserves_the_digest():
    for name in ALL_BUILTINS:
        spec = get(name)
        clone = ScenarioSpec.from_json(spec.to_json())
        assert generate_trace(clone).digest() == golden_digest(name), name


def test_seed_changes_the_trace():
    spec = get("steady_stream").with_overrides(seed=1234)
    assert generate_trace(spec).digest() != golden_digest("steady_stream")


def test_params_change_the_trace():
    base = get("steady_stream")
    bumped = base.with_overrides(
        params={**base.params, "queries_per_round": 9}
    )
    assert generate_trace(bumped).digest() != golden_digest("steady_stream")


class TestTraceStructure:
    def test_streaming_trace_shape(self):
        spec = get("steady_stream")
        trace = generate_trace(spec)
        fit, *rounds = trace.steps
        assert fit.kind == "fit" and fit.round_index == -1
        assert fit.append_rows.shape[0] == fit.n_store
        assert len(rounds) == spec.params["n_rounds"] == trace.n_rounds
        total = fit.n_store + sum(s.append_rows.shape[0] for s in rounds)
        assert total == spec.params["size"]
        for step in rounds:
            assert step.kind == "round"
            assert step.queries.shape[0] == spec.params["queries_per_round"]
            # Exactly one NaN per query row, at the recorded position.
            nan_rows, nan_cols = np.nonzero(np.isnan(step.queries))
            assert nan_rows.tolist() == list(range(step.queries.shape[0]))
            assert nan_cols.tolist() == step.blanked.tolist()
            assert np.isfinite(step.truth).all()

    def test_bursty_rounds_actually_burst(self):
        trace = generate_trace(get("bursty_stream"))
        sizes = [s.append_rows.shape[0] for s in trace.steps if s.kind == "round"]
        burst_every = get("bursty_stream").params["burst_every"]
        bursts = sizes[burst_every - 1::burst_every]
        quiet = [
            size for index, size in enumerate(sizes)
            if (index + 1) % burst_every
        ]
        assert min(bursts) > max(quiet)
        assert all(size >= 1 for size in sizes)

    def test_adversarial_storm_rounds_scale_updates_and_deletes(self):
        spec = get("adversarial_churn")
        trace = generate_trace(spec)
        rounds = [s for s in trace.steps if s.kind == "round"]
        storm_every = spec.params["storm_every"]
        factor = spec.params["storm_factor"]
        for step in rounds:
            expected = (
                factor if (step.round_index + 1) % storm_every == 0 else 1.0
            )
            assert len(step.update_targets) == int(
                round(spec.params["updates_per_round"] * expected)
            )
            assert len(step.delete_targets) == int(
                round(spec.params["deletes_per_round"] * expected)
            )
            assert np.all(np.diff(step.delete_targets) > 0)

    def test_multi_tenant_interleaves_fits_then_round_robin(self):
        spec = get("multi_tenant_mix")
        trace = generate_trace(spec)
        tenant_names = [t["name"] for t in spec.params["tenants"]]
        assert [plan.name for plan in trace.sessions] == tenant_names
        fits = [s for s in trace.steps if s.kind == "fit"]
        assert [s.session for s in fits] == tenant_names
        rounds = [s for s in trace.steps if s.kind == "round"]
        # Round-robin: round r of every tenant precedes round r+1 of any.
        assert [s.round_index for s in rounds] == sorted(
            s.round_index for s in rounds
        )
        assert [s.index for s in trace.steps] == list(range(len(trace.steps)))

    def test_tenant_overrides_and_seeds_flow_into_the_children(self):
        spec = get("multi_tenant_mix")
        trace = generate_trace(spec)
        ood_rounds = [
            s for s in trace.steps
            if s.session == "tenant-ood" and s.kind == "round"
        ]
        assert all(s.queries.shape[0] == 6 for s in ood_rounds)
        churn = next(
            s for s in trace.steps
            if s.session == "tenant-churn" and s.kind == "round"
        )
        assert len(churn.delete_targets) == 3  # the override, not the base 4

    def test_session_plans_pin_the_full_model_parameter_set(self):
        """Every transport and the oracle must build the same imputer, so
        plans expand the spec's partial model to explicit constructor
        arguments (the serve loop would otherwise fill the gaps with the
        method registry's curated defaults)."""
        import inspect

        from repro.core.iim import IIMImputer

        ctor = {
            n for n in inspect.signature(IIMImputer.__init__).parameters
            if n != "self"
        }
        for name in ALL_BUILTINS:
            trace = generate_trace(get(name))
            for plan in trace.sessions:
                assert set(plan.model) == ctor, (name, plan.name)
