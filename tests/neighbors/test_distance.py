"""Tests for the distance metrics (Formula 1 and friends)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.neighbors import (
    METRICS,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    paper_euclidean,
    pairwise_distances,
)


class TestPaperEuclidean:
    def test_matches_formula_1(self):
        # d = sqrt(sum (x-y)^2 / |F|)
        query = np.array([1.0, 2.0])
        data = np.array([[4.0, 6.0]])
        expected = np.sqrt(((3.0**2) + (4.0**2)) / 2)
        assert paper_euclidean(query, data)[0] == pytest.approx(expected)

    def test_zero_distance_to_itself(self):
        point = np.array([1.0, -2.0, 3.0])
        assert paper_euclidean(point, point.reshape(1, -1))[0] == 0.0

    def test_batch_shape(self):
        queries = np.zeros((3, 2))
        data = np.ones((5, 2))
        assert paper_euclidean(queries, data).shape == (3, 5)

    def test_scaling_relationship_with_euclidean(self):
        rng = np.random.default_rng(0)
        query = rng.normal(size=4)
        data = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            paper_euclidean(query, data) * np.sqrt(4), euclidean(query, data)
        )

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataError):
            paper_euclidean(np.array([1.0, 2.0]), np.array([[1.0, 2.0, 3.0]]))


class TestOtherMetrics:
    def test_manhattan(self):
        assert manhattan(np.array([0.0, 0.0]), np.array([[1.0, -2.0]]))[0] == pytest.approx(3.0)

    def test_chebyshev(self):
        assert chebyshev(np.array([0.0, 0.0]), np.array([[1.0, -2.0]]))[0] == pytest.approx(2.0)

    def test_metric_registry_lookup(self):
        for name in METRICS:
            assert callable(get_metric(name))

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError):
            get_metric("cosine")


class TestPairwise:
    def test_pairwise_matrix_properties(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(10, 3))
        matrix = pairwise_distances(data)
        assert matrix.shape == (10, 10)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix, matrix.T)
        assert (matrix >= 0).all()
