"""Batch neighbour-search kernels vs. the reference loops.

Covers the exact-equivalence of the vectorized top-k (including tie repair
at the ``argpartition`` boundary), the batched self-exclusion, the
rectangular ``neighbor_order`` batch contract (regression test for the
ragged-array bug with ``exclude_self=True``), and the bulk
:meth:`NeighborOrderCache.order_matrix`.
"""

import numpy as np
import pytest

from repro.neighbors import BruteForceNeighbors, NeighborOrderCache


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    points = rng.normal(size=(40, 3))
    points[9] = points[4]  # duplicate -> zero-distance tie
    points[23] = points[4]
    return points


class TestBatchKneighbors:
    @pytest.mark.parametrize("exclude_self", [False, True])
    @pytest.mark.parametrize("k", [1, 3, 39])
    def test_matches_loop_backend(self, data, exclude_self, k):
        searcher = BruteForceNeighbors().fit(data)
        queries = np.vstack([data[:6], data.mean(axis=0)])
        d_loop, i_loop = searcher.kneighbors(
            queries, k, exclude_self=exclude_self, backend="loop"
        )
        d_fast, i_fast = searcher.kneighbors(
            queries, k, exclude_self=exclude_self, backend="vectorized"
        )
        np.testing.assert_array_equal(i_fast, i_loop)
        np.testing.assert_array_equal(d_fast, d_loop)

    def test_tie_break_by_index(self):
        # Three indexed points all at the same distance from the query: the
        # top-2 must be the two smallest indices, whichever backend runs.
        points = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [5.0, 5.0]])
        searcher = BruteForceNeighbors(metric="euclidean").fit(points)
        for backend in ("loop", "vectorized"):
            _, idx = searcher.kneighbors(np.zeros((1, 2)), 2, backend=backend)
            np.testing.assert_array_equal(idx[0], [0, 1])

    def test_boundary_tie_repair_matches_full_sort(self):
        # Many duplicate distances straddling the partition boundary.
        points = np.zeros((12, 2))
        points[:8, 0] = 1.0  # eight points at distance 1
        points[8:, 0] = 2.0
        searcher = BruteForceNeighbors(metric="euclidean").fit(points)
        query = np.zeros((1, 2))
        for k in (2, 5, 8):
            _, idx = searcher.kneighbors(query, k, backend="vectorized")
            np.testing.assert_array_equal(idx[0], np.arange(k))


class TestNeighborOrderBatch:
    @pytest.mark.parametrize("backend", ["loop", "vectorized"])
    def test_exclude_self_mixed_batch_is_rectangular(self, data, backend):
        # Regression test: a batch mixing queries that ARE indexed points
        # with queries that are NOT used to produce a ragged list that
        # np.asarray mangled into an object array.  Rows without a
        # zero-distance match are trimmed of their farthest neighbour so the
        # result is a dense (q, n - 1) integer matrix.
        searcher = BruteForceNeighbors().fit(data)
        queries = np.vstack([data[5], data.mean(axis=0) + 10.0, data[17]])
        order = searcher.neighbor_order(queries, exclude_self=True, backend=backend)
        assert order.dtype != object
        assert order.shape == (3, data.shape[0] - 1)
        # Member rows drop themselves; the foreign row keeps its n-1 nearest.
        assert 5 not in order[0]
        assert 17 not in order[2]
        full = searcher.neighbor_order(queries[1], backend=backend)
        np.testing.assert_array_equal(order[1], full[:-1])

    @pytest.mark.parametrize("exclude_self", [False, True])
    def test_backends_agree(self, data, exclude_self):
        searcher = BruteForceNeighbors().fit(data)
        queries = np.vstack([data[:5], data[:2] + 0.5])
        loop = searcher.neighbor_order(queries, exclude_self=exclude_self, backend="loop")
        fast = searcher.neighbor_order(
            queries, exclude_self=exclude_self, backend="vectorized"
        )
        np.testing.assert_array_equal(fast, loop)

    def test_single_query_keeps_natural_length(self, data):
        searcher = BruteForceNeighbors().fit(data)
        n = data.shape[0]
        for backend in ("loop", "vectorized"):
            member = searcher.neighbor_order(data[3], exclude_self=True, backend=backend)
            foreign = searcher.neighbor_order(
                data.mean(axis=0) + 10.0, exclude_self=True, backend=backend
            )
            assert member.shape == (n - 1,)
            assert foreign.shape == (n,)


class TestOrderMatrix:
    @pytest.mark.parametrize("include_self", [True, False])
    def test_matches_per_row_orders(self, data, include_self):
        lazy = NeighborOrderCache(data, include_self=include_self)
        bulk = NeighborOrderCache(data, include_self=include_self)
        matrix = bulk.order_matrix(chunk_size=7)
        assert matrix.shape == (data.shape[0], lazy.max_neighbors())
        for i in range(data.shape[0]):
            np.testing.assert_array_equal(matrix[i], lazy.order_of(i))

    def test_respects_max_length_and_feeds_prefix(self, data):
        cache = NeighborOrderCache(data, include_self=True, max_length=9)
        matrix = cache.order_matrix()
        assert matrix.shape == (data.shape[0], 9)
        np.testing.assert_array_equal(cache.prefix(4, 6), matrix[4, :6])

    def test_clear_drops_matrix(self, data):
        cache = NeighborOrderCache(data, max_length=5)
        cache.order_matrix()
        cache.clear()
        assert cache._matrix is None
