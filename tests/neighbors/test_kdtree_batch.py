"""Batched KD-tree queries: identical to brute force and the scalar search."""

import numpy as np
import pytest

from repro.config import use_backend
from repro.neighbors import BruteForceNeighbors, KDTreeNeighbors, NeighborIndex

RNG = np.random.default_rng(11)


@pytest.mark.parametrize("n,d,leaf_size", [(64, 2, 4), (200, 3, 8), (500, 5, 32)])
@pytest.mark.parametrize("exclude_self", [False, True])
def test_batch_queries_match_brute_force(n, d, leaf_size, exclude_self):
    data = RNG.normal(size=(n, d))
    data[10] = data[3]  # duplicates force distance ties
    data[11] = data[3]
    tree = KDTreeNeighbors(leaf_size=leaf_size).fit(data)
    brute = BruteForceNeighbors().fit(data)
    queries = np.vstack([RNG.normal(size=(30, d)), data[:15]])
    for k in (1, 7, 19):
        brute_dist, brute_idx = brute.kneighbors(queries, k, exclude_self=exclude_self)
        tree_dist, tree_idx = tree.kneighbors(queries, k, exclude_self=exclude_self)
        np.testing.assert_array_equal(tree_idx, brute_idx)
        np.testing.assert_allclose(tree_dist, brute_dist, rtol=1e-12, atol=1e-12)


def test_batch_and_loop_backends_agree():
    data = RNG.normal(size=(150, 3))
    tree = KDTreeNeighbors(leaf_size=8).fit(data)
    queries = RNG.normal(size=(40, 3))
    dist_v, idx_v = tree.kneighbors(queries, 9, backend="vectorized")
    dist_l, idx_l = tree.kneighbors(queries, 9, backend="loop")
    np.testing.assert_array_equal(idx_v, idx_l)
    # The batch kernel contracts squared differences with einsum, the scalar
    # path with np.sum — identical up to one ulp of association error.
    np.testing.assert_allclose(dist_v, dist_l, rtol=1e-12)


def test_constructor_backend_and_global_knob():
    data = RNG.normal(size=(80, 3))
    queries = RNG.normal(size=(12, 3))
    reference = KDTreeNeighbors(leaf_size=8).fit(data).kneighbors(queries, 5)
    pinned = KDTreeNeighbors(leaf_size=8, backend="loop").fit(data)
    with use_backend("vectorized"):
        dist, idx = pinned.kneighbors(queries, 5)
    np.testing.assert_array_equal(idx, reference[1])
    with use_backend("loop"):
        dist, idx = KDTreeNeighbors(leaf_size=8).fit(data).kneighbors(queries, 5)
    np.testing.assert_array_equal(idx, reference[1])


def test_neighbor_index_kdtree_serves_batches():
    """The facade's kdtree backend answers batch queries like brute force."""
    data = RNG.normal(size=(220, 4))
    queries = np.vstack([RNG.normal(size=(25, 4)), data[:5]])
    kdtree_index = NeighborIndex(backend="kdtree", leaf_size=16).fit(data)
    brute_index = NeighborIndex(backend="brute").fit(data)
    for k in (1, 6, 12):
        kd_dist, kd_idx = kdtree_index.kneighbors(queries, k)
        br_dist, br_idx = brute_index.kneighbors(queries, k)
        np.testing.assert_array_equal(kd_idx, br_idx)
        np.testing.assert_allclose(kd_dist, br_dist, rtol=1e-12, atol=1e-12)
    kd_dist, kd_idx = kdtree_index.kneighbors(data[:30], 4, exclude_self=True)
    br_dist, br_idx = brute_index.kneighbors(data[:30], 4, exclude_self=True)
    np.testing.assert_array_equal(kd_idx, br_idx)
