"""NeighborOrderCache.append: exact merge, change reporting, restore."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.neighbors import NeighborOrderCache

RNG = np.random.default_rng(7)


@pytest.mark.parametrize("include_self", [True, False])
@pytest.mark.parametrize("cap", [None, 5, 23, 100])
def test_append_equals_cold_rebuild(include_self, cap):
    data = RNG.normal(size=(30, 4))
    batches = [RNG.normal(size=(b, 4)) for b in (9, 1, 17)]
    incremental = NeighborOrderCache(data, include_self=include_self, max_length=cap)
    for batch in batches:
        incremental.append(batch)
    cold = NeighborOrderCache(
        np.vstack([data] + batches), include_self=include_self, max_length=cap,
        keep_distances=True,
    )
    np.testing.assert_array_equal(incremental.order_matrix(), cold.order_matrix())
    np.testing.assert_array_equal(incremental.order_distances, cold.order_distances)
    # Per-row accessors read the merged matrix.
    for index in (0, 17, incremental.n_points - 1):
        np.testing.assert_array_equal(
            incremental.order_of(index), cold.order_of(index)
        )


def test_append_with_duplicate_rows_breaks_ties_by_index():
    data = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
    duplicates = np.array([[0.0, 0.0], [1.0, 1.0]])
    incremental = NeighborOrderCache(data, include_self=True)
    incremental.append(duplicates)
    cold = NeighborOrderCache(np.vstack([data, duplicates]), include_self=True)
    np.testing.assert_array_equal(incremental.order_matrix(), cold.order_matrix())


def test_first_changed_reports_prefix_changes():
    data = RNG.normal(size=(40, 3))
    extra = RNG.normal(size=(12, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=15)
    before = cache.order_matrix().copy()
    result = cache.append(extra)
    after = cache.order_matrix()
    assert result.n_before == 40 and result.n_appended == 12
    for i in range(40):
        first = result.first_changed[i]
        # Everything before the reported position is unchanged...
        np.testing.assert_array_equal(after[i, :first], before[i, :first])
        # ...and the reported position itself (when within the old length)
        # really did change.
        if first < before.shape[1]:
            assert after[i, first] != before[i, first]
    # changed_rows is the < prefix filter.
    np.testing.assert_array_equal(
        result.changed_rows(5), np.flatnonzero(result.first_changed < 5)
    )


def test_effective_length_grows_back_to_requested_cap():
    data = RNG.normal(size=(6, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=10)
    assert cache.effective_length() == 6
    cache.append(RNG.normal(size=(8, 3)))
    assert cache.effective_length() == 10
    cold = NeighborOrderCache(cache.data, include_self=True, max_length=10)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())


def test_append_backfills_distances_lazily():
    """A cache built without keep_distances can still be appended to."""
    data = RNG.normal(size=(25, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=10)
    cache.order_matrix()
    assert cache.order_distances is None  # batch callers pay for orders only
    cache.append(RNG.normal(size=(5, 3)))
    cold = NeighborOrderCache(cache.data, include_self=True, max_length=10,
                              keep_distances=True)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())
    np.testing.assert_array_equal(cache.order_distances, cold.order_distances)


def test_empty_append_is_a_noop():
    data = RNG.normal(size=(10, 3))
    cache = NeighborOrderCache(data, include_self=True)
    before = cache.order_matrix().copy()
    result = cache.append(np.empty((0, 3)))
    assert result.n_appended == 0
    assert not result.changed_rows(5).size
    np.testing.assert_array_equal(cache.order_matrix(), before)


def test_append_validates_width():
    cache = NeighborOrderCache(RNG.normal(size=(10, 3)))
    with pytest.raises(ConfigurationError):
        cache.append(RNG.normal(size=(2, 4)))


def test_restore_matrix_roundtrip_and_validation():
    data = RNG.normal(size=(20, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=8,
                               keep_distances=True)
    orders = cache.order_matrix()
    dists = cache.order_distances
    fresh = NeighborOrderCache(data, include_self=True, max_length=8)
    fresh.restore_matrix(orders, dists)
    np.testing.assert_array_equal(fresh.order_matrix(), orders)
    bad = NeighborOrderCache(data, include_self=True, max_length=7)
    with pytest.raises(ConfigurationError):
        bad.restore_matrix(orders, dists)
