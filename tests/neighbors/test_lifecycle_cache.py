"""NeighborOrderCache.remove/replace: exact repair, change reporting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.neighbors import NeighborOrderCache

RNG = np.random.default_rng(13)


def _cold(data, include_self, cap):
    return NeighborOrderCache(
        data, include_self=include_self, max_length=cap, keep_distances=True
    )


@pytest.mark.parametrize("include_self", [True, False])
@pytest.mark.parametrize("cap", [None, 5, 23, 100])
def test_remove_equals_cold_rebuild(include_self, cap):
    data = RNG.normal(size=(40, 4))
    cache = NeighborOrderCache(data, include_self=include_self, max_length=cap)
    removed = np.array([3, 17, 0, 39, 21])
    cache.remove(removed)
    keep = np.ones(40, dtype=bool)
    keep[removed] = False
    cold = _cold(data[keep], include_self, cap)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())
    np.testing.assert_array_equal(cache.order_distances, cold.order_distances)


@pytest.mark.parametrize("include_self", [True, False])
@pytest.mark.parametrize("cap", [None, 5, 23, 100])
def test_replace_equals_cold_rebuild(include_self, cap):
    data = RNG.normal(size=(40, 4))
    cache = NeighborOrderCache(data, include_self=include_self, max_length=cap)
    revised = data.copy()
    for index in (0, 19, 39):
        row = RNG.normal(size=4)
        cache.replace(index, row)
        revised[index] = row
    cold = _cold(revised, include_self, cap)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())
    np.testing.assert_array_equal(cache.order_distances, cold.order_distances)


def test_replace_with_duplicate_rows_breaks_ties_by_index():
    data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [1.0, 1.0]])
    cache = NeighborOrderCache(data, include_self=True)
    cache.replace(2, np.array([1.0, 1.0]))  # now three identical tuples
    revised = data.copy()
    revised[2] = [1.0, 1.0]
    cold = NeighborOrderCache(revised, include_self=True)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())


def test_remove_with_duplicate_rows_keeps_tie_order():
    data = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0], [0.0, 0.0]])
    cache = NeighborOrderCache(data, include_self=True)
    cache.remove([2])
    cold = NeighborOrderCache(np.delete(data, 2, axis=0), include_self=True)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())


@pytest.mark.parametrize("cap", [None, 4, 9])
def test_interleaved_lifecycle_equals_cold(cap):
    """Randomized append/remove/replace sequences stay exact throughout."""
    rng = np.random.default_rng(99)
    live = rng.normal(size=(25, 3))
    cache = NeighborOrderCache(live, include_self=True, max_length=cap)
    for _ in range(30):
        op = rng.choice(["append", "remove", "replace"])
        if op == "append" or live.shape[0] < 5:
            rows = rng.normal(size=(int(rng.integers(1, 5)), 3))
            cache.append(rows)
            live = np.vstack([live, rows])
        elif op == "remove":
            idx = rng.choice(
                live.shape[0], size=int(rng.integers(1, 4)), replace=False
            )
            cache.remove(idx)
            live = np.delete(live, idx, axis=0)
        else:
            index = int(rng.integers(live.shape[0]))
            row = rng.normal(size=3)
            cache.replace(index, row)
            live = live.copy()
            live[index] = row
        cold = _cold(live, True, cap)
        np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())
        np.testing.assert_array_equal(cache.order_distances, cold.order_distances)


def test_remove_reports_first_changed_and_index_map():
    data = RNG.normal(size=(30, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=8)
    before = cache.order_matrix().copy()
    result = cache.remove([2, 11, 29])
    after = cache.order_matrix()
    assert result.n_before == 30 and result.n_removed == 3
    kept = result.kept_rows()
    assert kept.shape[0] == 27 == result.first_changed.shape[0]
    index_map = result.index_map
    assert (index_map[[2, 11, 29]] == -1).all()
    for new_i, old_i in enumerate(kept):
        first = result.first_changed[new_i]
        # Neighbour identities before the reported position are unchanged...
        np.testing.assert_array_equal(
            index_map[before[old_i, :first]], after[new_i, :first]
        )
        # ...and the reported position itself really did change.
        if first < after.shape[1]:
            assert index_map[before[old_i, first]] != after[new_i, first]
    np.testing.assert_array_equal(
        result.changed_rows(4), np.flatnonzero(result.first_changed < 4)
    )


def test_replace_reports_first_changed():
    data = RNG.normal(size=(30, 3))
    cache = NeighborOrderCache(data, include_self=True, max_length=10)
    before = cache.order_matrix().copy()
    result = cache.replace(7, RNG.normal(size=3))
    after = cache.order_matrix()
    assert result.index == 7
    for i in range(30):
        first = result.first_changed[i]
        np.testing.assert_array_equal(after[i, :first], before[i, :first])
        if first < after.shape[1]:
            assert after[i, first] != before[i, first]


def test_remove_all_and_empty_remove():
    data = RNG.normal(size=(10, 3))
    cache = NeighborOrderCache(data, include_self=True)
    noop = cache.remove([])
    assert noop.n_removed == 0 and cache.n_points == 10
    result = cache.remove(np.arange(10))
    assert result.n_removed == 10 and cache.n_points == 0
    assert (result.index_map == -1).all()


def test_remove_duplicate_indices_collapse():
    data = RNG.normal(size=(12, 3))
    cache = NeighborOrderCache(data, include_self=True)
    result = cache.remove([4, 4, 7])
    assert result.n_removed == 2 and cache.n_points == 10


def test_lifecycle_errors():
    cache = NeighborOrderCache(RNG.normal(size=(10, 3)))
    with pytest.raises(ConfigurationError):
        cache.remove([10])
    with pytest.raises(ConfigurationError):
        cache.remove([-1])
    with pytest.raises(ConfigurationError):
        cache.replace(10, np.zeros(3))
    with pytest.raises(ConfigurationError):
        cache.replace(0, np.zeros(4))  # width mismatch
    with pytest.raises(ConfigurationError):
        cache.replace(0, np.zeros((2, 3)))  # more than one row


def test_append_validates_width_of_empty_batches():
    """Satellite regression: a (0, m+3) block is a shape error, not a no-op."""
    cache = NeighborOrderCache(RNG.normal(size=(8, 3)))
    with pytest.raises(ConfigurationError):
        cache.append(np.empty((0, 6)))
    # A correctly-shaped empty batch still is a no-op.
    result = cache.append(np.empty((0, 3)))
    assert result.n_appended == 0 and cache.n_points == 8


def test_append_accepts_single_1d_tuple():
    """Satellite regression: both entry points normalise 1-D rows."""
    data = RNG.normal(size=(8, 3))
    cache = NeighborOrderCache(data, include_self=True)
    row = RNG.normal(size=3)
    result = cache.append(row)
    assert result.n_appended == 1 and cache.n_points == 9
    cold = NeighborOrderCache(np.vstack([data, row]), include_self=True)
    np.testing.assert_array_equal(cache.order_matrix(), cold.order_matrix())
