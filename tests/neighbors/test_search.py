"""Tests for brute-force search, the KD-tree and the order cache."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.neighbors import (
    BruteForceNeighbors,
    KDTreeNeighbors,
    NeighborIndex,
    NeighborOrderCache,
)


@pytest.fixture
def points():
    rng = np.random.default_rng(0)
    return rng.normal(size=(120, 3))


class TestBruteForce:
    def test_nearest_is_itself_when_included(self, points):
        searcher = BruteForceNeighbors().fit(points)
        _, idx = searcher.kneighbors(points[7], 1)
        assert idx[0] == 7

    def test_exclude_self_skips_query_point(self, points):
        searcher = BruteForceNeighbors().fit(points)
        _, idx = searcher.kneighbors(points[7], 3, exclude_self=True)
        assert 7 not in idx

    def test_distances_sorted_ascending(self, points):
        searcher = BruteForceNeighbors().fit(points)
        dist, _ = searcher.kneighbors(points[0], 10)
        assert (np.diff(dist) >= 0).all()

    def test_matches_naive_computation(self, points):
        searcher = BruteForceNeighbors().fit(points)
        query = np.array([0.1, -0.2, 0.3])
        dist, idx = searcher.kneighbors(query, 5)
        naive = np.sqrt(np.mean((points - query) ** 2, axis=1))
        expected_idx = np.argsort(naive, kind="stable")[:5]
        np.testing.assert_array_equal(idx, expected_idx)
        np.testing.assert_allclose(dist, naive[expected_idx])

    def test_batch_queries(self, points):
        searcher = BruteForceNeighbors().fit(points)
        dist, idx = searcher.kneighbors(points[:4], 3)
        assert dist.shape == (4, 3)
        assert idx.shape == (4, 3)

    def test_k_larger_than_data_raises(self, points):
        searcher = BruteForceNeighbors().fit(points)
        with pytest.raises(ConfigurationError):
            searcher.kneighbors(points[0], 1000)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BruteForceNeighbors().kneighbors(np.zeros(3), 1)

    def test_tie_breaking_prefers_lower_index(self):
        data = np.array([[0.0], [1.0], [1.0], [2.0]])
        searcher = BruteForceNeighbors().fit(data)
        _, idx = searcher.kneighbors(np.array([1.0]), 2)
        np.testing.assert_array_equal(idx, [1, 2])


class TestKDTree:
    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_agrees_with_brute_force(self, points, k):
        brute = BruteForceNeighbors().fit(points)
        tree = KDTreeNeighbors(leaf_size=8).fit(points)
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(10, 3))
        bd, bi = brute.kneighbors(queries, k)
        td, ti = tree.kneighbors(queries, k)
        np.testing.assert_array_equal(bi, ti)
        np.testing.assert_allclose(bd, td)

    def test_exclude_self_agrees_with_brute_force(self, points):
        brute = BruteForceNeighbors().fit(points)
        tree = KDTreeNeighbors(leaf_size=4).fit(points)
        bd, bi = brute.kneighbors(points[13], 7, exclude_self=True)
        td, ti = tree.kneighbors(points[13], 7, exclude_self=True)
        np.testing.assert_array_equal(bi, ti)
        np.testing.assert_allclose(bd, td)

    def test_duplicate_points_handled(self):
        data = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        tree = KDTreeNeighbors(leaf_size=4).fit(data)
        dist, idx = tree.kneighbors(np.zeros(2), 5)
        assert (dist == 0).all()
        assert set(idx).issubset(set(range(20)))

    def test_depth_grows_with_data(self):
        rng = np.random.default_rng(2)
        tree = KDTreeNeighbors(leaf_size=4).fit(rng.normal(size=(200, 2)))
        assert tree.depth() > 2

    def test_unsupported_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            KDTreeNeighbors(metric="manhattan")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            KDTreeNeighbors().kneighbors(np.zeros(2), 1)


class TestNeighborIndex:
    @pytest.mark.parametrize("backend", ["brute", "kdtree"])
    def test_backends_agree(self, points, backend):
        index = NeighborIndex(backend=backend).fit(points)
        dist, idx = index.kneighbors(points[3], 4)
        reference = BruteForceNeighbors().fit(points).kneighbors(points[3], 4)
        np.testing.assert_array_equal(idx, reference[1])
        np.testing.assert_allclose(dist, reference[0])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            NeighborIndex(backend="annoy")

    def test_indices_only_helper(self, points):
        index = NeighborIndex().fit(points)
        idx = index.kneighbors_indices(points[0], 3)
        assert idx.shape == (3,)


class TestNeighborOrderCache:
    def test_prefix_subsumption(self, points):
        cache = NeighborOrderCache(points, include_self=True)
        small = cache.prefix(5, 4)
        large = cache.prefix(5, 9)
        np.testing.assert_array_equal(small, large[:4])

    def test_first_neighbor_is_self_when_included(self, points):
        cache = NeighborOrderCache(points, include_self=True)
        assert cache.prefix(11, 1)[0] == 11

    def test_self_excluded_when_requested(self, points):
        cache = NeighborOrderCache(points, include_self=False)
        assert 11 not in cache.order_of(11)

    def test_max_length_caps_order(self, points):
        cache = NeighborOrderCache(points, max_length=6)
        assert cache.order_of(0).shape[0] == 6

    def test_prefix_beyond_cap_raises(self, points):
        cache = NeighborOrderCache(points, max_length=6)
        with pytest.raises(ConfigurationError):
            cache.prefix(0, 10)

    def test_matches_brute_force_order(self, points):
        cache = NeighborOrderCache(points, include_self=True)
        searcher = BruteForceNeighbors().fit(points)
        _, expected = searcher.kneighbors(points[2], 15)
        np.testing.assert_array_equal(cache.prefix(2, 15), expected)

    def test_clear_resets_cache(self, points):
        cache = NeighborOrderCache(points)
        cache.order_of(0)
        cache.clear()
        assert cache._cache == {}
