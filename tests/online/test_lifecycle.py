"""Tuple lifecycle: delete/update equivalence, hybrid policy, CLI trace."""

import numpy as np
import pytest

from repro import IIMImputer, load_dataset
from repro.config import set_online_fallback_fraction
from repro.data.relation import Relation
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.online import OnlineImputationEngine


@pytest.fixture(scope="module")
def stream_values():
    return load_dataset("asf", size=320).raw


def _cold_impute(store_rows, queries, **params):
    imputer = IIMImputer(**params).fit(Relation(store_rows))
    return imputer.impute(Relation(queries)).raw


def _make_queries(values, rows, rng, n_missing=1):
    queries = values[rows].copy()
    for r in range(queries.shape[0]):
        cols = rng.choice(queries.shape[1], size=n_missing, replace=False)
        queries[r, cols] = np.nan
    return queries


PARAM_GRID = [
    dict(k=5, learning="fixed", learning_neighbors=7),
    dict(k=5, learning="adaptive", stepping=5, max_learning_neighbors=30),
    dict(
        k=5, learning="adaptive", stepping=5, max_learning_neighbors=30,
        combination="uniform",
    ),
    dict(
        k=5, learning="adaptive", stepping=5, max_learning_neighbors=30,
        combination="distance",
    ),
    dict(
        k=5, learning="adaptive", stepping=7, max_learning_neighbors=30,
        include_global=False,
    ),
]
PARAM_IDS = ["fixed", "adaptive-voting", "adaptive-uniform", "adaptive-distance",
             "adaptive-no-global"]


@pytest.mark.parametrize("params", PARAM_GRID, ids=PARAM_IDS)
@pytest.mark.parametrize("policy", ["lazy", "eager"])
def test_delete_update_match_cold_refit(stream_values, params, policy):
    """Acceptance: interleaved append/update/delete == cold refit (rtol 1e-9)."""
    values = stream_values
    rng = np.random.default_rng(3)
    engine = OnlineImputationEngine(refresh_policy=policy, **params)
    store = values[:150].copy()
    engine.append(store)
    offset = 150
    for step in range(5):
        # One burst of mixed mutations per step, then queries.
        block = values[offset : offset + 20]
        offset += 20
        engine.append(block)
        store = np.vstack([store, block])
        for _ in range(2):
            index = int(rng.integers(store.shape[0]))
            row = store[index] + 0.2 * rng.standard_normal(store.shape[1])
            engine.update(index, row)
            store = store.copy()
            store[index] = row
        removed = rng.choice(store.shape[0], size=7, replace=False)
        engine.delete(removed)
        store = np.delete(store, removed, axis=0)

        queries = _make_queries(values, np.arange(280, 292), rng, n_missing=2)
        online = engine.impute_batch(queries)
        cold = _cold_impute(store, queries, **params)
        np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)
    np.testing.assert_array_equal(engine.store_relation().raw, store)
    assert engine.stats["deletes"] == 5 and engine.stats["updates"] == 10
    assert engine.stats["incremental_refreshes"] > 0


def test_randomized_churn_trace_matches_cold(stream_values):
    """Property-style: an arbitrary op sequence keeps the engine exact."""
    values = stream_values
    params = dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=25)
    rng = np.random.default_rng(17)
    engine = OnlineImputationEngine(**params)
    store = values[:120].copy()
    engine.append(store)
    offset = 120
    for step in range(12):
        op = rng.choice(["append", "update", "delete"])
        if op == "append" or store.shape[0] < 60:
            b = int(rng.integers(1, 15))
            block = values[offset : offset + b]
            offset += b
            engine.append(block)
            store = np.vstack([store, block])
        elif op == "update":
            index = int(rng.integers(store.shape[0]))
            row = values[int(rng.integers(values.shape[0]))]
            engine.update(index, row)
            store = store.copy()
            store[index] = row
        else:
            removed = rng.choice(
                store.shape[0], size=int(rng.integers(1, 10)), replace=False
            )
            engine.delete(removed)
            store = np.delete(store, removed, axis=0)
        if step % 3 == 2:
            queries = _make_queries(values, np.arange(300, 310), rng)
            online = engine.impute_batch(queries)
            cold = _cold_impute(store, queries, **params)
            np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("fraction", [0.0, 0.5, None])
def test_hybrid_policy_stays_exact(stream_values, fraction):
    """Any fallback threshold (always/sometimes/never) gives cold answers."""
    values = stream_values
    params = dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=25)
    rng = np.random.default_rng(8)
    engine = OnlineImputationEngine(
        incremental_fallback_fraction=fraction, **params
    )
    engine.append(values[:80])
    queries = _make_queries(values, np.arange(300, 308), rng)
    engine.impute_batch(queries)
    engine.append(values[80:220])  # large batch: dirties most prefixes
    engine.update(5, values[250])
    engine.delete([0, 1, 2])
    store = np.vstack([values[3:5], values[250:251], values[6:220]])
    online = engine.impute_batch(queries)
    cold = _cold_impute(store, queries, **params)
    np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)
    if fraction == 0.0:
        assert engine.stats["hybrid_full_rebuilds"] > 0
    if fraction is None:
        assert engine.stats["hybrid_full_rebuilds"] == 0


def test_hybrid_fallback_counter_fires_on_heavy_append(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        incremental_fallback_fraction=0.5, k=4, learning="adaptive",
        stepping=5, max_learning_neighbors=25,
    )
    engine.append(values[:60])
    queries = values[300:304].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    engine.append(values[60:300])  # store quintuples: way past the threshold
    engine.impute_batch(queries)
    assert engine.stats["hybrid_full_rebuilds"] >= 1
    assert engine.stats["incremental_refreshes"] >= 1


def test_fallback_fraction_knob_roundtrip():
    previous = set_online_fallback_fraction(0.3)
    try:
        engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
        assert engine.incremental_fallback_fraction == 0.3
        assert set_online_fallback_fraction("none") == 0.3
        assert OnlineImputationEngine(
            k=3, learning="fixed", learning_neighbors=3
        ).incremental_fallback_fraction is None
    finally:
        set_online_fallback_fraction(previous)
    with pytest.raises(ConfigurationError):
        set_online_fallback_fraction(1.5)
    with pytest.raises(ConfigurationError):
        OnlineImputationEngine(
            incremental_fallback_fraction=-0.2, k=3, learning="fixed",
            learning_neighbors=3,
        )


def test_delete_to_empty_store_and_resume(stream_values):
    values = stream_values
    params = dict(k=4, learning="fixed", learning_neighbors=5)
    engine = OnlineImputationEngine(**params)
    engine.append(values[:50])
    queries = values[300:305].copy()
    queries[:, 1] = np.nan
    engine.impute_batch(queries)
    engine.delete(np.arange(50))
    assert engine.n_tuples == 0
    assert engine.cached_attributes() == []
    with pytest.raises(NotFittedError):
        engine.impute_batch(queries)
    # Streaming resumes cleanly on the kept schema.
    engine.append(values[50:150])
    online = engine.impute_batch(queries)
    cold = _cold_impute(values[50:150], queries, **params)
    np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)


def test_lazy_mutations_batch_into_one_refresh(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        refresh_policy="lazy", k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:100])
    queries = values[300:305].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    refreshes = (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
    )
    # A burst of mixed mutations without queries must not refresh at all...
    engine.append(values[100:120])
    engine.update(3, values[200])
    engine.delete([0, 7])
    engine.append(values[120:140])
    assert (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
        == refreshes
    )
    # ...and the next imputation folds the whole burst into a single refresh.
    engine.impute_batch(queries)
    assert (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
        == refreshes + 1
    )


def test_eager_mutations_refresh_immediately(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        refresh_policy="eager", k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:100])
    queries = values[300:305].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    before = engine.stats["incremental_refreshes"]
    engine.update(11, values[200])
    engine.delete([5])
    assert engine.stats["incremental_refreshes"] == before + 2


def test_empty_append_is_a_true_noop(stream_values):
    """Satellite regression: zero-row appends touch no counters or states."""
    values = stream_values
    engine = OnlineImputationEngine(
        refresh_policy="eager", k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:50])
    queries = values[300:303].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    stats_before = dict(engine.stats)
    engine.append(np.empty((0, values.shape[1])))
    assert engine.stats == stats_before
    assert engine.n_tuples == 50


def test_empty_delete_is_a_noop(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(k=4, learning="fixed", learning_neighbors=5)
    engine.append(values[:50])
    stats_before = dict(engine.stats)
    engine.delete(np.empty(0, dtype=int))
    assert engine.stats == stats_before and engine.n_tuples == 50


def test_lifecycle_errors(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
    with pytest.raises(NotFittedError):
        engine.delete([0])
    with pytest.raises(NotFittedError):
        engine.update(0, values[0])
    engine.append(values[:40])
    with pytest.raises(ConfigurationError):
        engine.delete([40])
    with pytest.raises(ConfigurationError):
        engine.delete([-1])
    with pytest.raises(ConfigurationError):
        engine.update(40, values[0])
    with pytest.raises(DataError):
        engine.update(0, values[0, :-1])  # width mismatch
    bad = values[0].copy()
    bad[1] = np.nan
    with pytest.raises(DataError):
        engine.update(0, bad)


def test_duplicate_delete_indices_collapse(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
    engine.append(values[:30])
    engine.delete([4, 4, 9])
    assert engine.n_tuples == 28
    assert engine.stats["deleted_rows"] == 2


def test_ops_trace_cli_roundtrip(tmp_path, stream_values):
    """The --ops CSV replay drives the full lifecycle end to end."""
    import csv

    from repro.online.cli import main

    values = stream_values
    width = values.shape[1]
    trace = tmp_path / "churn.csv"
    with trace.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["op", "index"] + [f"a{i}" for i in range(width)])
        for row in values[:40]:
            writer.writerow(["append", ""] + [f"{v:.8f}" for v in row])
        writer.writerow(["update", "3"] + [f"{v:.8f}" for v in values[50]])
        writer.writerow(["delete", "0;5"] + [""] * width)
        query = [f"{v:.8f}" for v in values[60]]
        query[1] = ""
        writer.writerow(["impute", ""] + query)
    out = tmp_path / "imputed.csv"
    snap = tmp_path / "snap"
    code = main([
        str(trace), "--ops", "--learning", "fixed", "--learning-neighbors", "4",
        "--k", "3", "--output", str(out), "--snapshot", str(snap),
    ])
    assert code == 0
    assert out.exists() and snap.exists()
    # The CLI's imputed value equals a cold refit over the surviving store.
    store = np.delete(values[:40].copy(), [0, 5], axis=0)
    store[2] = values[50]  # index 3 updated, then rows 0 and 5 removed
    query_row = values[60].copy()
    query_row[1] = np.nan
    cold = _cold_impute(
        store, query_row[None, :], k=3, learning="fixed", learning_neighbors=4
    )
    from repro.data.io import read_csv

    written = read_csv(out)
    np.testing.assert_allclose(written.raw, cold, rtol=1e-9, atol=1e-12)


def test_ops_trace_cli_rejects_bad_traces(tmp_path):
    from repro.online.cli import main

    trace = tmp_path / "bad.csv"
    trace.write_text("op,index,a,b\nfrobnicate,,1.0,2.0\n")
    assert main([str(trace), "--ops", "--k", "3"]) == 2
    trace.write_text("op,index,a,b\ndelete,,1.0,2.0\n")
    assert main([str(trace), "--ops", "--k", "3"]) == 2
