"""Artifact persistence: save→load round-trips and manifest validation."""

import json

import numpy as np
import pytest

from repro import IIMImputer, KNNImputer, MeanImputer, load_dataset
from repro.baselines.base import BaseImputer
from repro.data.missing import inject_missing
from repro.exceptions import ConfigurationError
from repro.online import OnlineImputationEngine, read_artifact, write_artifact
from repro.online.artifacts import ARTIFACT_VERSION, MANIFEST_FILENAME


@pytest.fixture(scope="module")
def injection():
    relation = load_dataset("asf", size=180)
    return inject_missing(relation, fraction=0.1, random_state=1)


@pytest.mark.parametrize(
    "make_imputer",
    [
        lambda: IIMImputer(k=5, learning="fixed", learning_neighbors=8),
        lambda: IIMImputer(k=5, learning="adaptive", stepping=5,
                           max_learning_neighbors=20),
        lambda: MeanImputer(),
        lambda: KNNImputer(k=4, weighting="distance"),
    ],
    ids=["iim-fixed", "iim-adaptive", "mean", "knn"],
)
def test_imputer_roundtrip_is_bit_identical(injection, make_imputer, tmp_path):
    imputer = make_imputer()
    imputer.fit(injection.dirty)
    before = imputer.impute(injection.dirty).raw
    imputer.save(tmp_path / "artifact")
    restored = BaseImputer.load(tmp_path / "artifact")
    assert type(restored) is type(imputer)
    after = restored.impute(injection.dirty).raw
    np.testing.assert_array_equal(before, after)


def test_iim_roundtrip_keeps_learned_models(injection, tmp_path):
    imputer = IIMImputer(k=5, learning="adaptive", stepping=5,
                         max_learning_neighbors=20)
    imputer.fit_impute(injection.dirty)
    imputer.save(tmp_path / "artifact")
    restored = IIMImputer.load(tmp_path / "artifact")
    # The lazily-learned models travelled with the artifact.
    for target_index in imputer._models:
        np.testing.assert_array_equal(
            restored.learned_models(target_index).parameters,
            imputer.learned_models(target_index).parameters,
        )


def test_load_with_class_check(injection, tmp_path):
    imputer = MeanImputer().fit(injection.dirty)
    imputer.save(tmp_path / "artifact")
    assert isinstance(MeanImputer.load(tmp_path / "artifact"), MeanImputer)
    with pytest.raises(ConfigurationError):
        KNNImputer.load(tmp_path / "artifact")


def test_save_requires_fit(tmp_path):
    with pytest.raises(ConfigurationError):
        MeanImputer().save(tmp_path / "artifact")


def test_get_params_reflects_constructor():
    imputer = KNNImputer(k=7, weighting="distance")
    assert imputer.get_params() == {
        "k": 7, "weighting": "distance", "metric": "paper_euclidean",
    }
    params = IIMImputer(k=3, learning="fixed", learning_neighbors=2).get_params()
    assert params["learning"] == "fixed" and params["learning_neighbors"] == 2
    rebuilt = IIMImputer(**params)
    assert rebuilt.get_params() == params


def test_engine_snapshot_roundtrip(tmp_path):
    values = load_dataset("ccpp", size=220).raw
    engine = OnlineImputationEngine(
        k=4, learning="adaptive", stepping=3, max_learning_neighbors=20
    )
    engine.append(values[:150])
    rng = np.random.default_rng(0)
    queries = values[150:170].copy()
    for r in range(queries.shape[0]):
        queries[r, rng.integers(queries.shape[1])] = np.nan
    warm = engine.impute_batch(queries)
    engine.snapshot(tmp_path / "engine")

    restored = OnlineImputationEngine.load(tmp_path / "engine")
    np.testing.assert_array_equal(warm, restored.impute_batch(queries))
    # The restored engine keeps streaming identically to the original.
    engine.append(values[170:200])
    restored.append(values[170:200])
    np.testing.assert_array_equal(
        engine.impute_batch(queries), restored.impute_batch(queries)
    )


def test_engine_snapshot_after_churn_roundtrip(tmp_path):
    """Snapshots fold pending lifecycle mutations and restore bit-for-bit."""
    values = load_dataset("ccpp", size=220).raw
    engine = OnlineImputationEngine(
        k=4, learning="adaptive", stepping=3, max_learning_neighbors=20
    )
    engine.append(values[:150])
    queries = values[200:210].copy()
    queries[:, 1] = np.nan
    engine.impute_batch(queries)
    # Leave a burst of lazy mutations pending at snapshot time.
    engine.update(7, values[160])
    engine.delete([0, 33, 149])
    engine.append(values[150:160])
    engine.snapshot(tmp_path / "engine")

    restored = OnlineImputationEngine.load(tmp_path / "engine")
    np.testing.assert_array_equal(
        engine.impute_batch(queries), restored.impute_batch(queries)
    )
    # Both engines keep accepting lifecycle mutations identically.
    engine.delete([5])
    restored.delete([5])
    engine.update(2, values[170])
    restored.update(2, values[170])
    np.testing.assert_array_equal(
        engine.impute_batch(queries), restored.impute_batch(queries)
    )
    np.testing.assert_array_equal(
        engine.store_relation().raw, restored.store_relation().raw
    )


def test_manifest_v3_carries_store_metadata(tmp_path):
    values = load_dataset("ccpp", size=120).raw
    engine = OnlineImputationEngine(
        k=3, learning="fixed", learning_neighbors=4, shard_capacity=32
    )
    engine.append(values[:80])
    path = engine.snapshot(tmp_path / "engine")
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    assert manifest["version"] == ARTIFACT_VERSION == 3
    assert manifest["store"]["shard_capacity"] == 32
    assert manifest["store"]["n_rows"] == 80
    assert manifest["engine"]["journal_capacity"] == engine.journal_capacity
    restored = OnlineImputationEngine.load(path)
    assert restored.shard_capacity == 32
    assert restored.store.n_shards == engine.store.n_shards


def test_version2_snapshot_migrates_to_sharded_store(tmp_path):
    """Pre-sharding (v2) engine artifacts load by adopting default knobs."""
    values = load_dataset("ccpp", size=160).raw
    engine = OnlineImputationEngine(
        k=4, learning="adaptive", stepping=3, max_learning_neighbors=15
    )
    engine.append(values[:120])
    queries = values[120:130].copy()
    queries[:, 1] = np.nan
    warm = engine.impute_batch(queries)
    path = engine.snapshot(tmp_path / "engine")

    # Rewrite the manifest the way a v2 snapshot looked: version 2, no
    # store section, no sharding knobs in the engine section.
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    manifest["version"] = 2
    del manifest["store"]
    for key in ("shard_capacity", "journal_capacity", "delete_cost_mode"):
        del manifest["engine"][key]
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))

    restored = OnlineImputationEngine.load(path)
    np.testing.assert_array_equal(warm, restored.impute_batch(queries))
    # The migrated engine keeps streaming through the full lifecycle.
    engine.delete([3, 40])
    restored.delete([3, 40])
    engine.append(values[130:140])
    restored.append(values[130:140])
    np.testing.assert_array_equal(
        engine.impute_batch(queries), restored.impute_batch(queries)
    )


@pytest.mark.parametrize(
    "corruption",
    [
        lambda m: m.pop("store"),
        lambda m: m["store"].update(shard_capacity=-5),
        lambda m: m["store"].update(shard_capacity="many"),
        lambda m: m["store"].update(n_rows=999),
    ],
    ids=["missing-section", "negative-capacity", "non-integer-capacity",
         "row-mismatch"],
)
def test_corrupt_shard_metadata_rejected_with_recreate_hint(tmp_path, corruption):
    values = load_dataset("ccpp", size=100).raw
    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=4)
    engine.append(values[:60])
    path = engine.snapshot(tmp_path / "engine")
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    corruption(manifest)
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="re-create the snapshot"):
        OnlineImputationEngine.load(path)


def test_version1_snapshot_rejected_with_hint(tmp_path):
    """Pre-lifecycle snapshots fail loudly instead of restoring garbage."""
    values = load_dataset("ccpp", size=120).raw
    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=4)
    engine.append(values[:80])
    path = engine.snapshot(tmp_path / "engine")
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    manifest["version"] = 1
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="tuple-lifecycle"):
        OnlineImputationEngine.load(path)


def test_corrupted_manifest_raises(tmp_path):
    path = write_artifact(tmp_path / "a", "imputer", {"class": "MeanImputer"}, {
        "relation_values": np.zeros((2, 2))
    })
    (path / MANIFEST_FILENAME).write_text("{not valid json")
    with pytest.raises(ConfigurationError, match="corrupted"):
        read_artifact(path)


def test_version_mismatch_raises(tmp_path):
    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.zeros(3)})
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    manifest["version"] = ARTIFACT_VERSION + 1
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="version mismatch"):
        read_artifact(path)


def test_wrong_format_and_kind_raise(tmp_path):
    path = write_artifact(tmp_path / "a", "engine", {}, {"x": np.zeros(3)})
    with pytest.raises(ConfigurationError, match="holds a 'engine'"):
        read_artifact(path, expected_kind="imputer")
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    manifest["format"] = "something-else"
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="not a repro-artifact"):
        read_artifact(path)


def _arrays_path(path):
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    return path / manifest["arrays_file"]


def test_missing_files_raise(tmp_path):
    with pytest.raises(ConfigurationError, match="manifest not found"):
        read_artifact(tmp_path / "nowhere")
    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.zeros(3)})
    _arrays_path(path).unlink()
    with pytest.raises(ConfigurationError, match="array file not found"):
        read_artifact(path)


def test_legacy_fixed_arrays_name_still_reads(tmp_path):
    """Artifacts written before unique array names keep loading."""
    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.arange(3.0)})
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    _arrays_path(path).rename(path / "arrays.npz")
    del manifest["arrays_file"]
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    _, arrays = read_artifact(path)
    np.testing.assert_array_equal(arrays["x"], np.arange(3.0))


def test_torn_arrays_file_rejected_with_recreate_hint(tmp_path):
    """A half-written .npz is detected, not deserialized into garbage."""
    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.arange(8.0)})
    arrays_path = _arrays_path(path)
    data = arrays_path.read_bytes()
    arrays_path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ConfigurationError, match="re-create the snapshot"):
        read_artifact(path)


@pytest.mark.parametrize(
    "site", ["artifact.arrays", "artifact.manifest", "artifact.commit"]
)
def test_crashed_overwrite_leaves_old_artifact_intact(tmp_path, site):
    """A crash at any point of an overwrite leaves old-or-new, never torn."""
    from repro.reliability import Fault, FaultPlan, SimulatedCrash

    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.zeros(3)})
    plan = FaultPlan([Fault(site, "crash")])
    with pytest.raises(SimulatedCrash):
        write_artifact(
            tmp_path / "a", "imputer", {}, {"x": np.ones(3)}, injector=plan
        )
    _, arrays = read_artifact(path)
    np.testing.assert_array_equal(arrays["x"], np.zeros(3))
    # The next (uninjected) overwrite commits and GCs the debris.
    write_artifact(tmp_path / "a", "imputer", {}, {"x": np.full(3, 2.0)})
    _, arrays = read_artifact(path)
    np.testing.assert_array_equal(arrays["x"], np.full(3, 2.0))
    assert sorted(p.name for p in path.glob("arrays*.npz")) == [
        json.loads((path / MANIFEST_FILENAME).read_text())["arrays_file"]
    ]


def test_torn_arrays_write_never_commits(tmp_path):
    """A torn byte-level write dies in staging; the target stays absent."""
    from repro.reliability import Fault, FaultPlan, SimulatedCrash

    plan = FaultPlan([Fault("artifact.arrays", "torn_write", byte_offset=10)])
    with pytest.raises(SimulatedCrash):
        write_artifact(tmp_path / "a", "imputer", {}, {"x": np.zeros(3)},
                       injector=plan)
    with pytest.raises(ConfigurationError, match="manifest not found"):
        read_artifact(tmp_path / "a")


def test_array_mismatch_raises(tmp_path):
    path = write_artifact(tmp_path / "a", "imputer", {}, {"x": np.zeros(3)})
    manifest = json.loads((path / MANIFEST_FILENAME).read_text())
    manifest["arrays"] = ["x", "y"]
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
    with pytest.raises(ConfigurationError, match="do not match the manifest"):
        read_artifact(path)
