"""Columnar store unit tests + shard-boundary regressions.

The sharded store must be invisible to every consumer: mutation batches
that straddle shard edges, shards that shrink to zero live rows, and
distance ties that span shard boundaries must all produce results
bit-identical to the unsharded reference (a plain matrix and one global
``(distance, index)`` lexsort).
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.neighbors import BruteForceNeighbors, NeighborOrderCache
from repro.neighbors.distance import get_metric
from repro.online import (
    ColumnarTupleStore,
    MutationJournal,
    ShardedNeighbors,
    sharded_topk,
)

RNG = np.random.default_rng(42)
METRIC = get_metric("paper_euclidean")


def _reference_topk(queries, data, k):
    distances = METRIC(queries, data)
    order = np.lexsort(
        (np.broadcast_to(np.arange(data.shape[0]), distances.shape), distances),
        axis=1,
    )[:, :k]
    return np.take_along_axis(distances, order, axis=1), order


# --------------------------------------------------------------------------- #
# ColumnarTupleStore basics
# --------------------------------------------------------------------------- #
def test_append_straddling_shard_edges_round_trips():
    store = ColumnarTupleStore(3, shard_capacity=8)
    first = RNG.normal(size=(5, 3))
    second = RNG.normal(size=(11, 3))  # crosses the first shard edge
    store.append(first)
    store.append(second)
    assert store.n_shards == 2
    np.testing.assert_array_equal(store.matrix(), np.vstack([first, second]))
    # Column views gather across the shard boundary transparently.
    np.testing.assert_array_equal(
        store.column(1), np.vstack([first, second])[:, 1]
    )


def test_delete_compacts_and_retains_until_release():
    store = ColumnarTupleStore(2, shard_capacity=4)
    values = RNG.normal(size=(10, 2))
    store.append(values)
    retired = store.delete([2, 5, 9])
    np.testing.assert_array_equal(
        store.matrix(), np.delete(values, [2, 5, 9], axis=0)
    )
    # MVCC retention: the retired payloads stay readable by slot...
    np.testing.assert_array_equal(store.rows(retired), values[[2, 5, 9]])
    assert store.n_pending == 3 and store.n_free == 0
    # ...until released, at which point the slots recycle lowest-first.
    store.release(retired)
    assert store.n_pending == 0 and store.n_free == 3
    slots = store.append(RNG.normal(size=(2, 2)))
    assert sorted(slots) == [2, 5]
    assert store.recycled_slots == 2


def test_update_writes_fresh_slot_and_keeps_old_version():
    store = ColumnarTupleStore(2, shard_capacity=4)
    values = RNG.normal(size=(3, 2))
    store.append(values)
    revised = RNG.normal(size=2)
    old_slot, new_slot = store.update(1, revised)
    assert old_slot != new_slot
    np.testing.assert_array_equal(store.matrix()[1], revised)
    np.testing.assert_array_equal(store.rows([old_slot])[0], values[1])


def test_shard_shrinks_to_zero_live_rows_and_refills():
    store = ColumnarTupleStore(2, shard_capacity=4)
    values = RNG.normal(size=(12, 2))
    store.append(values)
    # Empty the middle shard (logical rows 4..7 hold slots 4..7 initially).
    retired = store.delete([4, 5, 6, 7])
    assert store.live_rows_per_shard().tolist() == [4, 0, 4]
    np.testing.assert_array_equal(
        store.matrix(), np.delete(values, [4, 5, 6, 7], axis=0)
    )
    store.release(retired)
    # The emptied shard refills through the free list before a new shard
    # is allocated.
    fresh = RNG.normal(size=(4, 2))
    store.append(fresh)
    assert store.n_shards == 3
    assert store.live_rows_per_shard().tolist() == [4, 4, 4]
    np.testing.assert_array_equal(store.matrix()[-4:], fresh)


def test_store_validates_shapes():
    store = ColumnarTupleStore(3, shard_capacity=4)
    with pytest.raises(DataError):
        store.append(RNG.normal(size=(2, 4)))
    store.append(RNG.normal(size=(2, 3)))
    with pytest.raises(DataError):
        store.update(0, RNG.normal(size=4))


def test_all_rows_deleted_store_stays_usable():
    store = ColumnarTupleStore(2, shard_capacity=4)
    store.append(RNG.normal(size=(6, 2)))
    retired = store.clear_live()
    assert store.n_live == 0 and retired.shape[0] == 6
    store.release(retired)
    fresh = RNG.normal(size=(3, 2))
    store.append(fresh)
    np.testing.assert_array_equal(store.matrix(), fresh)


# --------------------------------------------------------------------------- #
# Per-shard distance kernels and the cross-shard top-K merge
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shard_capacity", [3, 7, 64])
def test_view_pairwise_matches_monolithic_metric(shard_capacity):
    store = ColumnarTupleStore(4, shard_capacity=shard_capacity)
    values = RNG.normal(size=(23, 4))
    store.append(values)
    store.delete([1, 8, 15])  # leave slot holes so positions != slots
    view = store.feature_view(exclude=2)
    reference = store.matrix()[:, [0, 1, 3]]
    queries = RNG.normal(size=(5, 3))
    np.testing.assert_array_equal(
        view.pairwise(queries, METRIC), METRIC(queries, reference)
    )
    np.testing.assert_array_equal(
        view.pairwise(queries[0], METRIC), METRIC(queries[0], reference)
    )


@pytest.mark.parametrize("shard_capacity", [2, 5, 16])
def test_sharded_topk_matches_global_lexsort(shard_capacity):
    store = ColumnarTupleStore(3, shard_capacity=shard_capacity)
    values = RNG.normal(size=(30, 3))
    store.append(values)
    view = store.feature_view(exclude=None)
    queries = RNG.normal(size=(6, 3))
    for k in (1, 4, 11, 30):
        dist, idx = sharded_topk(view, queries, METRIC, k)
        ref_dist, ref_idx = _reference_topk(queries, values, k)
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(dist, ref_dist)


def test_sharded_topk_exact_ties_across_shards():
    """Duplicate rows land in different shards: the merge must break the
    resulting exact distance ties by logical index, like the global sort."""
    base = RNG.normal(size=(4, 3))
    # 16 rows = 4 copies of each duplicate, interleaved so every shard of
    # capacity 3 holds copies of different rows.
    values = np.vstack([base[i % 4] for i in range(16)])
    store = ColumnarTupleStore(3, shard_capacity=3)
    store.append(values)
    view = store.feature_view(exclude=None)
    queries = np.vstack([base[0], base[2], RNG.normal(size=3)])
    for k in (1, 3, 7, 16):
        dist, idx = sharded_topk(view, queries, METRIC, k)
        ref_dist, ref_idx = _reference_topk(queries, values, k)
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(dist, ref_dist)


def test_sharded_neighbors_matches_brute_force():
    store = ColumnarTupleStore(5, shard_capacity=6)
    values = RNG.normal(size=(40, 5))
    store.append(values)
    store.delete([0, 13, 26])
    view = store.feature_view(exclude=4)
    reference = store.matrix()[:, :4]
    queries = RNG.normal(size=(7, 4))
    sharded = ShardedNeighbors(view)
    brute = BruteForceNeighbors().fit(reference)
    for k in (1, 5, 20):
        dist_s, idx_s = sharded.kneighbors(queries, k)
        dist_b, idx_b = brute.kneighbors(queries, k)
        np.testing.assert_array_equal(idx_s, idx_b)
        np.testing.assert_array_equal(dist_s, dist_b)
    with pytest.raises(ConfigurationError):
        sharded.kneighbors(queries, 1000)


def test_store_backed_cache_matches_matrix_cache_through_lifecycle():
    """The unsharded reference ordering: one matrix-backed cache, one
    store-backed cache, identical mutations — identical orderings, reports
    and distances at every step (shard edges crossed throughout)."""
    width = 4
    store = ColumnarTupleStore(width, shard_capacity=5)
    values = RNG.normal(size=(18, width))
    store.append(values)
    feature_cols = [0, 1, 3]
    view_cache = NeighborOrderCache(
        store.feature_view(exclude=2), max_length=6, keep_distances=True
    )
    matrix_cache = NeighborOrderCache(
        values[:, feature_cols], max_length=6, keep_distances=True
    )
    rng = np.random.default_rng(9)
    reference = values.copy()
    for _ in range(12):
        kind = rng.choice(["append", "remove", "replace"])
        if kind == "append":
            rows = rng.normal(size=(int(rng.integers(1, 6)), width))
            slots = store.append(rows)
            r_view = view_cache.append(slots=slots)
            r_matrix = matrix_cache.append(rows[:, feature_cols])
            reference = np.vstack([reference, rows])
            np.testing.assert_array_equal(
                r_view.first_changed, r_matrix.first_changed
            )
        elif kind == "remove":
            if reference.shape[0] < 10:
                continue
            idx = np.unique(rng.integers(0, reference.shape[0], size=3))
            store.delete(idx)
            r_view = view_cache.remove(idx)
            r_matrix = matrix_cache.remove(idx)
            reference = np.delete(reference, idx, axis=0)
            np.testing.assert_array_equal(
                r_view.first_changed, r_matrix.first_changed
            )
        else:
            index = int(rng.integers(reference.shape[0]))
            row = rng.normal(size=width)
            _, new_slot = store.update(index, row)
            r_view = view_cache.replace(index, slot=new_slot)
            r_matrix = matrix_cache.replace(index, row[feature_cols])
            reference[index] = row
            np.testing.assert_array_equal(
                r_view.first_changed, r_matrix.first_changed
            )
        np.testing.assert_array_equal(
            view_cache.order_matrix(), matrix_cache.order_matrix()
        )
        np.testing.assert_array_equal(
            view_cache.order_distances, matrix_cache.order_distances
        )


# --------------------------------------------------------------------------- #
# MutationJournal ring semantics
# --------------------------------------------------------------------------- #
def test_journal_ring_spills_and_floor_advances():
    journal = MutationJournal(capacity=3)
    for version in range(1, 6):
        spilled = journal.record(version, "append", np.array([version]))
        assert len(journal) <= 3
    assert journal.spills == 2
    assert journal.floor == 2
    assert journal.since(1) is None  # older than the floor: spilled
    assert [op for op, _ in journal.since(2)] == ["append"] * 3
    dropped = journal.prune(4)
    assert [entry[0] for entry in dropped] == [3, 4]
    assert journal.since(4) is not None and len(journal.since(4)) == 1


def test_journal_memory_is_bounded_by_capacity():
    journal = MutationJournal(capacity=8)
    for version in range(1, 200):
        journal.record(version, "append", np.arange(64, dtype=np.int64))
    assert len(journal) == 8
    assert journal.nbytes <= 8 * 64 * 8
