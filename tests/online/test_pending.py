"""The pending side-store: incomplete appends, promotion, persistence.

Incomplete tuples appended with ``allow_incomplete=True`` park beside the
store — invisible to model learning and neighbour search — until
``promote_pending`` imputes them (one batch, identical to calling
``impute_batch`` on them) and appends the result.  Snapshots carry the
side-store, so a crash between append and promotion loses nothing.
"""

import numpy as np
import pytest

from repro import load_dataset
from repro.exceptions import DataError
from repro.online import OnlineImputationEngine

PARAMS = dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=20)


@pytest.fixture(scope="module")
def values():
    return load_dataset("asf", size=140).raw


def _engine_with_pending(values, n_store=100, n_pending=8, seed=3):
    rng = np.random.default_rng(seed)
    engine = OnlineImputationEngine(**PARAMS)
    engine.append(values[:n_store])
    pending = values[n_store : n_store + n_pending].copy()
    holes = rng.integers(0, pending.shape[1], size=n_pending)
    pending[np.arange(n_pending), holes] = np.nan
    engine.append(pending, allow_incomplete=True)
    return engine, pending


def test_incomplete_appends_are_rejected_by_default(values):
    engine = OnlineImputationEngine(**PARAMS)
    engine.append(values[:50])
    row = values[50].copy()
    row[0] = np.nan
    with pytest.raises(DataError, match="complete tuples only"):
        engine.append(row[None, :])
    assert engine.n_tuples == 50 and engine.n_pending == 0


def test_incomplete_appends_park_in_the_side_store(values):
    engine, pending = _engine_with_pending(values)
    assert engine.n_tuples == 100
    assert engine.n_pending == 8
    # pending rows never feed the store relation unless asked for
    assert engine.store_relation().raw.shape[0] == 100
    stacked = engine.store_relation(include_pending=True).raw
    assert stacked.shape[0] == 108
    np.testing.assert_array_equal(np.asarray(stacked)[100:], pending)


def test_mixed_batches_split_between_store_and_pending(values):
    engine = OnlineImputationEngine(**PARAMS)
    engine.append(values[:60])
    batch = values[60:66].copy()
    batch[1, 2] = np.nan
    batch[4, 0] = np.nan
    engine.append(batch, allow_incomplete=True)
    assert engine.n_tuples == 64  # the 4 complete rows took the normal path
    assert engine.n_pending == 2


def test_promotion_matches_impute_batch_then_append(values):
    engine_a, pending = _engine_with_pending(values)
    engine_b, _ = _engine_with_pending(values)
    expected = engine_b.impute_batch(pending)
    promoted = engine_a.promote_pending()
    assert promoted == 8
    assert engine_a.n_pending == 0 and engine_a.n_tuples == 108
    np.testing.assert_array_equal(
        np.asarray(engine_a.store_relation().raw)[100:], expected
    )
    # promoting again is a no-op
    assert engine_a.promote_pending() == 0


def test_pending_rows_do_not_shift_imputation_results(values):
    """Side-store tuples never act as neighbours or training data."""
    clean = OnlineImputationEngine(**PARAMS)
    clean.append(values[:100])
    engine, _ = _engine_with_pending(values)
    queries = values[120:130].copy()
    queries[:, 1] = np.nan
    np.testing.assert_array_equal(
        engine.impute_batch(queries), clean.impute_batch(queries)
    )


def test_snapshot_roundtrip_carries_the_pending_store(values, tmp_path):
    engine, pending = _engine_with_pending(values)
    queries = values[120:130].copy()
    queries[:, 0] = np.nan
    before = engine.impute_batch(queries)

    path = tmp_path / "snapshot"
    engine.snapshot(path)
    restored = OnlineImputationEngine.load(path)
    assert restored.n_tuples == 100 and restored.n_pending == 8
    np.testing.assert_array_equal(
        np.asarray(restored.store_relation(include_pending=True).raw)[100:],
        pending,
    )
    np.testing.assert_array_equal(restored.impute_batch(queries), before)
    # the restored side-store promotes exactly like the original
    assert restored.promote_pending() == engine.promote_pending() == 8
    np.testing.assert_array_equal(
        restored.store_relation().raw, engine.store_relation().raw
    )


def test_snapshot_without_pending_stays_loadable(values, tmp_path):
    engine = OnlineImputationEngine(**PARAMS)
    engine.append(values[:60])
    path = tmp_path / "snapshot"
    engine.snapshot(path)
    restored = OnlineImputationEngine.load(path)
    assert restored.n_pending == 0 and restored.n_tuples == 60
