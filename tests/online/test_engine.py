"""Online engine: equivalence with cold refits, cache behaviour, errors."""

import numpy as np
import pytest

from repro import IIMImputer, load_dataset
from repro.config import (
    set_online_model_cache_size,
    set_online_refresh_policy,
)
from repro.data.relation import Relation
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.online import OnlineImputationEngine


@pytest.fixture(scope="module")
def stream_values():
    return load_dataset("asf", size=320).raw


def _cold_impute(schema_width, store_rows, queries, **params):
    relation = Relation(store_rows)
    imputer = IIMImputer(**params).fit(relation)
    return imputer.impute(Relation(queries)).raw


def _make_queries(values, rows, rng, n_missing=1):
    queries = values[rows].copy()
    for r in range(queries.shape[0]):
        cols = rng.choice(queries.shape[1], size=n_missing, replace=False)
        queries[r, cols] = np.nan
    return queries


@pytest.mark.parametrize(
    "params",
    [
        dict(k=5, learning="fixed", learning_neighbors=7),
        dict(k=5, learning="adaptive", stepping=5, max_learning_neighbors=30),
        dict(
            k=5, learning="adaptive", stepping=5, max_learning_neighbors=30,
            combination="uniform",
        ),
        dict(
            k=5, learning="adaptive", stepping=5, max_learning_neighbors=30,
            combination="distance",
        ),
        dict(
            k=5, learning="adaptive", stepping=7, max_learning_neighbors=30,
            include_global=False,
        ),
    ],
    ids=["fixed", "adaptive-voting", "adaptive-uniform", "adaptive-distance",
         "adaptive-no-global"],
)
@pytest.mark.parametrize("policy", ["lazy", "eager"])
def test_engine_matches_cold_refit(stream_values, params, policy):
    """Acceptance: any append sequence == cold IIMImputer refit (rtol 1e-9)."""
    values = stream_values
    rng = np.random.default_rng(0)
    engine = OnlineImputationEngine(refresh_policy=policy, **params)
    offset = 120
    engine.append(values[:offset])
    for batch in (40, 1, 25, 60):
        engine.append(values[offset : offset + batch])
        offset += batch
        queries = _make_queries(values, np.arange(280, 295), rng, n_missing=2)
        online = engine.impute_batch(queries)
        cold = _cold_impute(values.shape[1], values[:offset], queries, **params)
        np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)
    assert engine.stats["incremental_refreshes"] > 0


def test_engine_warmup_from_tiny_store(stream_values):
    """Structure changes (growing candidate grid, clamped k) stay exact."""
    values = stream_values
    rng = np.random.default_rng(1)
    params = dict(k=4, learning="adaptive", stepping=3, max_learning_neighbors=25)
    engine = OnlineImputationEngine(**params)
    engine.append(values[:3])
    offset = 3
    for batch in (2, 5, 10, 30, 60):
        engine.append(values[offset : offset + batch])
        offset += batch
        queries = _make_queries(values, np.arange(280, 290), rng)
        online = engine.impute_batch(queries)
        cold = _cold_impute(values.shape[1], values[:offset], queries, **params)
        np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)
    assert engine.stats["full_refreshes"] > 0


def test_lazy_appends_batch_into_one_refresh(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        refresh_policy="lazy", k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:100])
    queries = values[300:305].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    refreshes = (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
    )
    # Three consecutive appends without queries must not refresh at all...
    engine.append(values[100:120]).append(values[120:140]).append(values[140:160])
    assert (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
        == refreshes
    )
    # ...and the next imputation folds them into a single refresh.
    engine.impute_batch(queries)
    assert (
        engine.stats["full_refreshes"] + engine.stats["incremental_refreshes"]
        == refreshes + 1
    )


def test_eager_refreshes_on_append(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        refresh_policy="eager", k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:100])
    queries = values[300:305].copy()
    queries[:, 0] = np.nan
    engine.impute_batch(queries)
    before = engine.stats["incremental_refreshes"]
    engine.append(values[100:120])
    assert engine.stats["incremental_refreshes"] == before + 1


def test_lru_eviction(stream_values):
    values = stream_values
    engine = OnlineImputationEngine(
        model_cache_size=2, k=4, learning="fixed", learning_neighbors=5
    )
    engine.append(values[:150])
    width = values.shape[1]
    assert width >= 3
    for target in range(3):
        queries = values[300:304].copy()
        queries[:, target] = np.nan
        engine.impute_batch(queries)
    assert len(engine.cached_attributes()) == 2
    assert engine.stats["cache_evictions"] == 1
    # An evicted state is rebuilt on demand and still serves exact answers.
    queries = values[300:304].copy()
    queries[:, 0] = np.nan
    online = engine.impute_batch(queries)
    cold = _cold_impute(
        width, values[:150], queries, k=4, learning="fixed", learning_neighbors=5
    )
    np.testing.assert_allclose(online, cold, rtol=1e-9, atol=1e-12)


def test_from_relation_and_relation_roundtrip(stream_values):
    relation = Relation(stream_values[:100], name="stream")
    engine = OnlineImputationEngine.from_relation(
        relation, k=3, learning="fixed", learning_neighbors=4
    )
    assert engine.n_tuples == 100
    dirty = stream_values[200:206].copy()
    dirty[:, 1] = np.nan
    imputed = engine.impute_relation(Relation(dirty))
    assert imputed.n_missing_cells == 0
    np.testing.assert_array_equal(
        imputed.raw, engine.impute_batch(dirty)
    )
    store = engine.store_relation()
    np.testing.assert_array_equal(store.raw, stream_values[:100])


def test_engine_errors(stream_values):
    values = stream_values
    with pytest.raises(ConfigurationError):
        OnlineImputationEngine(IIMImputer(k=3), k=5)  # both instance and kwargs
    with pytest.raises(ConfigurationError):
        OnlineImputationEngine(refresh_policy="sometimes", k=3)
    with pytest.raises(ConfigurationError):
        OnlineImputationEngine(model_cache_size=-1, k=3)

    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
    with pytest.raises(NotFittedError):
        engine.impute_batch(values[:2])
    incomplete = values[:5].copy()
    incomplete[0, 0] = np.nan
    with pytest.raises(DataError):
        engine.append(incomplete)
    engine.append(values[:50])
    with pytest.raises(DataError):
        engine.append(values[:5, :-1])  # width mismatch
    with pytest.raises(DataError):
        engine.impute_batch(values[:5, :-1])


def test_complete_queries_pass_through(stream_values):
    engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
    engine.append(stream_values[:50])
    block = stream_values[60:65]
    np.testing.assert_array_equal(engine.impute_batch(block), block)


def test_online_config_knobs_roundtrip():
    previous = set_online_model_cache_size(3)
    try:
        engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
        assert engine.model_cache_size == 3
        assert set_online_model_cache_size("none") == 3
        assert OnlineImputationEngine(
            k=3, learning="fixed", learning_neighbors=3
        ).model_cache_size is None
    finally:
        set_online_model_cache_size(previous)
    previous = set_online_refresh_policy("eager")
    try:
        engine = OnlineImputationEngine(k=3, learning="fixed", learning_neighbors=3)
        assert engine.refresh_policy == "eager"
    finally:
        set_online_refresh_policy(previous)
    with pytest.raises(ConfigurationError):
        set_online_refresh_policy("never")
