"""Property-based lifecycle coverage: seeded random op traces as invariants.

Each test drives the online engine through a *generated* trace of
append / delete / update / impute / snapshot / restore operations — empty
batches, duplicate delete indices, exact-duplicate rows (distance ties) and
all-rows-deleted states included — while holding a plain-array reference
store.  After every imputation the engine must match a cold
:class:`~repro.core.iim.IIMImputer` refit over the surviving tuples at
``rtol = 1e-9``; after every operation the mutation journal must respect
its ring bound and, once every state has synced, the store must have
recycled every retired slot.  Traces are seeded, so a failure reproduces
from its parametrisation alone.

Engines run with deliberately tiny shard and journal capacities so shard
boundaries are crossed and the ring spills constantly — the regimes the
sharded store refactor has to get right.
"""

import os

import numpy as np
import pytest

from repro import IIMImputer, load_dataset
from repro.data.relation import Relation
from repro.exceptions import NotFittedError
from repro.online import OnlineImputationEngine

#: Long-trace smoke knob for CI (see .github/workflows/ci.yml).
N_OPS = int(os.environ.get("REPRO_PROPERTY_OPS", "48"))

STRESS_KNOBS = dict(shard_capacity=7, journal_capacity=6, model_cache_size=None)

PARAM_GRID = [
    dict(k=4, learning="fixed", learning_neighbors=5),
    dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=12),
    dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=12,
         combination="uniform"),
    dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=12,
         combination="distance"),
]
PARAM_IDS = ["fixed", "adaptive-voting", "adaptive-uniform", "adaptive-distance"]


@pytest.fixture(scope="module")
def pool():
    return load_dataset("asf", size=400).raw


def _cold_impute(store_rows, queries, **params):
    imputer = IIMImputer(**params).fit(Relation(store_rows))
    return imputer.impute(Relation(queries)).raw


def _draw_row(pool, ref, rng):
    """A fresh pool row — or, sometimes, an exact duplicate of a stored one
    (duplicates manufacture zero-distance ties, the tie-break stressor)."""
    if ref.shape[0] and rng.random() < 0.15:
        return ref[rng.integers(ref.shape[0])].copy()
    return pool[rng.integers(pool.shape[0])].copy()


def _check_invariants(engine, ref):
    assert engine.n_tuples == ref.shape[0]
    memory = engine.memory_stats()
    assert memory["journal_entries"] <= memory["journal_capacity"], (
        "mutation journal exceeded its ring bound"
    )


def _check_impute(engine, ref, rng, params, n_queries=4):
    queries = ref[rng.choice(ref.shape[0], min(n_queries, ref.shape[0]),
                             replace=False)].copy()
    for row in range(queries.shape[0]):
        blank = rng.choice(queries.shape[1], size=rng.integers(1, 3),
                           replace=False)
        queries[row, blank] = np.nan
    got = engine.impute_batch(queries)
    want = _cold_impute(ref, queries.copy(), **params)
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)


def _run_trace(engine, pool, rng, params, n_ops, tmp_path=None):
    """Drive one random lifecycle trace; returns the final reference store."""
    ref = pool[:30].copy()
    engine.append(ref)
    floor_seen = 0
    n_snapshots = 0
    for step in range(n_ops):
        op = rng.choice(
            ["append", "delete", "update", "impute", "snapshot"],
            p=[0.3, 0.2, 0.2, 0.25, 0.05],
        )
        if op == "append":
            batch = rng.integers(0, 4)  # 0 = the empty-batch no-op
            rows = np.array([_draw_row(pool, ref, rng) for _ in range(batch)])
            rows = rows.reshape(batch, pool.shape[1])
            engine.append(rows)
            ref = np.vstack([ref, rows]) if batch else ref
        elif op == "delete":
            if ref.shape[0] == 0:
                continue
            if rng.random() < 0.04:
                # The all-rows-deleted state: the engine must empty cleanly
                # and accept a fresh stream afterwards.
                engine.delete(np.arange(ref.shape[0]))
                ref = ref[:0]
                with pytest.raises(NotFittedError):
                    engine.impute_batch(np.full((1, pool.shape[1]), np.nan))
                rows = pool[rng.choice(pool.shape[0], 25, replace=False)].copy()
                engine.append(rows)
                ref = rows
            else:
                # Duplicate indices are tolerated by contract.
                raw = rng.integers(0, ref.shape[0], size=rng.integers(1, 4))
                targets = np.concatenate([raw, raw[:1]])
                engine.delete(targets)
                ref = np.delete(ref, np.unique(raw), axis=0)
        elif op == "update":
            if ref.shape[0] == 0:
                continue
            index = int(rng.integers(ref.shape[0]))
            row = _draw_row(pool, ref, rng)
            engine.update(index, row)
            ref[index] = row
        elif op == "impute":
            if ref.shape[0] < 8:
                continue
            _check_impute(engine, ref, rng, params)
        else:
            if tmp_path is None or ref.shape[0] < 8:
                continue
            path = tmp_path / f"snap{n_snapshots}"
            n_snapshots += 1
            engine.snapshot(path)
            # Snapshots fold every pending mutation: the journal must be
            # empty and every retired slot recycled.
            memory = engine.memory_stats()
            assert memory["journal_entries"] == 0
            assert memory["pending_slots"] == 0
            restored = OnlineImputationEngine.load(path)
            np.testing.assert_array_equal(
                restored.store_relation().raw, engine.store_relation().raw
            )
            engine = restored  # continue the trace on the restored engine
        _check_invariants(engine, ref)
        assert engine._journal.floor >= floor_seen, "journal floor regressed"
        floor_seen = engine._journal.floor
    if ref.shape[0] >= 8:
        _check_impute(engine, ref, rng, params)
    return engine, ref


@pytest.mark.parametrize("params", PARAM_GRID, ids=PARAM_IDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_random_lifecycle_trace_matches_cold_refit(pool, params, seed, tmp_path):
    rng = np.random.default_rng(seed)
    engine = OnlineImputationEngine(**STRESS_KNOBS, **params)
    _run_trace(engine, pool, rng, params, N_OPS, tmp_path=tmp_path)


@pytest.mark.parametrize("mode", ["rebuild", "decrement"])
def test_random_trace_under_both_delete_cost_modes(pool, mode, tmp_path):
    params = dict(k=4, learning="adaptive", stepping=3, max_learning_neighbors=8)
    rng = np.random.default_rng(11)
    engine = OnlineImputationEngine(
        delete_cost_mode=mode, **STRESS_KNOBS, **params
    )
    _run_trace(engine, pool, rng, params, N_OPS, tmp_path=tmp_path)


def test_long_lazy_burst_respects_ring_bound(pool):
    """A burst far longer than the ring keeps journal memory bounded and the
    laggard state falls back to one full rebuild (still exact)."""
    params = dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=12)
    engine = OnlineImputationEngine(
        shard_capacity=16, journal_capacity=8, model_cache_size=None, **params
    )
    ref = pool[:40].copy()
    engine.append(ref)
    _check_impute(engine, ref, np.random.default_rng(2), params)  # make a state resident

    rng = np.random.default_rng(3)
    for _ in range(60):  # 60 mutations against a ring of 8
        row = _draw_row(pool, ref, rng)
        engine.append(row.reshape(1, -1))
        ref = np.vstack([ref, row])
        index = int(rng.integers(ref.shape[0]))
        revised = _draw_row(pool, ref, rng)
        engine.update(index, revised)
        ref[index] = revised
        memory = engine.memory_stats()
        assert memory["journal_entries"] <= 8
    assert engine.stats["journal_spills"] > 0
    full_before = engine.stats["full_refreshes"]
    _check_impute(engine, ref, rng, params)
    assert engine.stats["full_refreshes"] > full_before, (
        "a state older than the spill floor must full-rebuild"
    )
    # Once the laggard caught up, only slots owned by still-ringed entries
    # may remain pending (each entry owns at most one retired slot here).
    memory = engine.memory_stats()
    assert memory["pending_slots"] <= 8
    assert memory["recycled_slots"] > 0 or engine.store.n_free > 0


def test_interleaved_restore_keeps_streaming_identically(pool, tmp_path):
    """Restore mid-trace, then drive both engines through the same tail."""
    params = dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=10)
    engine = OnlineImputationEngine(shard_capacity=9, **params)
    ref = pool[:40].copy()
    engine.append(ref)
    queries = pool[300:306].copy()
    queries[:, 2] = np.nan
    engine.impute_batch(queries)
    engine.update(3, pool[310])
    engine.delete([1, 17, 17, 30])  # duplicates tolerated
    engine.snapshot(tmp_path / "mid")
    restored = OnlineImputationEngine.load(tmp_path / "mid")

    rng = np.random.default_rng(5)
    for _ in range(6):
        rows = pool[rng.choice(pool.shape[0], 3, replace=False)].copy()
        engine.append(rows)
        restored.append(rows)
        target = int(rng.integers(engine.n_tuples))
        revised = pool[rng.integers(pool.shape[0])]
        engine.update(target, revised)
        restored.update(target, revised)
        np.testing.assert_array_equal(
            engine.impute_batch(queries), restored.impute_batch(queries)
        )
