"""Delete-path cost decrement: subtract retired pairs, guard the fallback.

The ``"decrement"`` delete cost mode subtracts the retired validation
pairs' residuals from cost rows that only *lost* validators, instead of
re-accumulating the whole row.  The residuals it subtracts are recomputed
with the same einsum the scatter kernel used to add them — identical bits —
so the only rounding the mode introduces is the subtraction itself, and a
cancellation guard rebuilds any row where that rounding could matter:

* both modes must stay within the engine's ``rtol = 1e-9`` equivalence to
  a cold refit across a churn trace (and within float-rounding distance of
  each other, cost matrix included);
* a row whose every validator was retired must come out **bit-equal** to
  the dirty-row rebuild (exactly ``0.0``) — the accumulation-order caveat
  the ROADMAP flagged vanishes when nothing remains to accumulate;
* the cancellation guard must actually route unsafe rows to the rebuild.
"""

import numpy as np
import pytest

import repro.online.engine as engine_module
from repro import IIMImputer, load_dataset
from repro.data.relation import Relation
from repro.online import OnlineImputationEngine

PARAMS = dict(k=5, learning="adaptive", stepping=2, max_learning_neighbors=6)


@pytest.fixture(scope="module")
def pool():
    return load_dataset("asf", size=420).raw


def _cold_impute(store_rows, queries, **params):
    imputer = IIMImputer(**params).fit(Relation(store_rows))
    return imputer.impute(Relation(queries)).raw


def _paired_engines(pool, n_initial=380, **extra):
    engines = {}
    for mode in ("rebuild", "decrement"):
        engine = OnlineImputationEngine(
            delete_cost_mode=mode, model_cache_size=None, **extra, **PARAMS
        )
        engine.append(pool[:n_initial])
        engines[mode] = engine
    return engines


def test_decrement_mode_engages_and_matches_cold(pool):
    engines = _paired_engines(pool)
    ref = pool[:380].copy()
    rng = np.random.default_rng(3)
    warm = ref[:6].copy()
    warm[:, 0] = np.nan
    for engine in engines.values():
        engine.impute_batch(warm)  # make the state resident

    for _ in range(6):
        targets = np.unique(rng.integers(0, ref.shape[0], size=5))
        for engine in engines.values():
            engine.delete(targets)
        ref = np.delete(ref, targets, axis=0)
        queries = ref[rng.choice(ref.shape[0], 6, replace=False)].copy()
        queries[:, 0] = np.nan
        want = _cold_impute(ref, queries.copy(), **PARAMS)
        results = {}
        for mode, engine in engines.items():
            results[mode] = engine.impute_batch(queries.copy())
            np.testing.assert_allclose(
                results[mode], want, rtol=1e-9, atol=1e-12,
                err_msg=f"{mode} diverged from the cold refit",
            )
        np.testing.assert_allclose(
            results["decrement"], results["rebuild"], rtol=1e-9, atol=1e-12
        )
        # The cost matrices agree to float-rounding distance...
        state_dec = engines["decrement"]._states[0]
        state_reb = engines["rebuild"]._states[0]
        np.testing.assert_allclose(
            state_dec.costs, state_reb.costs, rtol=1e-9, atol=1e-12
        )
        # ...and rows with no surviving validators are bit-equal (both
        # exactly the zeros the rebuild produces).
        zero_rows = np.flatnonzero(state_dec.counts == 0)
        assert np.array_equal(
            state_dec.costs[zero_rows], np.zeros_like(state_dec.costs[zero_rows])
        )
        assert np.array_equal(
            state_dec.costs[zero_rows], state_reb.costs[zero_rows]
        )

    assert engines["decrement"].stats["delete_cost_decrements"] > 0, (
        "the decrement path never engaged on this trace"
    )
    assert engines["rebuild"].stats["delete_cost_decrements"] == 0


def test_cancellation_guard_falls_back_to_rebuild(pool, monkeypatch):
    """With the guard threshold forced to 1.0 every decremented row counts
    as unsafe, so all of them must take the exact rebuild — and results
    must be unchanged."""
    monkeypatch.setattr(engine_module, "DECREMENT_CANCELLATION_GUARD", 1.0)
    engine = OnlineImputationEngine(
        delete_cost_mode="decrement", model_cache_size=None, **PARAMS
    )
    engine.append(pool[:380])
    ref = pool[:380].copy()
    rng = np.random.default_rng(5)
    warm = ref[:6].copy()
    warm[:, 0] = np.nan
    engine.impute_batch(warm)
    for _ in range(4):
        targets = np.unique(rng.integers(0, ref.shape[0], size=5))
        engine.delete(targets)
        ref = np.delete(ref, targets, axis=0)
        queries = ref[rng.choice(ref.shape[0], 6, replace=False)].copy()
        queries[:, 0] = np.nan
        np.testing.assert_allclose(
            engine.impute_batch(queries.copy()),
            _cold_impute(ref, queries.copy(), **PARAMS),
            rtol=1e-9, atol=1e-12,
        )
    assert engine.stats["delete_cost_guard_rebuilds"] > 0, (
        "the forced guard never rerouted a row to the rebuild"
    )


def test_decrement_is_journal_and_hybrid_safe(pool):
    """Decrement composes with lazy replay bursts and the hybrid fallback:
    a multi-op burst (appends + deletes + updates) replayed in one sync
    still matches the cold refit."""
    engine = OnlineImputationEngine(
        delete_cost_mode="decrement", model_cache_size=None,
        journal_capacity=32, **PARAMS
    )
    ref = pool[:300].copy()
    engine.append(ref)
    warm = ref[:4].copy()
    warm[:, 1] = np.nan
    engine.impute_batch(warm)
    rng = np.random.default_rng(8)

    # One long lazy burst: the replay folds every op into a single refresh.
    rows = pool[300:330]
    engine.append(rows)
    ref = np.vstack([ref, rows])
    for _ in range(3):
        index = int(rng.integers(ref.shape[0]))
        revised = pool[rng.integers(pool.shape[0])]
        engine.update(index, revised)
        ref[index] = revised
        targets = np.unique(rng.integers(0, ref.shape[0], size=4))
        engine.delete(targets)
        ref = np.delete(ref, targets, axis=0)

    queries = ref[rng.choice(ref.shape[0], 8, replace=False)].copy()
    queries[:, 1] = np.nan
    np.testing.assert_allclose(
        engine.impute_batch(queries.copy()),
        _cold_impute(ref, queries.copy(), **PARAMS),
        rtol=1e-9, atol=1e-12,
    )
