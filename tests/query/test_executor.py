"""Executor: impute-on-demand equivalence, provenance, quotas, data verbs.

The acceptance bar of the query layer: evaluating a SELECT that touches
missing cells must be **bit-identical** to imputing the touched rows up
front (one ``impute_batch`` over exactly those rows) and then running the
same relational pipeline — across fixed and adaptive learning and every
combiner — because both paths drive the same vectorized kernels over the
same store.
"""

import numpy as np
import pytest

from repro import load_dataset
from repro.exceptions import (
    QuotaExceededError,
    UnsupportedOperationError,
)
from repro.online import OnlineImputationEngine
from repro.query import QueryResult, execute_query, execute_script

PARAM_MATRIX = [
    dict(k=4, learning="fixed", learning_neighbors=6),
    dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=20),
    dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=20,
         combination="uniform"),
    dict(k=4, learning="adaptive", stepping=5, max_learning_neighbors=20,
         combination="distance"),
]
PARAM_IDS = ["fixed-voting", "adaptive-voting", "adaptive-uniform",
             "adaptive-distance"]


@pytest.fixture(scope="module")
def values():
    return load_dataset("sn", size=160).raw


def _build_engine(values, params, n_store=120, n_pending=12, seed=7):
    """An engine with a complete store plus incomplete pending tuples."""
    rng = np.random.default_rng(seed)
    engine = OnlineImputationEngine(**params)
    engine.append(values[:n_store])
    pending = values[n_store : n_store + n_pending].copy()
    holes = rng.integers(0, pending.shape[1], size=n_pending)
    pending[np.arange(n_pending), holes] = np.nan
    engine.append(pending, allow_incomplete=True)
    assert engine.n_pending == n_pending
    return engine


def _pre_imputed_matrix(engine, referenced):
    """The oracle: impute touched rows up front, then hand back the block."""
    matrix = np.array(
        engine.store_relation(include_pending=True).raw, dtype=float
    )
    mask = np.isnan(matrix)
    touched = np.flatnonzero(mask[:, referenced].any(axis=1))
    if touched.size:
        matrix[touched] = engine.impute_batch(matrix[touched])
    return matrix, touched


@pytest.mark.parametrize("params", PARAM_MATRIX, ids=PARAM_IDS)
def test_on_demand_select_is_bit_identical_to_pre_imputing(values, params):
    engine = _build_engine(values, params)
    schema = engine.schema
    statement = (
        f"SELECT {schema.attributes[0]}, {schema.attributes[1]} "
        f"WHERE {schema.attributes[1]} > 0 "
        f"ORDER BY {schema.attributes[0]} DESC LIMIT 50;"
    )
    result = execute_query(engine, statement)

    referenced = np.array([0, 1], dtype=int)
    matrix, touched = _pre_imputed_matrix(engine, referenced)
    keep = np.flatnonzero(matrix[:, 1] > 0)
    order = keep[np.argsort(-matrix[keep, 0], kind="stable")][:50]
    expected = matrix[np.ix_(order, referenced)]

    assert result.rows_imputed == touched.size > 0
    np.testing.assert_array_equal(result.rows, expected)
    assert result.row_indices == [int(i) for i in order]


@pytest.mark.parametrize("params", PARAM_MATRIX, ids=PARAM_IDS)
def test_aggregates_match_pre_imputed_numpy(values, params):
    engine = _build_engine(values, params)
    a2 = engine.schema.attributes[1]
    result = execute_query(
        engine, f"SELECT count(*), avg({a2}), min({a2}), max({a2});"
    )
    matrix, _ = _pre_imputed_matrix(engine, np.array([1], dtype=int))
    column = matrix[:, 1]
    assert result.aggregate and result.rows.shape == (1, 4)
    np.testing.assert_array_equal(
        result.rows[0],
        [column.size, column.mean(), column.min(), column.max()],
    )


def test_unreferenced_missing_cells_are_never_imputed(values):
    engine = _build_engine(values, PARAM_MATRIX[0])
    width = engine.n_attributes
    # every pending hole was punched somewhere; query only attribute A1 and
    # count how many pending rows are missing precisely A1
    matrix = np.array(
        engine.store_relation(include_pending=True).raw, dtype=float
    )
    missing_a1 = int(np.isnan(matrix[:, 0]).sum())
    assert 0 < missing_a1 < engine.n_pending  # holes spread over columns
    a1 = engine.schema.attributes[0]
    result = execute_query(engine, f"SELECT {a1};")
    assert result.rows_imputed == missing_a1
    assert result.rows.shape == (matrix.shape[0], 1)
    assert not np.isnan(result.rows).any()
    assert width > 1  # the other columns' holes never surfaced


def test_select_never_mutates_the_session(values):
    engine = _build_engine(values, PARAM_MATRIX[0])
    before = np.array(
        engine.store_relation(include_pending=True).raw, dtype=float
    )
    n_pending = engine.n_pending
    execute_query(engine, "SELECT * ORDER BY A1 LIMIT 5;")
    after = np.array(
        engine.store_relation(include_pending=True).raw, dtype=float
    )
    assert engine.n_pending == n_pending
    np.testing.assert_array_equal(before, after)  # NaNs still NaN (== on mask)
    assert np.isnan(after).sum() == np.isnan(before).sum()


def test_provenance_covers_exactly_the_touched_cells(values):
    engine = _build_engine(values, PARAM_MATRIX[1])
    matrix = np.array(
        engine.store_relation(include_pending=True).raw, dtype=float
    )
    mask = np.isnan(matrix)
    touched = np.flatnonzero(mask[:, 0])
    expected_cells = {
        (int(r), int(c)) for r in touched for c in np.flatnonzero(mask[r])
    }
    a1 = engine.schema.attributes[0]
    result = execute_query(engine, f"SELECT {a1};", provenance=True)
    got_cells = {
        (cell["row"], cell["attribute_index"]) for cell in result.provenance
    }
    assert got_cells == expected_cells
    for cell in result.provenance:
        assert cell["method"] == "IIM"
        assert cell["attribute"] == engine.schema.attributes[
            cell["attribute_index"]
        ]
        assert len(cell["neighbors"]) == cell["k"] == 4
        assert len(cell["learning_neighbors"]) == cell["k"]
        assert np.isclose(sum(cell["weights"]), 1.0)
        assert 0.0 <= cell["confidence"] <= 1.0
        assert "trace_id" in cell
        row = cell["row"]
        value = result.rows[result.row_indices.index(row), 0] \
            if cell["attribute_index"] == 0 else cell["value"]
        assert np.isfinite(value)


def test_provenance_off_returns_no_cells(values):
    engine = _build_engine(values, PARAM_MATRIX[0])
    result = execute_query(engine, "SELECT A1;", provenance=False)
    assert result.rows_imputed > 0 and result.provenance == []


def test_impute_quota_rejects_before_any_kernel(values):
    engine = _build_engine(values, PARAM_MATRIX[0], n_pending=8)
    batches = engine.stats["impute_batches"]
    with pytest.raises(QuotaExceededError, match="per-request quota"):
        execute_query(engine, "SELECT *;", max_impute_rows=3)
    assert engine.stats["impute_batches"] == batches


def test_explain_reports_the_plan_without_row_payload(values):
    engine = _build_engine(values, PARAM_MATRIX[0])
    result = execute_query(
        engine, "EXPLAIN SELECT A1 WHERE A2 > 0 ORDER BY A1 LIMIT 3;"
    )
    assert result.kind == "explain"
    assert result.plan["kind"] == "scan"
    assert result.plan["referenced_attributes"] == ["A1", "A2"]
    assert result.plan["rows_scanned"] == engine.n_tuples + engine.n_pending
    assert result.plan["rows_touched"] == result.rows_imputed
    assert result.plan["cells_imputed"] >= result.rows_imputed


def test_data_statements_drive_the_lifecycle(values):
    engine = OnlineImputationEngine(**PARAM_MATRIX[0])
    engine.append(values[:60])
    width = values.shape[1]
    cells = ", ".join(str(float(v)) for v in values[60, :width])
    incomplete = ", ".join(["?"] + [str(float(v)) for v in values[61, 1:width]])
    results = execute_script(
        engine,
        f"APPEND VALUES ({cells}), ({incomplete});\n"
        "UPDATE 0 SET A1 = 0.25;\n"
        "DELETE 1, 2;\n"
        "SELECT count(*);\n"
        "IMPUTE;\n"
        "SELECT count(*);\n",
    )
    kinds = [getattr(r, "kind") for r in results]
    assert kinds == ["append", "update", "delete", "select", "impute", "select"]
    append, update, delete, before, impute, after = results
    assert append.detail == {
        "rows_appended": 2, "rows_incomplete": 1, "n_pending": 1,
    }
    assert update.detail["row"][0] == 0.25
    assert delete.detail["rows_deleted"] == 2
    # pending rows are visible to queries before promotion...
    assert before.rows[0, 0] == 60.0  # 60 + 1 appended - 2 deleted + 1 pending
    assert impute.detail == {"rows_promoted": 1, "n_pending": 0}
    # ...and promotion moves them into the store without changing the count
    assert after.rows[0, 0] == 60.0
    assert engine.n_pending == 0 and engine.n_tuples == 60


def test_update_addressing_pending_rows_is_a_typed_error(values):
    engine = _build_engine(values, PARAM_MATRIX[0], n_store=40, n_pending=2)
    from repro.exceptions import QueryError

    with pytest.raises(QueryError, match="pending tuples cannot be updated"):
        execute_query(engine, "UPDATE 40 SET A1 = 1.0;")


def test_sessions_without_an_engine_are_rejected(values):
    with pytest.raises(UnsupportedOperationError, match="imputation engine"):
        execute_query(object(), "SELECT A1;")


def test_query_result_types():
    assert QueryResult.__dataclass_fields__.keys() >= {
        "kind", "columns", "rows", "row_indices", "aggregate",
        "rows_scanned", "rows_imputed", "provenance", "plan",
    }


def test_repeated_statement_text_reuses_the_parsed_ast(values):
    """The prepared-statement cache: same text, same AST, capped size."""
    from repro.query import executor as executor_module

    engine = _build_engine(values, PARAM_MATRIX[0])
    text = "SELECT A1 WHERE A1 > 0 LIMIT 3;"
    with executor_module._PARSE_CACHE_LOCK:
        executor_module._PARSE_CACHE.clear()
    first = execute_query(engine, text, provenance=False)
    cached = executor_module._PARSE_CACHE[text]
    second = execute_query(engine, text, provenance=False)
    assert executor_module._PARSE_CACHE[text] is cached
    np.testing.assert_array_equal(first.rows, second.rows)
    # the cache is bounded: distinct statements evict the oldest entry
    for limit in range(executor_module._PARSE_CACHE_LIMIT + 5):
        execute_query(engine, f"SELECT A1 LIMIT {limit};", provenance=False)
    assert (
        len(executor_module._PARSE_CACHE)
        <= executor_module._PARSE_CACHE_LIMIT
    )
    assert text not in executor_module._PARSE_CACHE  # oldest got evicted


def test_literal_only_predicates_evaluate_rowwise(values):
    """A literal-vs-literal WHERE keeps or drops every row uniformly."""
    engine = _build_engine(values, PARAM_MATRIX[0])
    total = execute_query(engine, "SELECT count(*);", provenance=False)
    kept = execute_query(
        engine, "SELECT count(*) WHERE 1 < 2;", provenance=False
    )
    dropped = execute_query(
        engine, "SELECT count(*) WHERE 2 < 1;", provenance=False
    )
    assert kept.rows[0][0] == total.rows[0][0]
    assert dropped.rows[0][0] == 0.0
