"""Property tests: random queries == a naive full-materialize reference.

One seeded engine (complete store + incomplete pending tuples over the
six-attribute ASF table), many hypothesis-generated SELECTs.  The oracle
is deliberately naive: impute **every** incomplete row up front, then
filter/sort/limit in plain Python (``sorted`` for stability, per-row
predicate evaluation) — the executor's impute-only-what-the-query-touches
fast path must be indistinguishable from it.  A second property pins the
provenance contract: the reported cells are exactly the missing cells of
the touched rows, no more, no fewer.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import load_dataset
from repro.online import OnlineImputationEngine
from repro.query import (
    Aggregate,
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    OrderKey,
    SelectStatement,
    execute_query,
    parse_statement,
)

N_STORE, N_PENDING = 90, 14


@pytest.fixture(scope="module")
def engine():
    values = load_dataset("asf", size=N_STORE + N_PENDING).raw
    rng = np.random.default_rng(11)
    built = OnlineImputationEngine(
        k=3, learning="adaptive", stepping=4, max_learning_neighbors=15
    )
    built.append(values[:N_STORE])
    pending = values[N_STORE:].copy()
    for r in range(N_PENDING):  # 1-2 holes per pending row
        cols = rng.choice(pending.shape[1], size=1 + (r % 2), replace=False)
        pending[r, cols] = np.nan
    built.append(pending, allow_incomplete=True)
    return built


@pytest.fixture(scope="module")
def oracle(engine):
    """(raw matrix with NaNs, fully-materialized matrix)."""
    raw = np.array(engine.store_relation(include_pending=True).raw, dtype=float)
    full = raw.copy()
    incomplete = np.flatnonzero(np.isnan(raw).any(axis=1))
    full[incomplete] = engine.impute_batch(raw[incomplete])
    return raw, full


NAMES = [f"A{i + 1}" for i in range(6)]
_COLUMNS = st.sampled_from(NAMES)
# thresholds inside the data's rough range so selectivity varies
_LITERALS = st.floats(min_value=-2.0, max_value=60.0, allow_nan=False)
_OPS = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


def _comparisons():
    operand = st.one_of(
        _COLUMNS.map(ColumnRef), _LITERALS.map(lambda v: Literal(float(v)))
    )
    return st.builds(Comparison, _COLUMNS.map(ColumnRef), _OPS, operand)


def _filters():
    return st.recursive(
        _comparisons(),
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda p: And(p)),
            st.tuples(inner, inner).map(lambda p: Or(p)),
            inner.map(Not),
        ),
        max_leaves=4,
    )


_PLAIN_SELECTS = st.builds(
    SelectStatement,
    columns=st.one_of(
        st.none(),
        st.lists(_COLUMNS, min_size=1, max_size=4, unique=True).map(
            lambda names: tuple(ColumnRef(n) for n in names)
        ),
    ),
    where=st.one_of(st.none(), _filters()),
    order_by=st.lists(_COLUMNS, min_size=0, max_size=2, unique=True).flatmap(
        lambda names: st.tuples(
            *[st.booleans().map(lambda d, n=n: OrderKey(n, d)) for n in names]
        )
    ),
    limit=st.one_of(st.none(), st.integers(0, N_STORE + N_PENDING + 5)),
)

_AGG_SELECTS = st.builds(
    SelectStatement,
    columns=st.lists(
        st.one_of(
            st.just(Aggregate("count", None)),
            st.builds(
                Aggregate, st.sampled_from(["avg", "min", "max"]), _COLUMNS
            ),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    where=st.one_of(st.none(), _filters()),
)


# ------------------------------------------------------------------ #
# The naive reference
# ------------------------------------------------------------------ #
_PY_OPS = {
    "=": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
}


def _value(operand, row):
    if isinstance(operand, ColumnRef):
        return row[NAMES.index(operand.name)]
    return float(operand.value)


def _holds(expr, row):
    if isinstance(expr, Comparison):
        return _PY_OPS[expr.op](_value(expr.left, row), _value(expr.right, row))
    if isinstance(expr, And):
        return all(_holds(item, row) for item in expr.items)
    if isinstance(expr, Or):
        return any(_holds(item, row) for item in expr.items)
    return not _holds(expr.item, row)


def _naive(statement, full):
    rows = [i for i in range(full.shape[0])
            if statement.where is None or _holds(statement.where, full[i])]
    if statement.columns and isinstance(statement.columns[0], Aggregate):
        out = []
        for agg in statement.columns:
            if agg.func == "count":
                out.append(float(len(rows)))
                continue
            column = full[rows, NAMES.index(agg.attribute)]
            if column.size == 0:
                out.append(float("nan"))
            elif agg.func == "avg":
                out.append(float(column.mean()))
            elif agg.func == "min":
                out.append(float(column.min()))
            else:
                out.append(float(column.max()))
        return np.array([out]), []
    for key in reversed(statement.order_by):
        index = NAMES.index(key.attribute)
        rows = sorted(rows, key=lambda i: full[i, index],
                      reverse=key.descending)
    if statement.limit is not None:
        rows = rows[: statement.limit]
    projection = (
        list(range(len(NAMES)))
        if statement.columns is None
        else [NAMES.index(c.name) for c in statement.columns]
    )
    return full[np.ix_(rows, projection)] if rows else np.empty(
        (0, len(projection))
    ), rows


def _referenced(statement):
    names = set()

    def walk(expr):
        if isinstance(expr, Comparison):
            for operand in (expr.left, expr.right):
                if isinstance(operand, ColumnRef):
                    names.add(operand.name)
        elif isinstance(expr, (And, Or)):
            for item in expr.items:
                walk(item)
        elif isinstance(expr, Not):
            walk(expr.item)

    if statement.columns is None:
        names.update(NAMES)
    else:
        for column in statement.columns:
            if isinstance(column, ColumnRef):
                names.add(column.name)
            elif column.attribute is not None:
                names.add(column.attribute)
    if statement.where is not None:
        walk(statement.where)
    names.update(key.attribute for key in statement.order_by)
    return {NAMES.index(name) for name in names}


@settings(max_examples=60, deadline=None)
@given(statement=st.one_of(_PLAIN_SELECTS, _AGG_SELECTS))
def test_executor_matches_naive_full_materialization(engine, oracle, statement):
    raw, full = oracle
    result = execute_query(engine, statement)
    expected_rows, expected_indices = _naive(statement, full)
    np.testing.assert_array_equal(result.rows, expected_rows)
    if not result.aggregate:
        assert result.row_indices == expected_indices
    # the fast path scans everything but imputes only what it must
    assert result.rows_scanned == raw.shape[0]
    referenced = sorted(_referenced(statement))
    touched = (
        np.flatnonzero(np.isnan(raw)[:, referenced].any(axis=1))
        if referenced
        else np.empty(0, dtype=int)
    )
    assert result.rows_imputed == touched.size


@settings(max_examples=25, deadline=None)
@given(statement=_PLAIN_SELECTS)
def test_provenance_is_exactly_the_missing_cells_of_touched_rows(
    engine, oracle, statement
):
    raw, _ = oracle
    mask = np.isnan(raw)
    result = execute_query(engine, statement, provenance=True)
    referenced = sorted(_referenced(statement))
    touched = (
        np.flatnonzero(mask[:, referenced].any(axis=1))
        if referenced
        else np.empty(0, dtype=int)
    )
    expected = {
        (int(r), int(c)) for r in touched for c in np.flatnonzero(mask[r])
    }
    got = {(cell["row"], cell["attribute_index"]) for cell in result.provenance}
    assert got == expected
    for cell in result.provenance:
        assert math.isfinite(cell["value"])
        assert cell["method"] == "IIM"


@settings(max_examples=25, deadline=None)
@given(statement=st.one_of(_PLAIN_SELECTS, _AGG_SELECTS))
def test_rendered_statements_parse_back_to_themselves(statement):
    assert parse_statement(str(statement)) == statement
