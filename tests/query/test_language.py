"""Query language front end: lexer, parser and planner unit tests."""

import math

import pytest

from repro.data.relation import Schema
from repro.exceptions import QueryError, QuerySyntaxError
from repro.query import (
    MAX_QUERY_LENGTH,
    Aggregate,
    And,
    AppendStatement,
    ColumnRef,
    Comparison,
    DeleteStatement,
    ImputeStatement,
    Literal,
    Not,
    Or,
    SelectStatement,
    UpdateStatement,
    parse_script,
    parse_statement,
    plan_query,
    tokenize,
)


class TestLexer:
    def test_keywords_are_case_insensitive_identifiers_are_not(self):
        tokens = tokenize("select A1 WHERE a1 > 2")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            ("KEYWORD", "SELECT"), ("IDENT", "A1"), ("KEYWORD", "WHERE"),
            ("IDENT", "a1"), ("SYMBOL", ">"), ("NUMBER", "2"),
        ]
        assert tokens[-1].kind == "EOF"

    @pytest.mark.parametrize("text", ["3", "3.5", ".5", "3.", "1e3", "2.5E-7"])
    def test_number_forms_lex_as_one_token(self, text):
        tokens = tokenize(text)
        assert [t.kind for t in tokens] == ["NUMBER", "EOF"]
        float(tokens[0].text)  # every NUMBER token is float()-able

    def test_multi_character_operators_never_split(self):
        tokens = tokenize("A1<=2 A2>=3 A3<>4 A4!=5")
        symbols = [t.text for t in tokens if t.kind == "SYMBOL"]
        assert symbols == ["<=", ">=", "<>", "!="]

    def test_comments_and_whitespace_vanish(self):
        tokens = tokenize("SELECT A1 -- trailing words ; SELECT\n LIMIT 2")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["SELECT", "A1", "LIMIT", "2"]

    def test_offsets_point_into_the_source(self):
        text = "SELECT  A1"
        tokens = tokenize(text)
        assert text[tokens[1].position :].startswith("A1")

    def test_oversized_query_is_rejected_before_scanning(self):
        with pytest.raises(QuerySyntaxError, match="character limit"):
            tokenize("x" * (MAX_QUERY_LENGTH + 1))

    @pytest.mark.parametrize("bad", ["SELECT 'A1'", 'SELECT "A1"',
                                     "SELECT A1 @ 2", "SELECT \x00"])
    def test_foreign_characters_are_typed_errors(self, bad):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            tokenize(bad)

    def test_non_string_input_is_a_typed_error(self):
        with pytest.raises(QuerySyntaxError, match="must be a string"):
            tokenize(42)


class TestParser:
    def test_full_select_shape(self):
        statement = parse_statement(
            "SELECT A1, A2 WHERE A1 > 2 AND A2 <= -1.5 "
            "ORDER BY A1 DESC, A2 LIMIT 7;"
        )
        assert statement == SelectStatement(
            columns=(ColumnRef("A1"), ColumnRef("A2")),
            where=And((
                Comparison(ColumnRef("A1"), ">", Literal(2.0)),
                Comparison(ColumnRef("A2"), "<=", Literal(-1.5)),
            )),
            order_by=statement.order_by,
            limit=7,
        )
        assert [(k.attribute, k.descending) for k in statement.order_by] == [
            ("A1", True), ("A2", False),
        ]

    def test_star_and_aggregates(self):
        assert parse_statement("SELECT *").columns is None
        statement = parse_statement("SELECT count(*), avg(A2), min(A1), max(A1)")
        assert statement.columns == (
            Aggregate("count", None), Aggregate("avg", "A2"),
            Aggregate("min", "A1"), Aggregate("max", "A1"),
        )

    def test_only_count_takes_star(self):
        with pytest.raises(QuerySyntaxError, match="only COUNT"):
            parse_statement("SELECT avg(*)")

    def test_boolean_precedence_not_over_and_over_or(self):
        statement = parse_statement(
            "SELECT A1 WHERE NOT A1 = 1 AND A2 > 2 OR A3 < 3"
        )
        where = statement.where
        assert isinstance(where, Or)
        assert isinstance(where.items[0], And)
        assert isinstance(where.items[0].items[0], Not)
        grouped = parse_statement(
            "SELECT A1 WHERE A1 = 1 AND (A2 > 2 OR A3 < 3)"
        ).where
        assert isinstance(grouped, And) and isinstance(grouped.items[1], Or)

    def test_signed_and_scientific_literals_fold(self):
        where = parse_statement("SELECT A1 WHERE A1 > -2.5e-1").where
        assert where.right == Literal(-0.25)
        assert parse_statement("SELECT A1 WHERE A1 < +3").where.right == Literal(3.0)

    def test_explain_wraps_a_select(self):
        assert parse_statement("EXPLAIN SELECT A1").explain is True
        with pytest.raises(QuerySyntaxError, match="SELECT after EXPLAIN"):
            parse_statement("EXPLAIN APPEND (1.0)")

    def test_append_rows_with_missing_markers(self):
        statement = parse_statement("APPEND VALUES (1, ?, 3), (null, 2, NAN);")
        assert isinstance(statement, AppendStatement)
        assert statement.rows[0][0] == 1.0
        assert math.isnan(statement.rows[0][1])
        assert math.isnan(statement.rows[1][0])
        assert math.isnan(statement.rows[1][2])
        # VALUES is optional
        assert parse_statement("APPEND (1, 2)").rows == ((1.0, 2.0),)

    def test_append_ragged_rows_are_rejected(self):
        with pytest.raises(QuerySyntaxError, match="equal width"):
            parse_statement("APPEND (1, 2), (3)")

    def test_update_delete_impute(self):
        update = parse_statement("UPDATE 3 SET A1 = 1.5, A2 = -2")
        assert update == UpdateStatement(3, (("A1", 1.5), ("A2", -2.0)))
        assert parse_statement("DELETE 0, 2, 5") == DeleteStatement((0, 2, 5))
        assert parse_statement("IMPUTE;") == ImputeStatement()

    def test_missing_markers_outside_append_are_syntax_errors(self):
        for bad, match in [
            ("SELECT A1 WHERE A1 > ?", "not comparable"),
            ("SELECT A1 WHERE A1 = NaN", "not comparable"),
            ("UPDATE 0 SET A1 = ?", "complete numbers"),
            ("UPDATE 0 SET A1 = null", "complete numbers"),
        ]:
            with pytest.raises(QuerySyntaxError, match=match):
                parse_statement(bad)

    def test_script_tolerates_comments_and_stray_semicolons(self):
        statements = parse_script(
            ";; -- a header comment\nSELECT A1;;\n-- between\nIMPUTE;\n"
        )
        assert [type(s).__name__ for s in statements] == [
            "SelectStatement", "ImputeStatement",
        ]

    def test_parse_statement_wants_exactly_one(self):
        with pytest.raises(QuerySyntaxError, match="empty query"):
            parse_statement("  -- nothing\n")
        with pytest.raises(QuerySyntaxError, match="one at a time"):
            parse_statement("SELECT A1; SELECT A2;")

    def test_unknown_leading_word_lists_the_statements(self):
        with pytest.raises(QuerySyntaxError, match="must start with"):
            parse_statement("DROP TABLE x")

    def test_errors_carry_offsets(self):
        with pytest.raises(QuerySyntaxError, match="at offset"):
            parse_statement("SELECT A1 WHERE A1 >")

    def test_negative_limit_is_rejected(self):
        # the sign lexes as a symbol, so the count itself is reported missing
        with pytest.raises(QuerySyntaxError, match="LIMIT count"):
            parse_statement("SELECT A1 LIMIT -1")
        with pytest.raises(QuerySyntaxError, match="integer"):
            parse_statement("SELECT A1 LIMIT 1.5")

    def test_statements_render_back_to_canonical_text(self):
        for text in [
            "SELECT A1, A2 WHERE (A1 > 2 AND A2 <= 3) ORDER BY A1 DESC LIMIT 5;",
            "APPEND (1, ?, 3.5);",
            "UPDATE 2 SET A1 = 1.5;",
            "DELETE 0, 1;",
            "IMPUTE;",
        ]:
            statement = parse_statement(text)
            assert parse_statement(str(statement)) == statement


class TestPlanner:
    schema = Schema(["A1", "A2", "A3"])

    def _plan(self, text):
        return plan_query(parse_statement(text), self.schema)

    def test_projection_and_referenced_set(self):
        plan = self._plan("SELECT A2 WHERE A3 > 1 ORDER BY A1")
        assert plan.projection == (1,)
        assert plan.referenced == (0, 1, 2)
        assert plan.output_names == ("A2",)
        assert not plan.is_aggregate

    def test_unreferenced_attributes_stay_out(self):
        plan = self._plan("SELECT A1")
        assert plan.referenced == (0,)

    def test_star_references_everything(self):
        plan = self._plan("SELECT *")
        assert plan.projection == (0, 1, 2)
        assert plan.referenced == (0, 1, 2)

    def test_count_star_references_nothing(self):
        plan = self._plan("SELECT count(*)")
        assert plan.is_aggregate and plan.referenced == ()

    def test_aggregate_resolution(self):
        plan = self._plan("SELECT count(*), avg(A2)")
        assert plan.aggregates == (("count", None), ("avg", 1))
        assert plan.output_names == ("count(*)", "avg(A2)")

    def test_unknown_attribute_names_the_schema(self):
        with pytest.raises(QueryError, match=r"unknown attribute 'A9'.*A1"):
            self._plan("SELECT A9")

    def test_mixed_select_list_is_rejected(self):
        with pytest.raises(QueryError, match="cannot mix"):
            self._plan("SELECT A1, count(*)")

    def test_order_by_on_aggregates_is_rejected(self):
        with pytest.raises(QueryError, match="ORDER BY does not apply"):
            self._plan("SELECT count(*) ORDER BY A1")

    def test_describe_is_the_explain_payload(self):
        described = self._plan(
            "SELECT A1 WHERE A2 > 2 ORDER BY A3 DESC LIMIT 4"
        ).describe()
        assert described["kind"] == "scan"
        assert described["columns"] == ["A1"]
        assert described["filter"] == "A2 > 2"
        assert described["order_by"] == ["A3 DESC"]
        assert described["limit"] == 4
        assert described["referenced_attributes"] == ["A1", "A2", "A3"]
        assert "imputed in one batch" in described["on_demand_imputation"]
