"""Per-session fault hit targeting: chaos replays must be deterministic.

The global ``serve.dispatch`` hit counter is racy under the concurrent
scheduler — "the 5th dispatch" depends on how the worker pool interleaves
tenants.  A :class:`~repro.reliability.Fault` scoped with ``session=`` is
counted only against dispatches the serve loop attributes to that session
(which the scheduler serialises), so the same plan hits the same request
in every run.  The end-to-end regression here drives **4 concurrent TCP
clients** and asserts the scoped fault lands on exactly the planned
request of the planned session — every time.
"""

import json
import socket
import threading

import pytest

from repro.api import SessionServer, encode_rows, serve_tcp
from repro.data import load_dataset
from repro.exceptions import ConfigurationError
from repro.reliability import Fault, FaultPlan, SimulatedCrash

IIM_CONFIG = {
    "method": "IIM",
    "mode": "online",
    "params": {"k": 4, "learning": "fixed", "learning_neighbors": 3},
}


class TestScopedCounting:
    def test_session_scope_counts_only_attributed_firings(self):
        plan = FaultPlan([Fault("site", "io_error", hit=2, session="b")])
        plan.fire("site", session="a")  # a:1, global:1
        plan.fire("site", session="b")  # b:1, global:2 — not yet
        plan.fire("site", session="a")  # a:2, global:3
        plan.fire("site")               # global:4, no session
        with pytest.raises(OSError, match="injected I/O error"):
            plan.fire("site", session="b")  # b:2 — triggers
        assert plan.hits("site") == 5
        assert plan.hits("site", session="a") == 2
        assert plan.hits("site", session="b") == 2
        assert plan.fired == plan.faults

    def test_global_faults_still_count_process_wide(self):
        plan = FaultPlan([Fault("site", "crash", hit=3)])
        plan.fire("site", session="a")
        plan.fire("site", session="b")
        with pytest.raises(SimulatedCrash):
            plan.fire("site", session="c")

    def test_scoped_fault_never_matches_unattributed_sites(self):
        """Sites that pass no session attribution cannot trigger a scoped
        fault — a plan targeting a session is inert at e.g. ``wal.frame``."""
        plan = FaultPlan([Fault("site", "io_error", hit=1, session="a")])
        for _ in range(5):
            plan.fire("site")  # no attribution: never matches
        assert plan.fired == []
        with pytest.raises(OSError):
            plan.fire("site", session="a")

    def test_global_and_scoped_faults_compose(self):
        plan = FaultPlan([
            Fault("site", "io_error", hit=2),
            Fault("site", "io_error", hit=2, session="a"),
        ])
        plan.fire("site", session="a")
        with pytest.raises(OSError):
            plan.fire("site", session="b")  # global hit 2
        with pytest.raises(OSError):
            plan.fire("site", session="a")  # a's hit 2
        assert len(plan.fired) == 2

    def test_scoped_intercept_write_advances_the_session_count(self):
        plan = FaultPlan([
            Fault("site", "torn_write", hit=2, byte_offset=3, session="s"),
        ])
        data, exc = plan.intercept_write("site", b"abcdef", session="s")
        assert data == b"abcdef" and exc is None
        data, exc = plan.intercept_write("site", b"abcdef", session="s")
        assert data == b"abc"
        assert isinstance(exc, SimulatedCrash)

    def test_fault_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            Fault("site", "io_error", hit=0, session="s")


class TestFourConcurrentClients:
    """The ISSUE regression: 4 concurrent clients, one scoped fault, and
    the injected error lands on the same request in every run."""

    N_CLIENTS = 4
    N_IMPUTES = 12
    TARGET_SESSION = "chaos-2"
    #: create + append are that session's dispatches 1 and 2, so hit 2+j
    #: is its j-th impute.
    TARGET_IMPUTE = 7

    @pytest.fixture(scope="class")
    def values(self):
        return load_dataset("sn", size=160).raw

    def _run_once(self, values):
        server = SessionServer(workers=4)
        plan = FaultPlan([
            Fault("serve.dispatch", "io_error", hit=2 + self.TARGET_IMPUTE,
                  session=self.TARGET_SESSION),
        ])
        server.fault_injector = plan
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_tcp, args=("127.0.0.1", 0, server, ready),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        errors = []
        outcomes = {}

        def client(index):
            try:
                name = f"chaos-{index}"
                with socket.create_connection(
                    ("127.0.0.1", server.tcp_port), timeout=30
                ) as conn:
                    stream = conn.makefile("rw", encoding="utf-8")

                    def call(**request):
                        request.setdefault("v", 1)
                        stream.write(json.dumps(request) + "\n")
                        stream.flush()
                        return json.loads(stream.readline())

                    assert call(cmd="create", session=name,
                                config=IIM_CONFIG)["ok"]
                    assert call(cmd="append", session=name,
                                rows=encode_rows(values[:50]))["ok"]
                    results = []
                    for i in range(self.N_IMPUTES):
                        row = [float(c) for c in values[60 + i]]
                        row[1] = None
                        response = call(id=i, cmd="impute", session=name,
                                        rows=[row])
                        results.append(
                            (response["id"], response["ok"],
                             (response.get("error") or {}).get("message", ""))
                        )
                    outcomes[name] = results
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((index, exc))

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(self.N_CLIENTS)
        ]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=60)
        try:
            assert not errors, errors
        finally:
            with socket.create_connection(
                ("127.0.0.1", server.tcp_port), timeout=10
            ) as conn:
                stream = conn.makefile("rw", encoding="utf-8")
                stream.write(json.dumps({"v": 1, "cmd": "shutdown"}) + "\n")
                stream.flush()
                assert json.loads(stream.readline())["ok"]
            thread.join(timeout=10)
        return plan, outcomes

    def test_scoped_fault_lands_on_the_planned_request_every_run(self, values):
        for _ in range(3):  # deterministic across repeated runs
            plan, outcomes = self._run_once(values)
            assert sorted(outcomes) == [
                f"chaos-{i}" for i in range(self.N_CLIENTS)
            ]
            for name, results in outcomes.items():
                # Responses arrive in submission order.
                assert [rid for rid, _, _ in results] == list(
                    range(self.N_IMPUTES)
                )
                for rid, ok, message in results:
                    if (
                        name == self.TARGET_SESSION
                        and rid == self.TARGET_IMPUTE - 1
                    ):
                        assert not ok, (
                            f"the scoped fault missed impute "
                            f"#{self.TARGET_IMPUTE} of {name}"
                        )
                        assert "injected I/O error" in message
                    else:
                        assert ok, (name, rid, message)
            # Exactly one fault fired, at the planned per-session hit.
            assert len(plan.fired) == 1
            assert plan.fired[0].session == self.TARGET_SESSION
            assert plan.hits(
                "serve.dispatch", session=self.TARGET_SESSION
            ) == 2 + self.N_IMPUTES
