"""Fault-plan unit coverage: deterministic triggers, byte-level effects."""

import pytest

from repro.exceptions import ConfigurationError
from repro.reliability import Fault, FaultPlan, SimulatedCrash


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            Fault("wal.frame", "explode")

    def test_hit_must_be_positive_int(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            Fault("wal.frame", "crash", hit=0)
        with pytest.raises(ConfigurationError, match="1-based"):
            Fault("wal.frame", "crash", hit=True)

    def test_negative_byte_offset_rejected(self):
        with pytest.raises(ConfigurationError, match="byte_offset"):
            Fault("wal.frame", "torn_write", byte_offset=-1)


class TestTriggering:
    def test_fires_at_exactly_the_planned_hit(self):
        plan = FaultPlan([Fault("wal.frame", "crash", hit=3)])
        plan.fire("wal.frame")
        plan.fire("wal.frame")
        with pytest.raises(SimulatedCrash):
            plan.fire("wal.frame")
        assert plan.hits("wal.frame") == 3
        assert len(plan.fired) == 1

    def test_sites_count_independently(self):
        plan = FaultPlan([Fault("artifact.commit", "io_error", hit=1)])
        plan.fire("wal.frame")  # different site: no trigger
        with pytest.raises(OSError, match="injected I/O error"):
            plan.fire("artifact.commit")
        assert plan.hits("wal.frame") == 1
        assert plan.hits("artifact.commit") == 1

    def test_crash_after_ops_schedules_the_next_frame(self):
        plan = FaultPlan.crash_after_ops(2)
        _, err = plan.intercept_write("wal.frame", b"a")
        assert err is None
        _, err = plan.intercept_write("wal.frame", b"b")
        assert err is None
        with pytest.raises(SimulatedCrash):
            plan.intercept_write("wal.frame", b"c")

    def test_same_plan_shape_fires_identically(self):
        def run():
            plan = FaultPlan([Fault("wal.frame", "torn_write", hit=2,
                                    byte_offset=4)])
            written = []
            for payload in (b"AAAAAAAA", b"BBBBBBBB", b"CCCCCCCC"):
                try:
                    data, err = plan.intercept_write("wal.frame", payload)
                    written.append(data)
                    if err is not None:
                        raise err
                except SimulatedCrash:
                    break
            return written

        assert run() == run() == [b"AAAAAAAA", b"BBBB"]


class TestByteEffects:
    def test_torn_write_hands_back_prefix_and_crash(self):
        plan = FaultPlan([Fault("wal.frame", "torn_write", byte_offset=3)])
        data, err = plan.intercept_write("wal.frame", b"0123456789")
        assert data == b"012"
        assert isinstance(err, SimulatedCrash)

    def test_torn_write_offset_clamped_to_payload(self):
        plan = FaultPlan([Fault("wal.frame", "torn_write", byte_offset=999)])
        data, err = plan.intercept_write("wal.frame", b"abc")
        assert data == b"abc"
        assert isinstance(err, SimulatedCrash)

    def test_corrupt_frame_flips_one_byte_same_length(self):
        plan = FaultPlan([Fault("wal.frame", "corrupt_frame", byte_offset=5)])
        original = b"0123456789"
        data, err = plan.intercept_write("wal.frame", original)
        assert err is None
        assert len(data) == len(original)
        diff = [i for i in range(len(data)) if data[i] != original[i]]
        assert diff == [5]

    def test_corrupt_frame_is_noop_at_byteless_site(self):
        plan = FaultPlan([Fault("serve.dispatch", "corrupt_frame")])
        plan.fire("serve.dispatch")  # must not raise
        assert plan.hits("serve.dispatch") == 1

    def test_io_error_raises_before_any_byte(self):
        plan = FaultPlan([Fault("wal.frame", "io_error")])
        with pytest.raises(OSError):
            plan.intercept_write("wal.frame", b"abc")

    def test_slow_fault_delays_then_continues(self):
        plan = FaultPlan([Fault("serve.dispatch", "slow", delay=0.01)])
        plan.fire("serve.dispatch")
        assert plan.fired[0].delay == 0.01
        data, err = plan.intercept_write("wal.frame", b"abc")
        assert (data, err) == (b"abc", None)
