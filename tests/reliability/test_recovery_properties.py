"""Chaos property tests: kill the session at random points, recover, compare.

Each trace drives a durable :class:`~repro.api.OnlineSession` (WAL
attached, deliberately tiny segments) through a seeded random lifecycle of
append / delete / update ops while a plain-array *mirror history* records
the store contents after every accepted op, keyed by WAL sequence number.
A seeded :class:`~repro.reliability.FaultPlan` kills the session at a
random WAL frame (clean crash, torn write, or I/O error — or silently
corrupts a frame and lets the trace finish).  Recovery must then rebuild
*exactly* the state at the last durable sequence number:

* the recovered store equals the mirror history at ``read_wal().last_seq``
  bit-for-bit;
* the recovered session's imputations match a cold
  :class:`~repro.core.iim.IIMImputer` refit over those rows at
  ``rtol = 1e-9`` — the never-crashed oracle;
* a pristine session replaying the surviving ops matches the recovered
  one at ``rtol = 1e-9``, and both keep accepting mutations afterwards.

Traces are seeded, so a failure reproduces from its parametrisation alone.
"""

import os

import numpy as np
import pytest

from repro import IIMImputer, load_dataset
from repro.api import MutationOp, OnlineSession, recover_session
from repro.data.relation import Relation
from repro.reliability import Fault, FaultPlan, SimulatedCrash, WriteAheadLog, read_wal

#: Ops per chaos trace (CI's long-trace job raises it, like the lifecycle
#: property suite's REPRO_PROPERTY_OPS).
N_OPS = int(os.environ.get("REPRO_CHAOS_OPS", "24"))

ENGINE_KNOBS = dict(shard_capacity=7, journal_capacity=6, model_cache_size=None)

PARAM_GRID = [
    dict(k=4, learning="fixed", learning_neighbors=5),
    dict(k=4, learning="adaptive", stepping=4, max_learning_neighbors=12),
]
PARAM_IDS = ["fixed", "adaptive"]


@pytest.fixture(scope="module")
def pool():
    return load_dataset("asf", size=400).raw


def _draw_op(pool, ref, rng):
    """One random mutation op plus the mirrored next store contents."""
    kind = rng.choice(["append", "delete", "update"], p=[0.5, 0.25, 0.25])
    if kind == "delete" and ref.shape[0] <= 10:
        kind = "append"
    if kind == "append":
        batch = int(rng.integers(1, 4))
        rows = pool[rng.choice(pool.shape[0], batch, replace=False)].copy()
        return MutationOp.append(rows), np.vstack([ref, rows])
    if kind == "delete":
        raw = rng.integers(0, ref.shape[0], size=int(rng.integers(1, 3)))
        return (
            MutationOp.delete(np.concatenate([raw, raw[:1]])),  # dups tolerated
            np.delete(ref, np.unique(raw), axis=0),
        )
    index = int(rng.integers(ref.shape[0]))
    row = pool[rng.integers(pool.shape[0])].copy()
    mirrored = ref.copy()
    mirrored[index] = row
    return MutationOp.update(index, row), mirrored


def _random_fault(rng):
    kind = ["crash", "torn_write", "io_error"][int(rng.integers(3))]
    # hit 1 is the fit append; fault anywhere in the mutation stream.
    return Fault(
        "wal.frame",
        kind,
        hit=int(rng.integers(2, N_OPS)),
        byte_offset=int(rng.integers(0, 64)),
    )


def _durable_session(wal_dir, params, injector=None):
    session = OnlineSession(**ENGINE_KNOBS, **params)
    wal = WriteAheadLog(
        wal_dir,
        config=session.config_wire(),
        segment_max_records=5,  # force rotation inside every trace
        injector=injector,
    )
    return session.attach_wal(wal, fault_injector=injector)


def _run_trace_until_killed(session, pool, rng, history, checkpoint=None):
    """Drive random ops; returns the op list by seq (1-based, op 1 = fit)."""
    initial = pool[rng.choice(pool.shape[0], 30, replace=False)].copy()
    ops = [MutationOp.append(initial)]
    session.fit(initial)
    history[1] = initial.copy()
    ref = initial
    for step in range(2, N_OPS + 1):
        op, mirrored = _draw_op(pool, ref, rng)
        ops.append(op)
        history[step] = mirrored.copy()
        session.mutate([op])
        ref = mirrored
        if checkpoint is not None and step == checkpoint:
            session.save(checkpoint_path(session))
    return ops


def checkpoint_path(session):
    return session.wal.directory.parent / "ckpt"


def _check_recovery(wal_dir, history, ops, params, pool, checkpoint=None):
    state = read_wal(wal_dir)
    durable_seq = state.last_seq
    assert durable_seq >= 1, "the fit append must always be durable"
    expected = history[durable_seq]

    recovered, report = recover_session(
        wal_dir, checkpoint=checkpoint, reattach=False
    )
    assert report["last_seq"] == durable_seq
    np.testing.assert_array_equal(
        recovered.engine.store_relation().raw, expected
    )

    # Oracle 1: the never-crashed equivalent — a cold refit over exactly
    # the rows the recovered store holds.
    rng = np.random.default_rng(durable_seq)
    queries = expected[
        rng.choice(expected.shape[0], min(4, expected.shape[0]), replace=False)
    ].copy()
    for row in range(queries.shape[0]):
        blank = rng.choice(queries.shape[1], size=rng.integers(1, 3),
                           replace=False)
        queries[row, blank] = np.nan
    got = recovered.impute(queries.copy())
    cold = IIMImputer(**params).fit(Relation(expected))
    want = cold.impute(Relation(queries.copy())).raw
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    # Oracle 2: a pristine session replaying the surviving ops, then both
    # continue accepting the same mutations.
    pristine = OnlineSession(**ENGINE_KNOBS, **params)
    pristine.mutate(ops[:durable_seq])
    np.testing.assert_allclose(
        pristine.impute(queries.copy()), got, rtol=1e-9, atol=1e-12
    )
    tail = pool[:6].copy()
    recovered.mutate([MutationOp.append(tail)])
    pristine.mutate([MutationOp.append(tail)])
    np.testing.assert_allclose(
        recovered.impute(queries.copy()),
        pristine.impute(queries.copy()),
        rtol=1e-9,
        atol=1e-12,
    )


@pytest.mark.parametrize("params", PARAM_GRID, ids=PARAM_IDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_killed_trace_recovers_to_last_durable_op(pool, params, seed, tmp_path):
    rng = np.random.default_rng(seed)
    fault = _random_fault(rng)
    plan = FaultPlan([fault])
    wal_dir = tmp_path / "wal"
    session = _durable_session(wal_dir, params, injector=plan)
    history = {}
    try:
        ops = _run_trace_until_killed(session, pool, rng, history)
    except (SimulatedCrash, OSError):
        # The process is "dead": rebuild the accepted-op list the only way
        # a real recovery could — from the WAL's surviving valid prefix.
        ops = [MutationOp.from_wire(op) for _, op in read_wal(wal_dir).ops]
    assert plan.fired, f"fault {fault} never triggered in {N_OPS} ops"
    _check_recovery(wal_dir, history, ops, params, pool)


@pytest.mark.parametrize("seed", [3, 4])
def test_killed_trace_with_mid_checkpoint(pool, seed, tmp_path):
    """Crash after a mid-trace checkpoint: recovery = checkpoint + tail."""
    params = PARAM_GRID[1]
    rng = np.random.default_rng(seed)
    checkpoint_at = int(rng.integers(5, N_OPS - 5))
    fault = Fault("wal.frame", "crash",
                  hit=int(rng.integers(checkpoint_at + 1, N_OPS + 1)))
    plan = FaultPlan([fault])
    wal_dir = tmp_path / "wal"
    session = _durable_session(wal_dir, params, injector=plan)
    history = {}
    try:
        _run_trace_until_killed(session, pool, rng, history,
                                checkpoint=checkpoint_at)
    except SimulatedCrash:
        pass
    assert plan.fired

    state = read_wal(wal_dir)
    durable_seq = state.last_seq
    assert state.base_seq >= checkpoint_at  # the save truncated the log
    recovered, report = recover_session(
        wal_dir, checkpoint=tmp_path / "ckpt", reattach=False
    )
    assert report["checkpoint"] is not None
    np.testing.assert_array_equal(
        recovered.engine.store_relation().raw, history[durable_seq]
    )
    cold = IIMImputer(**params).fit(Relation(history[durable_seq]))
    queries = history[durable_seq][:3].copy()
    queries[:, 1] = np.nan
    np.testing.assert_allclose(
        recovered.impute(queries.copy()),
        cold.impute(Relation(queries.copy())).raw,
        rtol=1e-9,
        atol=1e-12,
    )


@pytest.mark.parametrize("seed", [5, 6])
def test_silent_corruption_truncates_to_valid_prefix(pool, seed, tmp_path):
    """A silently flipped byte ends the durable prefix at the bad frame."""
    params = PARAM_GRID[0]
    rng = np.random.default_rng(seed)
    hit = int(rng.integers(3, N_OPS - 2))
    plan = FaultPlan([
        Fault("wal.frame", "corrupt_frame", hit=hit,
              byte_offset=int(rng.integers(0, 40))),
    ])
    wal_dir = tmp_path / "wal"
    session = _durable_session(wal_dir, params, injector=plan)
    history = {}
    ops = _run_trace_until_killed(session, pool, rng, history)  # never raises
    session.close()
    assert plan.fired

    state = read_wal(wal_dir)
    assert state.torn is not None
    assert state.last_seq == hit - 1  # frames from the corrupt one are dropped
    _check_recovery(wal_dir, history, ops, params, pool)
