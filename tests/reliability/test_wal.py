"""WAL unit coverage: framing, rotation, torn tails, truncation, sessions."""

import numpy as np
import pytest

from repro.api import MutationOp, OnlineSession
from repro.config import set_wal_sync
from repro.data import load_dataset
from repro.exceptions import ConfigurationError
from repro.reliability import WriteAheadLog, read_wal
from repro.reliability.wal import FRAME_HEADER_BYTES, SEGMENT_SUFFIX


def _op(i):
    return MutationOp.append([[float(i), float(i) + 0.5]]).to_wire()


def _segment_paths(wal_dir):
    return sorted(wal_dir.glob(f"*{SEGMENT_SUFFIX}"))


CONFIG = {"method": "IIM", "mode": "online"}


class TestFraming:
    def test_log_and_scan_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", config=CONFIG) as wal:
            for i in range(5):
                assert wal.log_op(_op(i)) == i + 1
            wal.commit()
        state = read_wal(tmp_path / "wal")
        assert state.config == CONFIG
        assert state.base_seq == 0
        assert state.last_seq == 5
        assert state.torn is None
        assert [seq for seq, _ in state.ops] == [1, 2, 3, 4, 5]
        assert [op for _, op in state.ops] == [_op(i) for i in range(5)]

    def test_reopen_continues_the_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", config=CONFIG) as wal:
            wal.log_ops([_op(0), _op(1)])
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.last_seq == 2
            assert wal.config == CONFIG  # adopted from the open record
            assert wal.log_op(_op(2)) == 3
        assert read_wal(tmp_path / "wal").last_seq == 3

    def test_rotation_splits_segments_and_scan_spans_them(self, tmp_path):
        with WriteAheadLog(
            tmp_path / "wal", config=CONFIG, segment_max_records=3
        ) as wal:
            wal.log_ops([_op(i) for i in range(8)])
        segments = _segment_paths(tmp_path / "wal")
        assert len(segments) == 3
        state = read_wal(tmp_path / "wal")
        assert [seq for seq, _ in state.ops] == list(range(1, 9))

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", config=CONFIG)
        wal.close()
        with pytest.raises(ConfigurationError, match="closed"):
            wal.log_op(_op(0))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no WAL directory"):
            read_wal(tmp_path / "nowhere")

    def test_sync_policy_validated_and_default_resolves(self, tmp_path):
        with pytest.raises(ConfigurationError, match="sync policy"):
            WriteAheadLog(tmp_path / "wal", sync="sometimes")
        set_wal_sync("always")
        try:
            assert WriteAheadLog(tmp_path / "wal2", config=CONFIG).sync == "always"
        finally:
            set_wal_sync("batch")


class TestTornTails:
    def _filled(self, tmp_path, n=6):
        with WriteAheadLog(tmp_path / "wal", config=CONFIG) as wal:
            wal.log_ops([_op(i) for i in range(n)])
        return tmp_path / "wal"

    def test_truncated_tail_recovers_valid_prefix(self, tmp_path):
        wal_dir = self._filled(tmp_path)
        segment = _segment_paths(wal_dir)[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-9])  # tear the last frame mid-payload
        state = read_wal(wal_dir)
        assert state.last_seq == 5
        assert state.torn["reason"] == "truncated frame payload"
        assert state.torn["segment"] == segment.name
        assert state.torn["dropped_bytes"] == len(data) - 9 - state.torn["offset"]

    def test_header_tear_reported(self, tmp_path):
        wal_dir = self._filled(tmp_path)
        segment = _segment_paths(wal_dir)[-1]
        data = segment.read_bytes()
        # Leave fewer bytes than one frame header after the valid prefix.
        segment.write_bytes(data + b"0042")
        state = read_wal(wal_dir)
        assert state.last_seq == 6
        assert state.torn["reason"] == "truncated frame header"

    def test_corrupt_byte_fails_crc_and_ends_prefix(self, tmp_path):
        wal_dir = self._filled(tmp_path)
        segment = _segment_paths(wal_dir)[-1]
        data = bytearray(segment.read_bytes())
        # Flip one payload byte of the 3rd frame (open record is frame 1).
        frames = data.split(b"\n")
        offset = len(frames[0]) + len(frames[1]) + 2 + FRAME_HEADER_BYTES + 4
        data[offset] ^= 0xFF
        segment.write_bytes(bytes(data))
        state = read_wal(wal_dir)
        # Frames after the corrupted one are dropped too: prefix semantics.
        assert state.last_seq == 1
        assert state.torn["reason"] == "frame CRC mismatch"

    def test_garbage_header_reported(self, tmp_path):
        wal_dir = self._filled(tmp_path)
        segment = _segment_paths(wal_dir)[-1]
        segment.write_bytes(
            segment.read_bytes() + b"x" * (FRAME_HEADER_BYTES + 8)
        )
        assert read_wal(wal_dir).torn["reason"] == "unparseable frame header"

    def test_torn_middle_segment_drops_later_segments(self, tmp_path):
        with WriteAheadLog(
            tmp_path / "wal", config=CONFIG, segment_max_records=2
        ) as wal:
            wal.log_ops([_op(i) for i in range(6)])
        segments = _segment_paths(tmp_path / "wal")
        # Ops 1-2, 3-4, 5-6 plus the eagerly rotated-to empty tail segment.
        assert len(segments) == 4
        middle = segments[1]
        middle.write_bytes(middle.read_bytes()[:-5])
        state = read_wal(tmp_path / "wal")
        assert state.last_seq == 3  # seg1 holds ops 1-2, seg2's first op is 3
        assert state.torn["dropped_segments"] == [s.name for s in segments[2:]]

    def test_open_repairs_the_tear_and_appends_continue(self, tmp_path):
        wal_dir = self._filled(tmp_path)
        segment = _segment_paths(wal_dir)[-1]
        segment.write_bytes(segment.read_bytes()[:-9])
        with WriteAheadLog(wal_dir) as wal:
            assert wal.repaired is not None
            assert wal.repaired["reason"] == "truncated frame payload"
            assert wal.last_seq == 5
            assert wal.log_op(_op(99)) == 6
        state = read_wal(wal_dir)
        assert state.torn is None
        assert state.ops[-1][1] == _op(99)


class TestTruncate:
    def test_truncate_resets_segments_and_anchors_base_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", config=CONFIG)
        wal.log_ops([_op(i) for i in range(4)])
        wal.truncate(config=CONFIG)
        assert wal.base_seq == 4
        assert len(_segment_paths(tmp_path / "wal")) == 1
        wal.log_op(_op(9))
        wal.close()
        state = read_wal(tmp_path / "wal")
        assert state.base_seq == 4
        assert state.ops == [(5, _op(9))]
        assert state.last_seq == 5

    def test_stats_report_lag_and_repairs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", config=CONFIG)
        wal.log_ops([_op(i) for i in range(3)])
        stats = wal.stats()
        assert stats["lag_records"] == 3
        assert stats["segments"] == 1
        assert stats["bytes"] > 0
        assert stats["repaired_tail"] is None
        wal.truncate()
        assert wal.stats()["lag_records"] == 0
        wal.close()


class TestDurableSessions:
    def test_session_logs_fit_and_mutations(self, tmp_path):
        values = load_dataset("sn", size=60).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:30])
        session.mutate([
            MutationOp.append(values[30:34]),
            MutationOp.delete([1, 5]),
            MutationOp.update(0, values[40]),
        ])
        session.close()
        state = read_wal(tmp_path / "wal")
        assert [op["op"] for _, op in state.ops] == [
            "append", "append", "delete", "update",
        ]
        assert session.stats()["wal"] is not None

    def test_save_truncates_and_recovery_skips_checkpointed_ops(self, tmp_path):
        from repro.api import recover_session

        values = load_dataset("sn", size=80).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:40])
        session.save(tmp_path / "ckpt")
        assert session.wal.base_seq == 1
        session.mutate([MutationOp.append(values[40:44])])
        session.close()

        recovered, report = recover_session(
            tmp_path / "wal", checkpoint=tmp_path / "ckpt", reattach=False
        )
        assert report["replayed_ops"] == 1
        assert report["skipped_ops"] == 0  # truncation removed covered ops
        assert report["n_tuples"] == 44
        np.testing.assert_array_equal(
            recovered.engine.store_relation().raw,
            session.engine.store_relation().raw,
        )

    def test_checkpoint_without_truncation_skips_by_manifest_seq(self, tmp_path):
        """A checkpoint whose WAL survives whole replays only the tail."""
        from repro.api import recover_session

        values = load_dataset("sn", size=80).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:40])
        # Snapshot through the engine directly: records wal.last_seq in the
        # manifest but does NOT truncate (models a copied-aside checkpoint).
        session.engine.snapshot(
            tmp_path / "ckpt",
            manifest_extra={"wal": {"last_seq": session.wal.last_seq}},
        )
        session.mutate([MutationOp.append(values[40:46])])
        session.close()

        recovered, report = recover_session(
            tmp_path / "wal", checkpoint=tmp_path / "ckpt", reattach=False
        )
        assert report["skipped_ops"] == 1  # the fit append is in the artifact
        assert report["replayed_ops"] == 1
        assert report["n_tuples"] == 46

    def test_truncated_wal_without_checkpoint_refuses(self, tmp_path):
        from repro.api import recover_session

        values = load_dataset("sn", size=60).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:30])
        session.save(tmp_path / "ckpt")
        session.close()
        with pytest.raises(ConfigurationError, match="pass that"):
            recover_session(tmp_path / "wal")

    def test_recovery_reattaches_and_keeps_logging(self, tmp_path):
        from repro.api import recover_session

        values = load_dataset("sn", size=80).raw
        session = OnlineSession(k=3, learning="fixed", learning_neighbors=3)
        session.attach_wal(
            WriteAheadLog(tmp_path / "wal", config=session.config_wire())
        )
        session.fit(values[:40])
        session.close()
        recovered, _ = recover_session(tmp_path / "wal")
        recovered.mutate([MutationOp.append(values[40:42])])
        recovered.close()
        assert read_wal(tmp_path / "wal").last_seq == 2
