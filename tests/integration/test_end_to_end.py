"""End-to-end integration tests across the whole library."""

import numpy as np
import pytest

from repro import (
    IIMImputer,
    available_methods,
    inject_missing,
    load_dataset,
    make_imputer,
    rms_error,
)
from repro.data import inject_missing_clustered, write_csv, read_csv
from repro.experiments import PROFILES, compare_methods, default_method_overrides
from repro.ml import classification_application, clustering_application


SMOKE = PROFILES["smoke"]


class TestFullImputationPipeline:
    def test_all_fourteen_methods_run_on_one_dataset(self):
        relation = load_dataset("ccs", size=180)
        injection = inject_missing(relation, fraction=0.05, random_state=0)
        overrides = default_method_overrides(SMOKE)
        overrides["XGB"] = {"n_estimators": 10}
        comparison = compare_methods(
            injection, available_methods(), dataset_name="ccs", method_overrides=overrides
        )
        succeeded = [m for m, run in comparison.runs.items() if not run.failed]
        assert len(succeeded) == 14
        assert all(comparison.rms_of(m) > 0 for m in succeeded)

    def test_iim_beats_mean_on_every_numeric_dataset(self):
        for name in ("asf", "ccs", "ccpp", "phase", "da"):
            relation = load_dataset(name, size=200)
            injection = inject_missing(relation, fraction=0.05, random_state=1)
            iim = IIMImputer(k=5, learning="adaptive", stepping=10,
                             max_learning_neighbors=60, validation_neighbors=15)
            mean = make_imputer("Mean")
            iim_rms = rms_error(injection.truth, iim.fit(injection.dirty).impute_cells(injection))
            mean_rms = rms_error(injection.truth, mean.fit(injection.dirty).impute_cells(injection))
            assert iim_rms < mean_rms, name

    def test_clustered_missing_pipeline(self):
        relation = load_dataset("asf", size=200)
        injection = inject_missing_clustered(
            relation, n_incomplete=20, cluster_size=5, attribute=-1, random_state=0
        )
        iim = IIMImputer(k=5, learning="fixed", learning_neighbors=20)
        values = iim.fit(injection.dirty).impute_cells(injection)
        assert np.isfinite(values).all()

    def test_csv_roundtrip_then_impute(self, tmp_path):
        relation = load_dataset("ccpp", size=150)
        injection = inject_missing(relation, fraction=0.1, random_state=0)
        path = write_csv(injection.dirty, tmp_path / "dirty.csv")
        loaded = read_csv(path)
        assert loaded.n_missing_cells == len(injection)
        imputed = make_imputer("kNN").fit(loaded).impute(loaded)
        assert imputed.is_complete()

    def test_downstream_applications_end_to_end(self):
        clustering_relation = load_dataset("asf", size=200)
        outcome = clustering_application(
            clustering_relation, make_imputer("kNN"), n_clusters=4, random_state=0
        )
        assert 0.0 <= outcome.purity <= 1.0

        classification_relation = load_dataset("hep", size=120)
        f1 = classification_application(classification_relation, make_imputer("Mean"))
        assert 0.0 <= f1 <= 1.0

    def test_public_api_quickstart_snippet(self):
        # Mirrors the README quickstart so documentation stays honest.
        from repro import IIMImputer, load_dataset, inject_missing, rms_error

        relation = load_dataset("asf", size=300)
        injection = inject_missing(relation, fraction=0.05, random_state=0)
        imputer = IIMImputer(k=10, learning="adaptive", stepping=10, max_learning_neighbors=50)
        imputed = imputer.fit(injection.dirty).impute(injection.dirty)
        error = rms_error(
            injection.truth, imputed.raw[injection.rows, injection.attributes]
        )
        assert np.isfinite(error)
        assert imputed.is_complete()


class TestRobustness:
    def test_tiny_relation(self):
        relation = load_dataset("ccs", size=12)
        injection = inject_missing(relation, fraction=0.1, random_state=0)
        for method in ("Mean", "kNN", "GLR", "IIM"):
            imputer = make_imputer(method, **({"k": 2} if method in ("kNN", "IIM") else {}))
            values = imputer.fit(injection.dirty).impute_cells(injection)
            assert np.isfinite(values).all()

    def test_many_missing_attributes_per_tuple(self):
        rng = np.random.default_rng(0)
        from repro.data import Relation

        values = rng.normal(size=(80, 5))
        dirty_values = values.copy()
        dirty_values[:10, 1] = np.nan
        dirty_values[:10, 3] = np.nan
        dirty_values[5:15, 4] = np.nan
        relation = Relation(dirty_values)
        for method in ("kNN", "GLR", "IIM"):
            imputer = make_imputer(method, **({"k": 5} if method in ("kNN", "IIM") else {}))
            imputed = imputer.fit(relation).impute(relation)
            assert imputed.is_complete()
