"""Behavioural tests for every baseline imputation method."""

import numpy as np
import pytest

from repro.baselines import (
    BLRImputer,
    ERACERImputer,
    GLRImputer,
    GMMImputer,
    IFCImputer,
    ILLSImputer,
    KNNEnsembleImputer,
    KNNImputer,
    LoessImputer,
    MeanImputer,
    PMMImputer,
    SVDImputer,
    XGBImputer,
    make_imputer,
    paper_table2_methods,
)
from repro.data import Relation, Schema, inject_missing, load_dataset
from repro.exceptions import DataError
from repro.metrics import rms_error


@pytest.fixture(scope="module")
def linear_injection():
    """Exactly linear data: A4 = A1 + 2*A2 - A3; missing cells on A4 only."""
    rng = np.random.default_rng(0)
    X = rng.uniform(-5, 5, size=(120, 3))
    target = X[:, 0] + 2 * X[:, 1] - X[:, 2]
    relation = Relation(np.column_stack([X, target]), Schema(["A1", "A2", "A3", "A4"]))
    from repro.data.missing import inject_missing_attribute

    return inject_missing_attribute(relation, "A4", 15, random_state=1)


@pytest.fixture(scope="module")
def asf_injection_module():
    relation = load_dataset("asf", size=250)
    return inject_missing(relation, fraction=0.05, random_state=2)


def _run(imputer, injection):
    return imputer.fit(injection.dirty).impute_cells(injection)


class TestMeanImputer:
    def test_imputes_column_mean(self, linear_injection):
        values = _run(MeanImputer(), linear_injection)
        complete_mean = linear_injection.dirty.complete_part().column("A4").mean()
        np.testing.assert_allclose(values, complete_mean)


class TestKNNImputer:
    def test_exact_on_duplicated_tuples(self):
        # When an identical complete tuple exists, 1-NN recovers the value.
        base = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]])
        values = np.vstack([base, base])
        relation = Relation(values)
        from repro.data.missing import inject_missing_cells

        injection = inject_missing_cells(relation, [(0, 2)])
        imputed = _run(KNNImputer(k=1), injection)
        assert imputed[0] == pytest.approx(3.0)

    def test_reasonable_on_linear_data(self, linear_injection):
        values = _run(KNNImputer(k=5), linear_injection)
        assert rms_error(linear_injection.truth, values) < np.std(linear_injection.truth)

    def test_distance_weighting_differs_from_uniform(self, asf_injection_module):
        uniform = _run(KNNImputer(k=10, weighting="uniform"), asf_injection_module)
        weighted = _run(KNNImputer(k=10, weighting="distance"), asf_injection_module)
        assert not np.allclose(uniform, weighted)

    def test_k_capped_at_available_tuples(self):
        relation = Relation(np.random.default_rng(0).normal(size=(6, 3)))
        from repro.data.missing import inject_missing_cells

        injection = inject_missing_cells(relation, [(0, 1)])
        imputed = _run(KNNImputer(k=100), injection)
        assert np.isfinite(imputed).all()


class TestKNNEnsemble:
    def test_close_to_knn_but_not_identical(self, asf_injection_module):
        knn = _run(KNNImputer(k=5), asf_injection_module)
        knne = _run(KNNEnsembleImputer(k=5), asf_injection_module)
        assert knne.shape == knn.shape
        assert np.isfinite(knne).all()
        assert not np.allclose(knn, knne)


class TestGLRImputer:
    def test_recovers_exact_linear_relation(self, linear_injection):
        values = _run(GLRImputer(), linear_injection)
        np.testing.assert_allclose(values, linear_injection.truth, atol=0.05)


class TestLoessImputer:
    def test_good_on_linear_data(self, linear_injection):
        values = _run(LoessImputer(k=20), linear_injection)
        assert rms_error(linear_injection.truth, values) < 0.5


class TestBLRImputer:
    def test_posterior_mean_recovers_linear_relation(self, linear_injection):
        values = _run(BLRImputer(sample=False), linear_injection)
        np.testing.assert_allclose(values, linear_injection.truth, atol=0.1)

    def test_sampling_is_seed_reproducible(self, linear_injection):
        a = _run(BLRImputer(sample=True, random_state=3), linear_injection)
        b = _run(BLRImputer(sample=True, random_state=3), linear_injection)
        np.testing.assert_array_equal(a, b)


class TestPMMImputer:
    def test_imputations_are_observed_values(self, linear_injection):
        values = _run(PMMImputer(random_state=0), linear_injection)
        observed = set(np.round(linear_injection.dirty.complete_part().column("A4"), 9))
        assert all(np.round(v, 9) in observed for v in values)

    def test_reasonable_accuracy(self, linear_injection):
        values = _run(PMMImputer(random_state=0), linear_injection)
        assert rms_error(linear_injection.truth, values) < np.std(linear_injection.truth)


class TestXGBImputer:
    def test_better_than_mean_on_linear_data(self, linear_injection):
        xgb = _run(XGBImputer(n_estimators=40, random_state=0), linear_injection)
        mean = _run(MeanImputer(), linear_injection)
        assert rms_error(linear_injection.truth, xgb) < rms_error(linear_injection.truth, mean)


class TestIFCImputer:
    def test_finite_and_better_than_nothing(self, asf_injection_module):
        values = _run(IFCImputer(n_clusters=4, random_state=0), asf_injection_module)
        assert np.isfinite(values).all()

    def test_cluster_count_capped(self):
        relation = Relation(np.random.default_rng(0).normal(size=(8, 3)))
        from repro.data.missing import inject_missing_cells

        injection = inject_missing_cells(relation, [(0, 0)])
        values = _run(IFCImputer(n_clusters=50, random_state=0), injection)
        assert np.isfinite(values).all()


class TestGMMImputer:
    def test_better_than_mean_on_clustered_data(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
        labels = rng.integers(0, 2, size=200)
        values = centers[labels] + rng.normal(scale=0.5, size=(200, 3))
        relation = Relation(values)
        injection = inject_missing(relation, fraction=0.1, random_state=1)
        gmm = GMMImputer(n_components=2, random_state=0)
        mean = MeanImputer()
        err_gmm = rms_error(injection.truth, _run(gmm, injection))
        err_mean = rms_error(injection.truth, _run(mean, injection))
        assert err_gmm < err_mean


class TestSVDImputer:
    def test_recovers_low_rank_structure(self):
        rng = np.random.default_rng(0)
        factors = rng.normal(size=(100, 2))
        loadings = rng.normal(size=(2, 5))
        relation = Relation(factors @ loadings)
        injection = inject_missing(relation, fraction=0.1, random_state=0)
        values = _run(SVDImputer(rank=2), injection)
        assert rms_error(injection.truth, values) < 0.5 * np.std(injection.truth)

    def test_rejects_two_attribute_data(self):
        relation = Relation(np.random.default_rng(0).normal(size=(30, 2)))
        injection = inject_missing(relation, fraction=0.1, random_state=0)
        with pytest.raises(DataError):
            _run(SVDImputer(), injection)


class TestILLSImputer:
    def test_good_on_linear_data(self, linear_injection):
        values = _run(ILLSImputer(k=15), linear_injection)
        assert rms_error(linear_injection.truth, values) < 0.75


class TestERACERImputer:
    def test_good_on_linear_data(self, linear_injection):
        values = _run(ERACERImputer(k=10), linear_injection)
        assert rms_error(linear_injection.truth, values) < 1.0


class TestAllBaselinesSmoke:
    @pytest.mark.parametrize("method", paper_table2_methods())
    def test_every_baseline_fills_all_cells(self, asf_injection_module, method):
        if method == "XGB":
            imputer = make_imputer(method, n_estimators=10)
        else:
            imputer = make_imputer(method)
        imputed = imputer.fit(asf_injection_module.dirty).impute(asf_injection_module.dirty)
        assert imputed.is_complete()

    @pytest.mark.parametrize("method", ["kNN", "GLR", "LOESS", "ERACER", "ILLS", "kNNE"])
    def test_deterministic_methods_are_reproducible(self, asf_injection_module, method):
        a = make_imputer(method).fit(asf_injection_module.dirty).impute_cells(asf_injection_module)
        b = make_imputer(method).fit(asf_injection_module.dirty).impute_cells(asf_injection_module)
        np.testing.assert_array_equal(a, b)
