"""Tests for the shared imputer interface and the method registry."""

import numpy as np
import pytest

from repro.baselines import (
    IMPUTER_FACTORIES,
    METHOD_SPECS,
    BaseImputer,
    KNNImputer,
    MeanImputer,
    available_methods,
    figure_comparison_methods,
    make_imputer,
    method_capabilities,
    method_spec,
    paper_table2_methods,
)
from repro.core import IIMImputer
from repro.data import Relation, inject_missing
from repro.exceptions import ConfigurationError, DataError, NotFittedError


@pytest.fixture
def dirty_relation():
    rng = np.random.default_rng(0)
    values = rng.normal(size=(60, 3))
    values[:, 2] = values[:, 0] + values[:, 1]
    relation = Relation(values)
    return inject_missing(relation, fraction=0.1, random_state=1)


class TestBaseImputerProtocol:
    def test_fit_uses_only_complete_part(self, dirty_relation):
        imputer = MeanImputer().fit(dirty_relation.dirty)
        assert imputer.fitted_relation.is_complete()
        assert imputer.fitted_relation.n_tuples == len(dirty_relation.dirty.complete_rows)

    def test_impute_fills_every_missing_cell(self, dirty_relation):
        imputed = MeanImputer().fit(dirty_relation.dirty).impute(dirty_relation.dirty)
        assert imputed.is_complete()

    def test_observe_reports_uniform_lifetime_counters(self, dirty_relation):
        imputer = MeanImputer()
        assert imputer.observe() == {
            "fits": 0, "impute_batches": 0, "imputed_cells": 0,
        }
        imputer.fit(dirty_relation.dirty)
        imputer.impute(dirty_relation.dirty)
        imputer.impute(dirty_relation.dirty.complete_part())
        observed = imputer.observe()
        assert observed["fits"] == 1
        assert observed["impute_batches"] == 2
        assert observed["imputed_cells"] == dirty_relation.dirty.n_missing_cells
        # The same counter names the online engine's stats use, so batch
        # and online sessions report a comparable imputation surface.
        from repro.online import OnlineImputationEngine

        engine_keys = set(OnlineImputationEngine(k=3).stats)
        assert {"impute_batches", "imputed_cells"} <= engine_keys

    def test_observe_returns_a_copy(self, dirty_relation):
        imputer = MeanImputer().fit(dirty_relation.dirty)
        imputer.observe()["fits"] = 99
        assert imputer.observe()["fits"] == 1

    def test_impute_does_not_change_observed_cells(self, dirty_relation):
        dirty = dirty_relation.dirty
        imputed = MeanImputer().fit(dirty).impute(dirty)
        observed = ~np.isnan(dirty.raw)
        np.testing.assert_array_equal(imputed.raw[observed], dirty.raw[observed])

    def test_impute_before_fit_raises(self, dirty_relation):
        with pytest.raises(NotFittedError):
            MeanImputer().impute(dirty_relation.dirty)

    def test_fit_requires_some_complete_tuple(self):
        relation = Relation([[np.nan, 1.0], [2.0, np.nan]])
        with pytest.raises(DataError):
            MeanImputer().fit(relation)

    def test_fit_on_non_relation_rejected(self):
        with pytest.raises(DataError):
            MeanImputer().fit(np.zeros((3, 2)))

    def test_width_mismatch_rejected(self, dirty_relation):
        imputer = MeanImputer().fit(dirty_relation.dirty)
        with pytest.raises(DataError):
            imputer.impute(Relation(np.zeros((3, 5))))

    def test_impute_on_complete_relation_is_identity(self):
        relation = Relation(np.random.default_rng(0).normal(size=(10, 3)))
        imputer = MeanImputer().fit(relation)
        np.testing.assert_array_equal(imputer.impute(relation).raw, relation.raw)

    def test_impute_cells_alignment(self, dirty_relation):
        imputer = KNNImputer(k=5).fit(dirty_relation.dirty)
        values = imputer.impute_cells(dirty_relation)
        assert values.shape == dirty_relation.truth.shape
        assert np.isfinite(values).all()

    def test_fit_impute_shortcut(self, dirty_relation):
        imputed = MeanImputer().fit_impute(dirty_relation.dirty)
        assert imputed.is_complete()

    def test_repr_reports_fit_state(self, dirty_relation):
        imputer = MeanImputer()
        assert "unfitted" in repr(imputer)
        imputer.fit(dirty_relation.dirty)
        assert "fitted" in repr(imputer)

    def test_multiple_missing_attributes_in_one_tuple(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(40, 4))
        relation = Relation(values)
        dirty_values = values.copy()
        dirty_values[0, 1] = np.nan
        dirty_values[0, 3] = np.nan
        dirty = relation.with_values(dirty_values)
        imputed = KNNImputer(k=3).fit(dirty).impute(dirty)
        assert imputed.is_complete()


class TestRegistry:
    def test_all_fourteen_methods_available(self):
        assert len(available_methods()) == 14
        assert "IIM" in available_methods()

    def test_table2_excludes_iim(self):
        assert "IIM" not in paper_table2_methods()
        assert len(paper_table2_methods()) == 13

    def test_figure_methods_subset(self):
        assert set(figure_comparison_methods()).issubset(set(available_methods()))

    def test_make_imputer_case_insensitive(self):
        assert isinstance(make_imputer("knn"), KNNImputer)
        assert isinstance(make_imputer("iim"), IIMImputer)

    def test_make_imputer_forwards_overrides(self):
        imputer = make_imputer("kNN", k=3)
        assert imputer.k == 3

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            make_imputer("deep-learning")

    def test_unknown_method_suggests_closest_matches(self):
        with pytest.raises(ConfigurationError, match="did you mean 'kNN'"):
            make_imputer("knnn")
        with pytest.raises(ConfigurationError, match="did you mean"):
            make_imputer("ERASER")

    def test_unknown_override_kwargs_rejected_early(self):
        with pytest.raises(ConfigurationError, match="'neighbors'"):
            make_imputer("kNN", neighbors=5)
        # ...with a closest-match hint for near misses...
        with pytest.raises(ConfigurationError, match="did you mean 'stepping'"):
            make_imputer("IIM", steping=5)
        # ...and case-variants called out as duplicate spellings.
        with pytest.raises(ConfigurationError, match="duplicate spelling of 'k'"):
            make_imputer("kNN", K=5)

    def test_override_rejection_lists_every_offender(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_imputer("kNN", neighbors=5, metrick="euclidean")
        message = str(excinfo.value)
        assert "'neighbors'" in message and "'metrick'" in message

    @pytest.mark.parametrize("name", ["Mean", "kNN", "kNNE", "GLR", "LOESS", "BLR", "PMM", "XGB",
                                      "IFC", "GMM", "SVD", "ILLS", "ERACER", "IIM"])
    def test_every_factory_builds_a_base_imputer(self, name):
        assert isinstance(make_imputer(name), BaseImputer)


class TestMethodCapabilities:
    def test_every_method_has_a_spec(self):
        assert set(METHOD_SPECS) == set(available_methods())
        assert set(IMPUTER_FACTORIES) == set(METHOD_SPECS)

    def test_iim_is_the_only_mutable_method(self):
        mutable = [
            name for name in available_methods()
            if method_capabilities(name).supports_mutation
        ]
        assert mutable == ["IIM"]

    def test_every_method_persists(self):
        assert all(
            method_capabilities(name).supports_persistence
            for name in available_methods()
        )

    def test_adaptive_learning_is_iim_only(self):
        adaptive = [
            name for name in available_methods()
            if method_capabilities(name).supports_adaptive
        ]
        assert adaptive == ["IIM"]

    def test_spec_lookup_is_case_insensitive(self):
        assert method_spec("iim").name == "IIM"
        assert method_spec("LOESS").parameter_names() is not None

    def test_capabilities_serialise_for_the_wire(self):
        payload = method_capabilities("IIM").as_dict()
        assert payload == {
            "supports_mutation": True,
            "supports_persistence": True,
            "supports_adaptive": True,
        }
