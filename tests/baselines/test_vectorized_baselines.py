"""ILLS and ERACER: vectorized batch kernels vs. the reference loops."""

import numpy as np
import pytest

from repro import ERACERImputer, ILLSImputer, load_dataset
from repro.config import use_backend
from repro.data.missing import inject_missing
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def injection():
    relation = load_dataset("asf", size=220)
    return inject_missing(relation, fraction=0.08, random_state=2)


@pytest.fixture(scope="module")
def ccpp_injection():
    relation = load_dataset("ccpp", size=200)
    return inject_missing(relation, fraction=0.1, random_state=3)


@pytest.mark.parametrize("cls", [ILLSImputer, ERACERImputer])
@pytest.mark.parametrize("fixture_name", ["injection", "ccpp_injection"])
def test_loop_vs_vectorized_equivalence(cls, fixture_name, request):
    injected = request.getfixturevalue(fixture_name)
    outputs = {}
    for backend in ("loop", "vectorized"):
        imputer = cls(k=8, backend=backend)
        outputs[backend] = imputer.fit(injected.dirty).impute(injected.dirty).raw
    np.testing.assert_allclose(
        outputs["vectorized"], outputs["loop"], rtol=1e-9, atol=1e-12
    )


@pytest.mark.parametrize("cls", [ILLSImputer, ERACERImputer])
def test_global_knob_selects_backend(cls, injection):
    pinned = cls(k=6, backend="loop").fit_impute(injection.dirty).raw
    with use_backend("loop"):
        knob = cls(k=6).fit_impute(injection.dirty).raw
    np.testing.assert_array_equal(pinned, knob)
    with use_backend("vectorized"):
        vectorized = cls(k=6).fit_impute(injection.dirty).raw
    np.testing.assert_allclose(vectorized, pinned, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("cls", [ILLSImputer, ERACERImputer])
def test_invalid_backend_rejected(cls):
    with pytest.raises(ConfigurationError):
        cls(backend="gpu")


def test_small_neighborhoods_still_agree(injection):
    """k smaller than the feature count exercises rank-deficient systems."""
    for cls in (ILLSImputer, ERACERImputer):
        loop = cls(k=2, backend="loop").fit_impute(injection.dirty).raw
        fast = cls(k=2, backend="vectorized").fit_impute(injection.dirty).raw
        np.testing.assert_allclose(fast, loop, rtol=1e-9, atol=1e-9)


def test_ills_single_neighbor_uses_constant_model(injection):
    """k=1 systems must fall back to the constant model on both backends."""
    loop = ILLSImputer(k=1, backend="loop").fit_impute(injection.dirty).raw
    fast = ILLSImputer(k=1, backend="vectorized").fit_impute(injection.dirty).raw
    np.testing.assert_allclose(fast, loop, rtol=1e-9, atol=1e-12)
